//! Characterize a trace the way §3 of the paper does: IAT structure,
//! execution times, platform delays, and configuration marginals.
//!
//! Works on the synthetic IBM-like fleet out of the box; point it at
//! your own trace file (the `femux-trace` CSV format) to characterize
//! real data:
//!
//! ```sh
//! cargo run --release --example characterize [path/to/trace.csv]
//! ```

use std::fs::File;
use std::io::BufReader;

use femux_repro::stats::desc::{
    coefficient_of_variation, fraction_where, mean, median, quantile,
};
use femux_repro::trace::io::read_trace;
use femux_repro::trace::synth::ibm::{generate, IbmFleetConfig};
use femux_repro::trace::Trace;

fn load() -> Trace {
    match std::env::args().nth(1) {
        Some(path) => {
            let file = File::open(&path).unwrap_or_else(|e| {
                panic!("cannot open {path}: {e}");
            });
            read_trace(BufReader::new(file)).unwrap_or_else(|e| {
                panic!("cannot parse {path}: {e}");
            })
        }
        None => generate(&IbmFleetConfig {
            n_apps: 300,
            span_days: 2,
            seed: 2024,
            max_invocations_per_app: 20_000,
            rate_scale: 0.3,
        }),
    }
}

fn main() {
    let trace = load();
    trace.validate().expect("trace is structurally valid");
    println!(
        "trace: {} workloads, {} invocations, {} days\n",
        trace.apps.len(),
        trace.total_invocations(),
        trace.span_days()
    );

    // §3.2 — inter-arrival times.
    let mut medians = Vec::new();
    let mut high_cv = 0usize;
    let mut counted = 0usize;
    let mut sub_second_invocations = 0u64;
    let mut total_iats = 0u64;
    for app in &trace.apps {
        let iats = app.iats_secs();
        if iats.len() < 5 {
            continue;
        }
        counted += 1;
        medians.push(median(&iats).expect("non-empty"));
        if coefficient_of_variation(&iats) > 1.0 {
            high_cv += 1;
        }
        sub_second_invocations +=
            iats.iter().filter(|x| **x < 1.0).count() as u64;
        total_iats += iats.len() as u64;
    }
    println!("inter-arrival times (paper: 94.5% sub-second, 96% CV>1):");
    println!(
        "  sub-second IATs: {:.1}%",
        100.0 * sub_second_invocations as f64 / total_iats.max(1) as f64
    );
    println!(
        "  workloads with sub-minute median IAT: {:.1}%",
        100.0 * fraction_where(&medians, |x| x < 60.0)
    );
    println!(
        "  workloads with CV > 1: {:.1}%",
        100.0 * high_cv as f64 / counted.max(1) as f64
    );

    // §3.2 — execution times.
    let means: Vec<f64> = trace
        .apps
        .iter()
        .filter(|a| !a.invocations.is_empty())
        .map(|a| mean(&a.durations_secs()))
        .collect();
    println!("\nexecution times (paper: 82% of workloads sub-second mean):");
    println!(
        "  workloads with mean exec < 1 s: {:.1}%",
        100.0 * fraction_where(&means, |x| x < 1.0)
    );
    println!(
        "  median of per-workload mean: {:.0} ms",
        1_000.0 * median(&means).unwrap_or(f64::NAN)
    );

    // §3.3 — platform delay.
    let p99s: Vec<f64> = trace
        .apps
        .iter()
        .filter(|a| a.invocations.len() >= 10)
        .map(|a| quantile(&a.delays_secs(), 0.99).expect("non-empty"))
        .collect();
    println!("\nplatform delay (paper: ~20% of workloads p99 > 1 s):");
    println!(
        "  workloads with p99 delay > 1 s: {:.1}%",
        100.0 * fraction_where(&p99s, |x| x > 1.0)
    );

    // §3.4 — configuration marginals.
    let n = trace.apps.len() as f64;
    let frac = |pred: &dyn Fn(&femux_repro::trace::AppConfig) -> bool| {
        100.0
            * trace.apps.iter().filter(|a| pred(&a.config)).count() as f64
            / n
    };
    println!("\nconfigurations (paper: 58.8% min-scale >= 1, 93.3% \
              concurrency 100):");
    println!(
        "  min-scale >= 1: {:.1}%",
        frac(&|c| c.min_scale >= 1)
    );
    println!(
        "  default CPU (1 vCPU): {:.1}%",
        frac(&|c| c.cpu_milli == 1_000)
    );
    println!(
        "  default memory (4 GB): {:.1}%",
        frac(&|c| c.mem_mb == 4_096)
    );
    println!(
        "  concurrency 100: {:.1}%",
        frac(&|c| c.concurrency == 100)
    );
}

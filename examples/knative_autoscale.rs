//! Mini-Knative: replay one application through the KPA model at
//! 2-second ticks, with and without FeMux intercepting the metric path,
//! and watch pod counts and cold starts (§5.2 / Fig. 13 of the paper).
//!
//! ```sh
//! cargo run --release --example knative_autoscale
//! ```

use std::sync::Arc;

use femux_repro::core::config::FemuxConfig;
use femux_repro::core::model::{train, ClassifierKind, TrainApp};
use femux_repro::knative::{FemuxKnativePolicy, KpaConfig, KpaPolicy};
use femux_repro::sim::{simulate_app, SimConfig};
use femux_repro::trace::types::{
    AppId, AppRecord, Invocation, WorkloadKind,
};

/// A 3-minute-period workload: one busy minute (10 rps), two idle —
/// long enough that Knative's 60-second scale-to-zero grace expires
/// between bursts.
fn periodic_app(minutes: u64) -> AppRecord {
    let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
    app.config.concurrency = 10;
    app.mem_used_mb = 256;
    for m in 0..minutes {
        if m % 3 == 0 {
            for k in 0..600u64 {
                app.invocations.push(Invocation {
                    start_ms: m * 60_000 + k * 100,
                    duration_ms: 1_000,
                    delay_ms: 0,
                });
            }
        }
    }
    app
}

fn main() {
    // Train a small FeMux model on similar periodic traffic.
    let cfg = FemuxConfig {
        block_len: 60,
        history: 30,
        label_stride: 10,
        ..FemuxConfig::for_tests()
    };
    let train_apps: Vec<TrainApp> = (0..4)
        .map(|i| TrainApp {
            concurrency: (0..400)
                .map(|t| if (t + i) % 3 == 0 { 10.0 } else { 0.0 })
                .collect(),
            exec_secs: 1.0,
            mem_gb: 0.25,
            pod_concurrency: 10,
        })
        .collect();
    let model = Arc::new(
        train(&train_apps, &cfg, ClassifierKind::KMeans).expect("model"),
    );

    let app = periodic_app(60);
    let span = 60 * 60_000u64;
    let sim_cfg = SimConfig {
        interval_ms: 2_000, // the KPA's 2-second decision loop
        respect_min_scale: false,
        ..SimConfig::default()
    };

    println!("replaying 1 hour of a 2-minute-period workload...\n");
    let mut kpa = KpaPolicy::new(KpaConfig::default());
    let reactive = simulate_app(&app, &mut kpa, span, &sim_cfg);
    let mut femux_policy = FemuxKnativePolicy::new(model, 1.0);
    let predictive = simulate_app(&app, &mut femux_policy, span, &sim_cfg);

    println!("                         knative-kpa    femux-override");
    println!(
        "cold starts          {:>15} {:>17}",
        reactive.costs.cold_starts, predictive.costs.cold_starts
    );
    println!(
        "cold-start seconds   {:>15.1} {:>17.1}",
        reactive.costs.cold_start_seconds,
        predictive.costs.cold_start_seconds
    );
    println!(
        "allocated GB-s       {:>15.1} {:>17.1}",
        reactive.costs.allocated_gb_seconds,
        predictive.costs.allocated_gb_seconds
    );
    println!(
        "forecaster in use: {}",
        femux_policy.manager().current()
    );

    // Pod-count timelines around one busy/idle transition (minutes
    // 20-24), sampled every 10 s.
    println!("\npod counts, minutes 20-24 (every 10 s):");
    let window = |r: &femux_repro::sim::SimResult| -> Vec<usize> {
        r.pod_counts[600..720].iter().step_by(5).copied().collect()
    };
    println!("  kpa:   {:?}", window(&reactive));
    println!("  femux: {:?}", window(&predictive));
    println!(
        "\nThe KPA reacts after each busy minute begins (cold starts); \
         the FeMux override pre-warms pods for the minute it forecast."
    );
}

//! Quickstart: train FeMux on a synthetic fleet and deploy it in the
//! simulator against Knative's default autoscaling.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use femux_repro::core::config::FemuxConfig;
use femux_repro::core::manager::FemuxPolicy;
use femux_repro::core::model::{train, ClassifierKind, TrainApp};
use femux_repro::rum::RumSpec;
use femux_repro::sim::{run_fleet, KnativeDefaultPolicy, SimConfig};
use femux_repro::trace::split::train_test_split;
use femux_repro::trace::synth::azure::{generate, AzureFleetConfig};

fn main() {
    // 1. Synthesize an Azure-'19-like fleet (per-minute counts, daily
    //    execution times, per-app memory) and split it 70/30.
    let fleet = generate(&AzureFleetConfig {
        n_apps: 40,
        days: 3,
        seed: 99,
        rate_scale: 0.3,
    });
    let split = train_test_split(fleet.apps.len(), 7);
    println!(
        "fleet: {} apps, {} invocations over {} days",
        fleet.apps.len(),
        fleet.total_invocations(),
        fleet.days
    );

    // 2. Train FeMux: label blocks with every candidate forecaster's
    //    RUM, extract features, cluster, and assign forecasters.
    let cfg = FemuxConfig {
        block_len: 240,
        history: 60,
        label_stride: 10,
        forecasters: vec![
            femux_repro::forecast::ForecasterKind::Ar,
            femux_repro::forecast::ForecasterKind::Fft,
            femux_repro::forecast::ForecasterKind::Ses,
            femux_repro::forecast::ForecasterKind::Markov,
        ],
        ..FemuxConfig::default()
    };
    let train_apps: Vec<TrainApp> = split
        .train
        .iter()
        .map(|&i| {
            let a = &fleet.apps[i];
            TrainApp {
                concurrency: a.concurrency_series(),
                exec_secs: a.daily_avg_exec_ms[0] / 1_000.0,
                mem_gb: a.mem_mb as f64 / 1_024.0,
                pod_concurrency: 1,
            }
        })
        .collect();
    let model = Arc::new(
        train(&train_apps, &cfg, ClassifierKind::KMeans)
            .expect("the training fleet yields blocks"),
    );
    println!(
        "trained on {} blocks from {} apps; default forecaster: {}",
        model.stats.n_blocks, model.stats.n_apps, model.default_forecaster
    );

    // 3. Replay the held-out apps through the request-level simulator
    //    under FeMux and under Knative's default reactive policy.
    let full = fleet.to_trace();
    let mut test_trace = femux_repro::trace::Trace::new(full.span_ms);
    for &i in &split.test {
        test_trace.apps.push(full.apps[i].clone());
    }
    let sim_cfg = SimConfig {
        respect_min_scale: false,
        ..SimConfig::default()
    };
    let femux_out = run_fleet(&test_trace, &sim_cfg, |_, app| {
        Box::new(FemuxPolicy::new(
            Arc::clone(&model),
            app.invocations
                .first()
                .map(|i| i.duration_ms as f64 / 1_000.0)
                .unwrap_or(1.0),
        ))
    });
    let knative_out = run_fleet(&test_trace, &sim_cfg, |_, _| {
        Box::new(KnativeDefaultPolicy)
    });

    // 4. Compare on the RUM FeMux optimizes.
    let rum = RumSpec::default_paper();
    let femux_rum = rum.evaluate_fleet(&femux_out.per_app);
    let knative_rum = rum.evaluate_fleet(&knative_out.per_app);
    println!("\n                      femux    knative-default");
    println!(
        "cold starts      {:>10} {:>18}",
        femux_out.total.cold_starts, knative_out.total.cold_starts
    );
    println!(
        "wasted GB-s      {:>10.0} {:>18.0}",
        femux_out.total.wasted_gb_seconds,
        knative_out.total.wasted_gb_seconds
    );
    println!("RUM              {femux_rum:>10.1} {knative_rum:>18.1}");
    println!(
        "\nFeMux changes RUM by {:+.1}% vs the Knative default.",
        100.0 * (femux_rum - knative_rum) / knative_rum
    );
}

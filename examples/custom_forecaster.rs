//! Extending FeMux: plug a custom forecaster into the simulator and
//! compare it against the built-in set on your own workload.
//!
//! The paper stresses that providers "can use their preferred set of
//! forecasters and metrics of interest" — the `Forecaster` trait is the
//! extension point.
//!
//! ```sh
//! cargo run --release --example custom_forecaster
//! ```

use femux_repro::forecast::{Forecaster, ForecasterKind};
use femux_repro::rum::RumSpec;
use femux_repro::sim::{simulate_app, ForecastPolicy, SimConfig};
use femux_repro::stats::rng::Rng;
use femux_repro::trace::types::{
    AppId, AppRecord, Invocation, WorkloadKind,
};

/// A seasonal-naive forecaster: predicts the value observed one period
/// ago. Four lines of logic, and on strongly daily-periodic traffic it
/// is hard to beat.
struct SeasonalNaive {
    period: usize,
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        (0..horizon)
            .map(|h| {
                let idx = (history.len() + h).checked_sub(self.period);
                match idx.and_then(|i| history.get(i)) {
                    Some(&v) => v.max(0.0),
                    None => history.last().copied().unwrap_or(0.0),
                }
            })
            .collect()
    }
}

fn main() {
    // An hourly-periodic workload: arrival rate swings between ~5 and
    // ~55 per second with a one-hour period, so capacity demand moves
    // between 1 and ~6 pods — room for forecasters to differ.
    let mut rng = Rng::seed_from_u64(0xCAFE);
    let span = 12 * 3_600_000u64;
    let minutes = (span / 60_000) as usize;
    let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
    app.config.concurrency = 10;
    app.mem_used_mb = 512;
    for m in 0..minutes {
        let rate_per_sec = 30.0
            + 25.0
                * (2.0 * std::f64::consts::PI * m as f64 / 60.0).sin();
        let n = rng.poisson(rate_per_sec * 60.0);
        for k in 0..n {
            app.invocations.push(Invocation {
                start_ms: m as u64 * 60_000 + (k * 60_000) / n.max(1),
                duration_ms: 1_000,
                delay_ms: 0,
            });
        }
    }
    println!(
        "workload: {} invocations over 12 h (hourly period)\n",
        app.invocations.len()
    );

    let sim_cfg = SimConfig {
        respect_min_scale: false,
        ..SimConfig::default()
    };
    let rum = RumSpec::default_paper();
    let mut rows: Vec<(String, f64, u64, f64)> = Vec::new();

    // The custom forecaster: the workload's period is 60 minutes, so a
    // seasonal-naive with period 60 predicts each minute from the same
    // minute one hour earlier.
    let mut custom = ForecastPolicy::new(Box::new(SeasonalNaive {
        period: 60,
    }));
    let res = simulate_app(&app, &mut custom, span, &sim_cfg);
    rows.push((
        "seasonal-naive (custom)".into(),
        rum.evaluate(&res.costs),
        res.costs.cold_starts,
        res.costs.wasted_gb_seconds,
    ));

    for kind in [
        ForecasterKind::Ar,
        ForecasterKind::Fft,
        ForecasterKind::Ses,
        ForecasterKind::Markov,
    ] {
        let mut policy = ForecastPolicy::new(kind.build());
        let res = simulate_app(&app, &mut policy, span, &sim_cfg);
        rows.push((
            kind.name().into(),
            rum.evaluate(&res.costs),
            res.costs.cold_starts,
            res.costs.wasted_gb_seconds,
        ));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    println!("{:<26} {:>8} {:>12} {:>14}", "policy", "RUM", "cold starts", "wasted GB-s");
    for (name, rum_val, cs, waste) in rows {
        println!("{name:<26} {rum_val:>8.1} {cs:>12} {waste:>14.1}");
    }
    println!(
        "\nAny type implementing `Forecaster` slots into ForecastPolicy, \
         FeMux's forecaster set, and the offline trainer."
    );
}

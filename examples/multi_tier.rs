//! Multi-tier RUMs: run premium apps under FeMux-CS and regular apps
//! under the default RUM on the same platform (§5.1.2 of the paper).
//!
//! ```sh
//! cargo run --release --example multi_tier
//! ```

use femux_repro::core::config::FemuxConfig;
use femux_repro::core::model::{train, ClassifierKind, TrainApp};
use femux_repro::rum::paper_tiers;
use femux_repro::stats::rng::Rng;
use femux_repro::trace::synth::azure::{generate, AzureFleetConfig};

use femux::label::{capacity_costs, AppParams};
use femux::manager::AppManager;
use std::sync::Arc;

/// Evaluates one app under a trained model on the capacity cost model.
fn eval(
    app: &TrainApp,
    model: &Arc<femux::model::FemuxModel>,
) -> femux_rum::CostRecord {
    let history = model.cfg.history;
    if app.concurrency.len() <= history {
        return femux_rum::CostRecord::default();
    }
    let mut mgr = AppManager::new(model.clone(), app.exec_secs);
    let mut forecast = Vec::new();
    for (t, &v) in app.concurrency.iter().enumerate() {
        if t >= history {
            forecast.push(mgr.forecast(1)[0]);
        }
        mgr.observe(v);
    }
    capacity_costs(
        &forecast,
        &app.concurrency[history..],
        &AppParams {
            mem_gb: app.mem_gb,
            pod_concurrency: 1.0,
            exec_secs: app.exec_secs,
            step_secs: 60.0,
            cold_start_secs: 0.808,
        },
    )
}

fn main() {
    let fleet = generate(&AzureFleetConfig {
        n_apps: 80,
        days: 4,
        seed: 1212,
        rate_scale: 0.4,
    });
    let apps: Vec<TrainApp> = fleet
        .apps
        .iter()
        .map(|a| TrainApp {
            concurrency: a.concurrency_series(),
            exec_secs: a.daily_avg_exec_ms[0] / 1_000.0,
            mem_gb: a.mem_mb as f64 / 1_024.0,
            pod_concurrency: 1,
        })
        .collect();
    let (train_apps, test_apps) = apps.split_at(apps.len() / 2);

    // The paper's two tiers: premium on FeMux-CS (4x cold-start weight),
    // regular on the default RUM.
    let (premium, regular, premium_frac) = paper_tiers();
    println!(
        "tiers: {} = {}, {} = {}, premium fraction = {premium_frac}",
        premium.name,
        premium.rum.label(),
        regular.name,
        regular.rum.label()
    );

    let base = FemuxConfig {
        block_len: 360,
        history: 120,
        label_stride: 15,
        ..FemuxConfig::default()
    };
    let default_model = Arc::new(
        train(train_apps, &base, ClassifierKind::KMeans).expect("model"),
    );
    let cs_cfg = FemuxConfig {
        rum: premium.rum,
        ..base
    };
    let cs_model = Arc::new(
        train(train_apps, &cs_cfg, ClassifierKind::KMeans).expect("model"),
    );

    // Assign 10 % of test apps to the premium tier.
    let mut rng = Rng::seed_from_u64(9);
    let n_premium = (test_apps.len() / 10).max(1);
    let premium_idx = rng.sample_indices(test_apps.len(), n_premium);

    let mut premium_cs_default = 0.0;
    let mut premium_cs_tiered = 0.0;
    let mut waste_all_cs = 0.0;
    let mut waste_tiered = 0.0;
    for (i, app) in test_apps.iter().enumerate() {
        let d = eval(app, &default_model);
        let c = eval(app, &cs_model);
        let is_premium = premium_idx.contains(&i);
        if is_premium {
            premium_cs_default += d.cold_start_seconds;
            premium_cs_tiered += c.cold_start_seconds;
        }
        waste_all_cs += c.wasted_gb_seconds;
        waste_tiered += if is_premium {
            c.wasted_gb_seconds
        } else {
            d.wasted_gb_seconds
        };
    }
    println!(
        "\npremium cold-start seconds: {premium_cs_default:.1} (all default) \
         -> {premium_cs_tiered:.1} (tiered) = {:+.1}%",
        100.0 * (premium_cs_tiered - premium_cs_default)
            / premium_cs_default.max(1e-9)
    );
    println!(
        "fleet wasted GB-s: {waste_all_cs:.0} (all FeMux-CS) -> \
         {waste_tiered:.0} (tiered) = {:+.1}%",
        100.0 * (waste_tiered - waste_all_cs) / waste_all_cs.max(1e-9)
    );
    println!(
        "\nThe tiered deployment gives premium apps the cold-start \
         treatment without paying FeMux-CS's memory bill fleet-wide."
    );
}

//! Determinism contract of the online serving harness.
//!
//! Four guarantees, each an acceptance criterion of the serving PR:
//!
//! 1. **Shard invariance**: same trace + model + seed ⇒ byte-identical
//!    decisions, outcomes, and metrics at 1 vs 8 shards (with and
//!    without an injected fault plan).
//! 2. **Replay ≡ offline**: a `ServedApp` fed an app's sample stream
//!    produces exactly `AppManager::history_of_kinds` — the online path
//!    and the offline pipeline agree decision for decision.
//! 3. **Incremental ≡ batch**: the streaming feature extractor matches
//!    the batch extractor to exact f64 equality at every block boundary
//!    across both synthetic fleets (IBM-like and Azure-like).
//! 4. **Strict ingest**: clamped out-of-order traces serve
//!    deterministically too, and the clamp count is surfaced.

use std::sync::{Arc, Mutex, OnceLock};

use femux::config::FemuxConfig;
use femux::manager::AppManager;
use femux::model::{train, ClassifierKind, FemuxModel, TrainApp};
use femux_features::{extract, is_idle, Block, IncrementalExtractor};
use femux_serve::harness::{run, ServeConfig};
use femux_serve::{ServedApp, TraceFeed};
use femux_trace::ingest::MonotonePolicy;
use femux_trace::repr::concurrency_per_minute;
use femux_trace::synth::azure::{self, AzureFleetConfig};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use femux_trace::{Invocation, Trace};

/// Serializes tests that toggle the process-global obs switches.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn fleet_trace() -> Trace {
    let mut trace = generate(&IbmFleetConfig::small(42));
    // A dozen apps keeps the sweep fast while still crossing several
    // block boundaries per app.
    trace.apps.truncate(12);
    trace
}

fn model() -> Arc<FemuxModel> {
    static MODEL: OnceLock<Arc<FemuxModel>> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let cfg = FemuxConfig::for_tests();
            let trace = fleet_trace();
            let apps: Vec<TrainApp> = trace
                .apps
                .iter()
                .map(|app| TrainApp {
                    concurrency: concurrency_per_minute(
                        &app.invocations,
                        trace.span_ms,
                    ),
                    exec_secs: 0.5,
                    mem_gb: 0.5,
                    pod_concurrency: app.config.concurrency.max(1),
                })
                .collect();
            Arc::new(
                train(&apps, &cfg, ClassifierKind::KMeans)
                    .expect("trainable fleet"),
            )
        })
        .clone()
}

#[test]
fn one_and_eight_shards_serve_byte_identically() {
    let _lock = TEST_LOCK.lock().expect("test lock");
    let trace = fleet_trace();
    let model = model();
    let serve = |shards: usize| {
        let _g = femux_obs::scoped(false);
        let report = run(
            &trace,
            model.clone(),
            &ServeConfig {
                shards,
                ..ServeConfig::default()
            },
        )
        .expect("sorted trace");
        let mut obs = femux_obs::collect();
        // femux-par's own dispatch counters legitimately see a
        // different item count (one work item per shard); everything
        // else must merge identically.
        obs.counters.retain(|k, _| !k.starts_with("par."));
        (report, obs.metrics_json())
    };
    let (one, metrics_one) = serve(1);
    let (eight, metrics_eight) = serve(8);
    assert_eq!(one.digest(), eight.digest());
    assert_eq!(one.apps, eight.apps, "full outcomes, not just digests");
    assert_eq!(
        metrics_one, metrics_eight,
        "serve.* metrics must merge identically at any shard count"
    );
    assert!(one.apps.iter().any(|a| a.blocks > 0));
}

#[test]
fn fault_injected_serving_is_shard_invariant() {
    let trace = fleet_trace();
    let model = model();
    let plan = femux_fault::FaultConfig::uniform(13, 0.05);
    let serve = |shards: usize| {
        run(
            &trace,
            model.clone(),
            &ServeConfig {
                shards,
                faults: Some(plan.clone()),
                ..ServeConfig::default()
            },
        )
        .expect("sorted trace")
    };
    let one = serve(1);
    let eight = serve(8);
    assert_eq!(
        one.digest(),
        eight.digest(),
        "fault streams are keyed by app id, not shard"
    );
    assert_eq!(one.apps, eight.apps);
    assert!(
        one.totals.total() > 0,
        "the plan must actually inject faults"
    );
}

#[test]
fn online_replay_equals_offline_pipeline() {
    let trace = fleet_trace();
    let model = model();
    let feed = TraceFeed::from_trace(&trace, MonotonePolicy::Reject)
        .expect("generator traces are sorted");
    for app in &feed.apps {
        let mut served = ServedApp::new(
            app.id,
            model.clone(),
            app.exec_secs,
            app.concurrency_limit,
        );
        let mut mgr = AppManager::new(model.clone(), app.exec_secs);
        for t in 0..feed.steps {
            let v = app.samples.get(t).copied().unwrap_or(0.0);
            served.step(t, v, 0.7);
            mgr.observe(v);
            let _ = mgr.forecast(1);
        }
        assert_eq!(
            served.decisions, mgr.history_of_kinds,
            "app {} diverged from the offline manager",
            app.id.0
        );
    }
}

/// Pushes a series through the incremental extractor and asserts exact
/// f64 equality with the batch extractor at every block boundary.
fn assert_parity(series: &[f64], exec_secs: f64, label: &str) {
    let cfg = FemuxConfig::for_tests();
    let mut inc = IncrementalExtractor::new(
        cfg.block_len,
        exec_secs,
        &cfg.features,
    );
    let mut boundaries = 0;
    for (t, &v) in series.iter().enumerate() {
        if let Some(out) = inc.push(v) {
            let block = Block {
                app_index: 0,
                seq: out.seq,
                series: series[t + 1 - cfg.block_len..t + 1].to_vec(),
                exec_secs,
            };
            let batch = extract(&block, &cfg.features);
            for (k, (b, i)) in
                batch.iter().zip(&out.features).enumerate()
            {
                assert_eq!(
                    b.to_bits(),
                    i.to_bits(),
                    "{label}: feature {:?} diverged at block {}: \
                     batch {b} vs incremental {i}",
                    cfg.features[k],
                    out.seq
                );
            }
            assert_eq!(out.idle, is_idle(&block), "{label}: idle bit");
            boundaries += 1;
        }
    }
    assert_eq!(boundaries, series.len() / cfg.block_len, "{label}");
}

#[test]
fn incremental_matches_batch_over_ibm_fleet() {
    let trace = generate(&IbmFleetConfig::small(17));
    let mut checked = 0;
    for app in trace.apps.iter().take(20) {
        let series =
            concurrency_per_minute(&app.invocations, trace.span_ms);
        if series.len() >= FemuxConfig::for_tests().block_len {
            assert_parity(
                &series,
                0.5,
                &format!("ibm app {}", app.id.0),
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the sweep must cover real apps");
}

#[test]
fn incremental_matches_batch_over_azure_fleet() {
    let fleet = azure::generate(&AzureFleetConfig::small(23));
    let mut checked = 0;
    for app in fleet.apps.iter().take(20) {
        let series: Vec<f64> = app
            .minute_counts
            .iter()
            .map(|&c| c as f64)
            .collect();
        if series.len() >= FemuxConfig::for_tests().block_len {
            assert_parity(
                &series,
                app.daily_avg_exec_ms.first().copied().unwrap_or(500.0)
                    / 1_000.0,
                &format!("azure app {}", app.id.0),
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the sweep must cover real apps");
}

#[test]
fn clamped_out_of_order_trace_serves_deterministically() {
    let mut trace = fleet_trace();
    // Corrupt one app's stream with a late timestamp.
    let invs = &mut trace.apps[0].invocations;
    assert!(invs.len() >= 2, "fleet app must have traffic");
    let mid = invs.len() / 2;
    invs[mid] = Invocation {
        start_ms: invs[mid - 1].start_ms.saturating_sub(1),
        ..invs[mid]
    };
    assert!(!trace.apps[0].is_sorted(), "corruption must take");
    let model = model();
    // Reject refuses the corrupted stream outright.
    assert!(run(
        &trace,
        model.clone(),
        &ServeConfig {
            shards: 1,
            ..ServeConfig::default()
        }
    )
    .is_err());
    // Clamp serves it, surfaces the count, and stays shard-invariant.
    let serve = |shards: usize| {
        run(
            &trace,
            model.clone(),
            &ServeConfig {
                shards,
                ingest: MonotonePolicy::Clamp,
                ..ServeConfig::default()
            },
        )
        .expect("clamp policy accepts the trace")
    };
    let one = serve(1);
    let eight = serve(8);
    assert!(one.clamped_timestamps > 0);
    assert_eq!(one.clamped_timestamps, eight.clamped_timestamps);
    assert_eq!(one.digest(), eight.digest());
}

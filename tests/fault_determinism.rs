//! Determinism contract of the fault-injection layer.
//!
//! Three guarantees, enforced end-to-end through the public crate
//! surfaces:
//!
//! 1. **Thread-invariant plans**: the same fault seed produces
//!    byte-identical fleet outcomes and telemetry reports at any
//!    `FEMUX_THREADS` value — per-app fault streams are derived from
//!    `(seed, app, domain)` alone, never from scheduling.
//! 2. **Inert at rate zero**: a plan with all rates zero is
//!    byte-identical to running with no fault layer at all, and emits
//!    no `fault.*` telemetry.
//! 3. **Exact accounting**: `fault.*` counters equal the merged
//!    [`femux_fault::FaultStats`] of the run — every injection observed
//!    exactly once.

use std::sync::{Arc, Mutex};

use femux::config::FemuxConfig;
use femux::manager::FemuxPolicy;
use femux::model::{train, ClassifierKind, FemuxModel, TrainApp};
use femux_fault::FaultConfig;
use femux_sim::{run_fleet_auto, FleetOutcome, SimConfig};
use femux_trace::repr::concurrency_per_minute;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use femux_trace::Trace;

/// Serializes tests that toggle the process-global obs switches or the
/// ambient thread count.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn fleet() -> Trace {
    generate(&IbmFleetConfig::small(42))
}

/// Trains a small FeMux model on the fleet itself (robustness tests
/// exercise the fault paths, not generalization).
fn model(trace: &Trace) -> Arc<FemuxModel> {
    let cfg = FemuxConfig::for_tests();
    let apps: Vec<TrainApp> = trace
        .apps
        .iter()
        .step_by(10)
        .map(|a| TrainApp {
            concurrency: concurrency_per_minute(
                &a.invocations,
                trace.span_ms,
            ),
            exec_secs: 0.5,
            mem_gb: 0.5,
            pod_concurrency: 1,
        })
        .collect();
    Arc::new(train(&apps, &cfg, ClassifierKind::KMeans).expect("model"))
}

/// Runs the fleet under FeMux with the given fault plan installed (both
/// the engine stream via `SimConfig` and the forecaster stream via
/// `FemuxPolicy::with_faults`).
fn run(
    trace: &Trace,
    model: &Arc<FemuxModel>,
    plan: Option<FaultConfig>,
) -> FleetOutcome {
    let cfg = SimConfig {
        respect_min_scale: false,
        faults: plan.clone(),
        ..SimConfig::default()
    };
    run_fleet_auto(trace, &cfg, |_, app| {
        Box::new(match &plan {
            Some(p) => FemuxPolicy::with_faults(
                Arc::clone(model),
                0.5,
                p.forecast_faults(app.id),
            ),
            None => FemuxPolicy::new(Arc::clone(model), 0.5),
        })
    })
}

#[test]
fn same_seed_is_byte_identical_across_thread_counts() {
    let _lock = TEST_LOCK.lock().expect("test lock");
    let trace = fleet();
    let model = model(&trace);
    let plan = FaultConfig::uniform(7, 0.05);
    let sweep = |threads: usize| {
        let _threads = femux_par::override_threads(threads);
        let _g = femux_obs::scoped(true);
        let out = run(&trace, &model, Some(plan.clone()));
        let report = femux_obs::collect();
        (out, report.metrics_json(), report.chrome_trace_json())
    };
    let (out_1, metrics_1, trace_1) = sweep(1);
    let (out_8, metrics_8, trace_8) = sweep(8);
    assert!(
        out_1.fault_totals.total() > 0,
        "a 5% plan must inject faults"
    );
    assert_eq!(
        format!("{:?}", (&out_1.total, &out_1.per_app, &out_1.fault_totals)),
        format!("{:?}", (&out_8.total, &out_8.per_app, &out_8.fault_totals)),
        "fault plans must replay identically at any thread count"
    );
    assert_eq!(metrics_1, metrics_8, "metrics must be thread-invariant");
    assert_eq!(trace_1, trace_8, "trace export must be thread-invariant");
}

#[test]
fn zero_rate_plan_is_byte_identical_to_no_fault_layer() {
    let _lock = TEST_LOCK.lock().expect("test lock");
    let trace = fleet();
    let model = model(&trace);
    let clean = run(&trace, &model, None);
    let zeroed = {
        let _g = femux_obs::scoped(false);
        let out = run(&trace, &model, Some(FaultConfig::off(7)));
        let report = femux_obs::collect();
        assert!(
            !report.counters.keys().any(|k| k.starts_with("fault.")),
            "a zero-rate plan must emit no fault telemetry"
        );
        out
    };
    assert_eq!(zeroed.fault_totals.total(), 0);
    assert_eq!(
        format!("{:?}", (&clean.total, &clean.per_app)),
        format!("{:?}", (&zeroed.total, &zeroed.per_app)),
        "zero-rate plan must not perturb the simulation"
    );
}

#[test]
fn telemetry_counts_every_injection_exactly_once() {
    let _lock = TEST_LOCK.lock().expect("test lock");
    let trace = fleet();
    let model = model(&trace);
    let _g = femux_obs::scoped(false);
    let out = run(&trace, &model, Some(FaultConfig::uniform(7, 0.05)));
    let report = femux_obs::collect();
    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("fault.pod_crashes"), out.fault_totals.pod_crashes);
    assert_eq!(
        counter("fault.cold_stragglers"),
        out.fault_totals.cold_stragglers
    );
    assert_eq!(
        counter("fault.actuation_delays"),
        out.fault_totals.actuation_delays
    );
    assert_eq!(
        counter("fault.actuation_drops"),
        out.fault_totals.actuation_drops
    );
    assert_eq!(
        counter("fault.report_losses"),
        out.fault_totals.report_losses
    );
    assert_eq!(
        counter("fault.forecast_faults"),
        out.fault_totals.forecast_faults
    );
}

#[test]
fn higher_rates_inject_more_and_still_complete() {
    let _lock = TEST_LOCK.lock().expect("test lock");
    let trace = fleet();
    let model = model(&trace);
    let low = run(&trace, &model, Some(FaultConfig::uniform(7, 0.0)));
    let high = run(&trace, &model, Some(FaultConfig::uniform(7, 0.1)));
    assert_eq!(low.fault_totals.total(), 0);
    assert!(high.fault_totals.total() > 0);
    assert_ne!(
        format!("{:?}", low.total),
        format!("{:?}", high.total),
        "a 10% fault plan must actually perturb the fleet"
    );
    for rec in &high.per_app {
        assert!(rec.allocated_gb_seconds.is_finite());
        assert!(rec.wasted_gb_seconds.is_finite());
        assert!(rec.service_seconds.is_finite());
    }
}

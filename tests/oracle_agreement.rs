//! Tier-1 gate: the production engine must agree with the
//! per-millisecond reference oracle on every observable, to exact
//! `f64` equality, across seeded synthetic IBM/Azure apps, the
//! adversarial battery, five policies, and both evaluation intervals —
//! and the sweep's rendered report must be byte-identical at 1 and 8
//! worker threads.

use femux_oracle::{
    compare_results, reference_simulate, run_sweep, PolicyKind,
    SweepConfig,
};
use femux_sim::{simulate_app, SimConfig};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

#[test]
fn quick_sweep_reports_exact_agreement() {
    let report = run_sweep(&SweepConfig::quick(0xF30A));
    assert!(report.is_clean(), "{}", report.render());
    assert!(report.cases >= 100, "sweep ran only {} cases", report.cases);
    assert!(
        report.invariant_checks >= 3 * report.cases,
        "only {} invariant checks over {} cases",
        report.invariant_checks,
        report.cases,
    );
}

#[test]
fn sweep_report_is_thread_count_invariant() {
    let cfg = SweepConfig::quick(0xF31B);
    let one = {
        let _guard = femux_par::override_threads(1);
        run_sweep(&cfg).render()
    };
    let eight = {
        let _guard = femux_par::override_threads(8);
        run_sweep(&cfg).render()
    };
    assert_eq!(one, eight, "report differs across thread counts");
}

#[test]
fn seeded_ibm_apps_agree_under_every_policy_and_interval() {
    // Direct agreement outside the sweep harness: first ten non-empty
    // apps of a seeded fleet, five policies, both intervals.
    let trace = generate(&IbmFleetConfig::small(0xF32C));
    let apps: Vec<_> = trace
        .apps
        .iter()
        .filter(|a| !a.invocations.is_empty())
        .take(10)
        .collect();
    assert!(apps.len() >= 5, "seeded fleet too sparse");
    let span_ms = 125_000;
    for app in apps {
        for policy in PolicyKind::ALL {
            for interval_ms in [60_000, 10_000] {
                let cfg = SimConfig {
                    interval_ms,
                    record_delays: true,
                    ..SimConfig::default()
                };
                let engine = simulate_app(
                    app,
                    policy.build().as_mut(),
                    span_ms,
                    &cfg,
                );
                let oracle = reference_simulate(
                    app,
                    policy.build().as_mut(),
                    span_ms,
                    &cfg,
                );
                if let Some(d) =
                    compare_results(&engine, &oracle, interval_ms)
                {
                    panic!(
                        "app {} policy {} interval {interval_ms}ms: {d}",
                        app.id,
                        policy.label(),
                    );
                }
            }
        }
    }
}

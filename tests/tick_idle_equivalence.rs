//! `tick_idle` equivalence registry.
//!
//! Every policy that overrides [`femux_sim::ScalingPolicy::tick_idle`]
//! must prove the idle fast path byte-identical to per-tick decisions
//! by appearing in an `assert_tick_idle_equivalence` call. The
//! `femux-audit` `contract-impl` rule enforces membership: a new
//! `tick_idle` override that is not registered here fails the audit
//! gate. The harness itself (scenario battery, both engines, both
//! intervals) lives in `femux_sim::equiv`.

use std::sync::Arc;

use femux::config::FemuxConfig;
use femux::manager::FemuxPolicy;
use femux::model::{train, ClassifierKind, FemuxModel, TrainApp};
use femux_baselines::{
    AquatopePolicy, HybridHistogramPolicy, IceBreakerPolicy,
};
use femux_forecast::simple::MovingAverageForecaster;
use femux_knative::integration::FemuxKnativePolicy;
use femux_knative::kpa::{KpaConfig, KpaPolicy};
use femux_sim::{
    assert_tick_idle_equivalence, FixedPolicy, ForecastPolicy,
    KeepAlivePolicy, KnativeDefaultPolicy, ZeroPolicy,
};
use femux_trace::repr::concurrency_per_minute;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

/// Trains a small FeMux model for the FeMux-family policies (the
/// harness checks idle-path equivalence, not forecast quality).
fn model() -> Arc<FemuxModel> {
    let trace = generate(&IbmFleetConfig::small(0x71DE));
    let cfg = FemuxConfig::for_tests();
    let apps: Vec<TrainApp> = trace
        .apps
        .iter()
        .step_by(25)
        .map(|a| TrainApp {
            concurrency: concurrency_per_minute(
                &a.invocations,
                trace.span_ms,
            ),
            exec_secs: 0.5,
            mem_gb: 0.5,
            pod_concurrency: 1,
        })
        .collect();
    Arc::new(train(&apps, &cfg, ClassifierKind::KMeans).expect("model"))
}

#[test]
fn sim_policies_fast_forward_equivalently() {
    assert_tick_idle_equivalence("KeepAlivePolicy", &mut || {
        Box::new(KeepAlivePolicy::five_minutes())
    });
    assert_tick_idle_equivalence("KnativeDefaultPolicy", &mut || {
        Box::new(KnativeDefaultPolicy)
    });
    assert_tick_idle_equivalence("ForecastPolicy", &mut || {
        Box::new(ForecastPolicy::new(Box::new(
            MovingAverageForecaster::knative(),
        )))
    });
    assert_tick_idle_equivalence("FixedPolicy", &mut || {
        Box::new(FixedPolicy(2))
    });
    assert_tick_idle_equivalence("ZeroPolicy", &mut || {
        Box::new(ZeroPolicy)
    });
}

#[test]
fn knative_policies_fast_forward_equivalently() {
    assert_tick_idle_equivalence("KpaPolicy", &mut || {
        Box::new(KpaPolicy::new(KpaConfig::default()))
    });
    let model = model();
    assert_tick_idle_equivalence("FemuxKnativePolicy", &mut || {
        Box::new(FemuxKnativePolicy::new(Arc::clone(&model), 0.5))
    });
}

#[test]
fn femux_manager_fast_forwards_equivalently() {
    let model = model();
    assert_tick_idle_equivalence("FemuxPolicy", &mut || {
        Box::new(FemuxPolicy::new(Arc::clone(&model), 0.5))
    });
}

#[test]
fn baseline_policies_fast_forward_equivalently() {
    // Aquatope trains a Gaussian-process surrogate on an arrival
    // series; a deterministic diurnal-ish ramp is representative.
    let arrivals: Vec<f64> = (0..240)
        .map(|i| ((i % 60) as f64 / 10.0).floor())
        .collect();
    assert_tick_idle_equivalence("AquatopePolicy", &mut || {
        Box::new(AquatopePolicy::train(&arrivals, 0xAC0A).0)
    });
    assert_tick_idle_equivalence("HybridHistogramPolicy", &mut || {
        Box::new(HybridHistogramPolicy::new())
    });
    assert_tick_idle_equivalence("IceBreakerPolicy", &mut || {
        Box::new(IceBreakerPolicy::new())
    });
}

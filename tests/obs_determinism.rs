//! Determinism contract of the observability layer.
//!
//! Two guarantees, both load-bearing for the paper reproduction:
//!
//! 1. **Inert by default**: enabling telemetry must not change a single
//!    byte of any experiment's semantic output — the instrumented sweep
//!    produces exactly the cost records of the uninstrumented one.
//! 2. **Thread-invariant reports**: with telemetry on, the merged
//!    metrics and trace exports are byte-identical at any
//!    `FEMUX_THREADS` value, because counters merge commutatively and
//!    events are ordered by `(track, seq)` with one track per
//!    sequential unit of work.

use std::sync::Mutex;

use femux_rum::CostRecord;
use femux_sim::{run_fleet_auto, KeepAlivePolicy, SimConfig};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

/// Serializes tests that toggle the process-global obs switches or the
/// ambient thread count.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// A fig11-style sweep: one fleet, two keep-alive policies, fleet
/// totals and per-app records collected for comparison.
fn sweep() -> Vec<(String, Vec<CostRecord>, CostRecord)> {
    let trace = generate(&IbmFleetConfig::small(42));
    let cfg = SimConfig {
        respect_min_scale: false,
        ..SimConfig::default()
    };
    ["ka-1min", "ka-10min"]
        .iter()
        .map(|&name| {
            let out = run_fleet_auto(&trace, &cfg, |_, _| {
                Box::new(match name {
                    "ka-1min" => KeepAlivePolicy::one_minute(),
                    _ => KeepAlivePolicy::ten_minutes(),
                })
            });
            (name.to_string(), out.per_app, out.total)
        })
        .collect()
}

#[test]
fn sweep_output_is_byte_identical_with_obs_on_and_off() {
    let _lock = TEST_LOCK.lock().expect("test lock");
    femux_obs::set_enabled(false);
    let baseline = sweep();
    let instrumented = {
        let _g = femux_obs::scoped(true);
        let r = sweep();
        let report = femux_obs::collect();
        assert!(
            report.counters.get("sim.invocations").copied().unwrap_or(0)
                > 0,
            "instrumented run must actually record telemetry"
        );
        assert!(
            !report.events.is_empty(),
            "event recording was enabled, events must exist"
        );
        r
    };
    // Semantic outputs match field-for-field (CostRecord is all
    // integers and exact float sums over identical operations).
    assert_eq!(
        format!("{baseline:?}"),
        format!("{instrumented:?}"),
        "telemetry must never perturb experiment output"
    );
}

#[test]
fn merged_reports_are_byte_identical_across_thread_counts() {
    let _lock = TEST_LOCK.lock().expect("test lock");
    let run = |threads: usize| {
        let _threads = femux_par::override_threads(threads);
        let _g = femux_obs::scoped(true);
        sweep();
        let report = femux_obs::collect();
        (report.metrics_json(), report.chrome_trace_json())
    };
    let (metrics_1, trace_1) = run(1);
    let (metrics_8, trace_8) = run(8);
    assert_eq!(metrics_1, metrics_8, "metrics must be thread-invariant");
    assert_eq!(trace_1, trace_8, "trace export must be thread-invariant");
    // And the export must be well-formed Chrome trace JSON.
    let summary = femux_obs::validate::validate_chrome_trace(&trace_1)
        .expect("sweep trace validates");
    assert!(summary.events > 0 && summary.tracks > 0);
}

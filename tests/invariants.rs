//! Property-based cross-crate invariants.
//!
//! These proptest suites drive the simulator and metric stack with
//! randomized workloads and assert the conservation laws every
//! experiment relies on: each invocation served exactly once, waste
//! bounded by allocation, cold starts bounded by invocations, RUM
//! monotone in its weights, and FFT/scaler round-trips exact.

use proptest::prelude::*;

use femux_rum::RumSpec;
use femux_sim::{simulate_app, KeepAlivePolicy, SimConfig, ZeroPolicy};
use femux_stats::fft::{fft, ifft, Complex};
use femux_trace::types::{AppId, AppRecord, Invocation, WorkloadKind};

fn arb_app() -> impl Strategy<Value = AppRecord> {
    (
        proptest::collection::vec((0u64..600_000, 1u32..30_000), 0..60),
        1u32..4u32,
        0u32..3u32,
    )
        .prop_map(|(mut raw, concurrency, min_scale)| {
            raw.sort_unstable();
            let mut app =
                AppRecord::new(AppId(0), WorkloadKind::Application);
            app.config.concurrency = concurrency;
            app.config.min_scale = min_scale;
            app.mem_used_mb = 512;
            app.invocations = raw
                .into_iter()
                .map(|(start_ms, duration_ms)| Invocation {
                    start_ms,
                    duration_ms,
                    delay_ms: 0,
                })
                .collect();
            app
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_conservation(app in arb_app(), keepalive in prop::bool::ANY) {
        let cfg = SimConfig::default();
        let res = if keepalive {
            simulate_app(&app, &mut KeepAlivePolicy::five_minutes(), 600_000, &cfg)
        } else {
            simulate_app(&app, &mut ZeroPolicy, 600_000, &cfg)
        };
        // Every invocation served exactly once.
        prop_assert_eq!(res.costs.invocations, app.invocations.len() as u64);
        // Structural consistency.
        prop_assert!(res.costs.check().is_ok(), "{:?}", res.costs.check());
        // Exec time conserved exactly.
        let expected_exec: f64 = app
            .invocations
            .iter()
            .map(|i| i.duration_ms as f64 / 1_000.0)
            .sum();
        prop_assert!((res.costs.exec_seconds - expected_exec).abs() < 1e-6);
        // Cold starts bounded by invocations.
        prop_assert!(res.costs.cold_starts <= res.costs.invocations);
    }

    #[test]
    fn min_scale_never_increases_cold_starts(app in arb_app()) {
        let with = {
            let mut a = app.clone();
            a.config.min_scale = 2;
            simulate_app(&a, &mut ZeroPolicy, 600_000, &SimConfig::default())
        };
        let without = {
            let mut a = app.clone();
            a.config.min_scale = 0;
            simulate_app(&a, &mut ZeroPolicy, 600_000, &SimConfig::default())
        };
        prop_assert!(with.costs.cold_starts <= without.costs.cold_starts);
    }

    #[test]
    fn rum_monotone_in_costs(
        cs in 0.0f64..1_000.0,
        waste in 0.0f64..10_000.0,
        extra in 0.01f64..100.0,
    ) {
        let base = femux_rum::CostRecord {
            invocations: 1,
            cold_starts: 1,
            cold_start_seconds: cs,
            wasted_gb_seconds: waste,
            allocated_gb_seconds: waste + 1.0,
            exec_seconds: 1.0,
            service_seconds: 1.0,
        };
        let mut worse = base;
        worse.cold_start_seconds += extra;
        worse.wasted_gb_seconds += extra;
        worse.allocated_gb_seconds += extra;
        for rum in [
            RumSpec::default_paper(),
            RumSpec::femux_cs(),
            RumSpec::femux_mem(),
            RumSpec::femux_exec(),
        ] {
            prop_assert!(rum.evaluate(&worse) > rum.evaluate(&base));
        }
    }

    #[test]
    fn fft_round_trip(values in proptest::collection::vec(-100.0f64..100.0, 1..300)) {
        let input: Vec<Complex> =
            values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let back = ifft(&fft(&input));
        for (a, b) in input.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!(b.im.abs() < 1e-6);
        }
    }

    #[test]
    fn scaler_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e3f64..1e3, 3),
            2..40,
        )
    ) {
        let scaler = femux_classify::StandardScaler::fit(&rows);
        for row in &rows {
            let mut r = row.clone();
            scaler.transform_row(&mut r);
            scaler.inverse_row(&mut r);
            for (a, b) in r.iter().zip(row) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn forecasters_always_return_valid_output(
        values in proptest::collection::vec(0.0f64..50.0, 0..200),
        horizon in 0usize..5,
    ) {
        for kind in femux_forecast::ForecasterKind::ALL {
            let mut f = kind.build();
            let out = f.forecast(&values, horizon);
            prop_assert_eq!(out.len(), horizon);
            let cap = 10.0
                * (1.0 + values.iter().fold(0.0f64, |a, &b| a.max(b)));
            for v in out {
                prop_assert!(v.is_finite() && v >= 0.0, "{} produced {}", kind, v);
                prop_assert!(
                    v <= cap + 1e-6,
                    "{} produced {} above cap {}",
                    kind, v, cap
                );
            }
        }
    }
}

//! Property-based cross-crate invariants.
//!
//! These randomized suites drive the simulator and metric stack with
//! arbitrary workloads and assert the conservation laws every experiment
//! relies on: each invocation served exactly once, waste bounded by
//! allocation, cold starts bounded by invocations, RUM monotone in its
//! weights, and FFT/scaler round-trips exact.
//!
//! The generators run on the in-tree deterministic PRNG instead of
//! proptest (the build environment is offline and cannot fetch it): each
//! property draws `CASES` inputs from seeded streams, so failures
//! reproduce exactly and every case's seed is printed on assert.

use femux_rum::RumSpec;
use femux_sim::{simulate_app, KeepAlivePolicy, SimConfig, ZeroPolicy};
use femux_stats::fft::{fft, ifft, Complex};
use femux_stats::rng::Rng;
use femux_trace::types::{AppId, AppRecord, Invocation, WorkloadKind};

/// Cases per property (matches the proptest config this replaces).
const CASES: u64 = 64;

/// Draws an arbitrary small application: up to 60 invocations inside a
/// 10-minute span, varied concurrency limit and min-scale.
fn arb_app(rng: &mut Rng) -> AppRecord {
    let n = rng.index(60);
    let mut raw: Vec<(u64, u32)> = (0..n)
        .map(|_| (rng.below(600_000), 1 + rng.below(29_999) as u32))
        .collect();
    raw.sort_unstable();
    let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
    app.config.concurrency = 1 + rng.below(3) as u32;
    app.config.min_scale = rng.below(3) as u32;
    app.mem_used_mb = 512;
    app.invocations = raw
        .into_iter()
        .map(|(start_ms, duration_ms)| Invocation {
            start_ms,
            duration_ms,
            delay_ms: 0,
        })
        .collect();
    app
}

#[test]
fn simulator_conservation() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xC0_5E_ED ^ case);
        let app = arb_app(&mut rng);
        let keepalive = rng.chance(0.5);
        let cfg = SimConfig::default();
        let res = if keepalive {
            simulate_app(
                &app,
                &mut KeepAlivePolicy::five_minutes(),
                600_000,
                &cfg,
            )
        } else {
            simulate_app(&app, &mut ZeroPolicy, 600_000, &cfg)
        };
        // Every invocation served exactly once.
        assert_eq!(
            res.costs.invocations,
            app.invocations.len() as u64,
            "case {case}"
        );
        // Structural consistency.
        assert!(
            res.costs.check().is_ok(),
            "case {case}: {:?}",
            res.costs.check()
        );
        // Exec time conserved exactly.
        let expected_exec: f64 = app
            .invocations
            .iter()
            .map(|i| i.duration_ms as f64 / 1_000.0)
            .sum();
        assert!(
            (res.costs.exec_seconds - expected_exec).abs() < 1e-6,
            "case {case}"
        );
        // Cold starts bounded by invocations.
        assert!(
            res.costs.cold_starts <= res.costs.invocations,
            "case {case}"
        );
    }
}

#[test]
fn min_scale_never_increases_cold_starts() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5CA1E ^ case);
        let app = arb_app(&mut rng);
        let with = {
            let mut a = app.clone();
            a.config.min_scale = 2;
            simulate_app(&a, &mut ZeroPolicy, 600_000, &SimConfig::default())
        };
        let without = {
            let mut a = app.clone();
            a.config.min_scale = 0;
            simulate_app(&a, &mut ZeroPolicy, 600_000, &SimConfig::default())
        };
        assert!(
            with.costs.cold_starts <= without.costs.cold_starts,
            "case {case}: {} > {}",
            with.costs.cold_starts,
            without.costs.cold_starts
        );
    }
}

#[test]
fn rum_monotone_in_costs() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x40_40 ^ case);
        let cs = rng.range_f64(0.0, 1_000.0);
        let waste = rng.range_f64(0.0, 10_000.0);
        let extra = rng.range_f64(0.01, 100.0);
        let base = femux_rum::CostRecord {
            invocations: 1,
            cold_starts: 1,
            cold_start_seconds: cs,
            wasted_gb_seconds: waste,
            allocated_gb_seconds: waste + 1.0,
            exec_seconds: 1.0,
            service_seconds: 1.0,
        };
        let mut worse = base;
        worse.cold_start_seconds += extra;
        worse.wasted_gb_seconds += extra;
        worse.allocated_gb_seconds += extra;
        for rum in [
            RumSpec::default_paper(),
            RumSpec::femux_cs(),
            RumSpec::femux_mem(),
            RumSpec::femux_exec(),
        ] {
            assert!(
                rum.evaluate(&worse) > rum.evaluate(&base),
                "case {case}: {rum:?}"
            );
        }
    }
}

#[test]
fn fft_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xFF7 ^ case);
        let len = 1 + rng.index(299);
        let input: Vec<Complex> = (0..len)
            .map(|_| Complex::new(rng.range_f64(-100.0, 100.0), 0.0))
            .collect();
        let back = ifft(&fft(&input));
        for (a, b) in input.iter().zip(&back) {
            assert!((a.re - b.re).abs() < 1e-6, "case {case}");
            assert!(b.im.abs() < 1e-6, "case {case}");
        }
    }
}

#[test]
fn scaler_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5CA_1E4 ^ case);
        let n_rows = 2 + rng.index(38);
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|_| {
                (0..3).map(|_| rng.range_f64(-1e3, 1e3)).collect()
            })
            .collect();
        let scaler = femux_classify::StandardScaler::fit(&rows);
        for row in &rows {
            let mut r = row.clone();
            scaler.transform_row(&mut r);
            scaler.inverse_row(&mut r);
            for (a, b) in r.iter().zip(row) {
                assert!((a - b).abs() < 1e-6, "case {case}");
            }
        }
    }
}

#[test]
fn forecasters_always_return_valid_output() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xF0_4E ^ case);
        let len = rng.index(200);
        let values: Vec<f64> =
            (0..len).map(|_| rng.range_f64(0.0, 50.0)).collect();
        let horizon = rng.index(5);
        for kind in femux_forecast::ForecasterKind::ALL {
            let mut f = kind.build();
            let out = f.forecast(&values, horizon);
            assert_eq!(out.len(), horizon, "case {case}: {kind}");
            let cap = 10.0
                * (1.0 + values.iter().fold(0.0f64, |a, &b| a.max(b)));
            for v in out {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "case {case}: {kind} produced {v}"
                );
                assert!(
                    v <= cap + 1e-6,
                    "case {case}: {kind} produced {v} above cap {cap}"
                );
            }
        }
    }
}

//! Determinism contract of the parallel offline pipeline.
//!
//! `femux-par` promises that every parallel section of the training
//! pipeline is byte-identical to its sequential execution: per-unit RNG
//! seeds are derived before dispatch, results are collected by input
//! index, and floating-point reductions stay sequential. These tests
//! enforce that promise end to end — a model trained with one worker
//! must equal a model trained with many, field for field.

use femux::config::FemuxConfig;
use femux::model::{
    label_fleet, train, Classifier, ClassifierKind, FemuxModel, TrainApp,
};
use femux_features::{extract_all, split_blocks, FeatureKind};
use femux_stats::rng::Rng;

/// Serializes the bits of a model that training determines, skipping
/// wall-clock diagnostics (which legitimately differ run to run).
fn fingerprint(model: &FemuxModel) -> String {
    let classifier = match &model.classifier {
        Classifier::KMeans {
            kmeans,
            cluster_forecasters,
        } => format!(
            "kmeans centroids={:?} inertia={} clusters={:?}",
            kmeans.centroids, kmeans.inertia, cluster_forecasters
        ),
        other => format!("{other:?}"),
    };
    format!(
        "default={:?} scaler={:?} classifier={classifier} \
         totals={:?} n_blocks={} n_apps={}",
        model.default_forecaster,
        model.scaler,
        model.stats.forecaster_totals,
        model.stats.n_blocks,
        model.stats.n_apps,
    )
}

/// A pseudo-random fleet with mixed workload shapes: periodic, bursty,
/// noisy, and idle apps, so labelling exercises several forecasters.
fn arb_fleet(rng: &mut Rng, n_apps: usize, len: usize) -> Vec<TrainApp> {
    (0..n_apps)
        .map(|_| {
            let shape = rng.index(4);
            let period = 20.0 + 40.0 * rng.f64();
            let level = 1.0 + 5.0 * rng.f64();
            let concurrency: Vec<f64> = (0..len)
                .map(|t| match shape {
                    0 => {
                        level
                            + (2.0 * std::f64::consts::PI * t as f64
                                / period)
                                .sin()
                                .abs()
                                * level
                    }
                    1 if rng.f64() < 0.1 => level * 8.0,
                    1 => 0.0,
                    2 => (level + rng.normal()).max(0.0),
                    _ => 0.0,
                })
                .collect();
            TrainApp {
                concurrency,
                exec_secs: 0.2 + rng.f64(),
                mem_gb: 0.125 + 0.5 * rng.f64(),
                pod_concurrency: 1 + rng.index(4) as u32,
            }
        })
        .collect()
}

fn test_cfg() -> FemuxConfig {
    FemuxConfig {
        block_len: 120,
        history: 60,
        label_stride: 20,
        ..FemuxConfig::for_tests()
    }
}

/// The ISSUE's hard requirement: a model trained under `FEMUX_THREADS=1`
/// is identical to one trained with many workers.
#[test]
fn train_is_identical_across_thread_counts() {
    let mut rng = Rng::seed_from_u64(0xDE7E);
    let apps = arb_fleet(&mut rng, 12, 600);
    let cfg = test_cfg();

    let sequential = {
        let _one = femux_par::override_threads(1);
        train(&apps, &cfg, ClassifierKind::KMeans).expect("model")
    };
    for threads in [2, 4, 8] {
        let _guard = femux_par::override_threads(threads);
        let parallel =
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model");
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "model diverged at {threads} threads"
        );
    }
}

/// Property-style sweep: many small pseudo-random fleets, every
/// classifier backend, parallel == sequential each time.
#[test]
fn property_parallel_train_matches_sequential() {
    let mut rng = Rng::seed_from_u64(0x9A11E7);
    for case in 0..6 {
        let n_apps = 4 + rng.index(8);
        let len = 360 + 120 * rng.index(3);
        let apps = arb_fleet(&mut rng, n_apps, len);
        let cfg = test_cfg();
        let kind = match case % 3 {
            0 => ClassifierKind::KMeans,
            1 => ClassifierKind::Tree,
            _ => ClassifierKind::Forest,
        };
        let seq = {
            let _one = femux_par::override_threads(1);
            train(&apps, &cfg, kind)
        };
        let par = {
            let _many = femux_par::override_threads(4);
            train(&apps, &cfg, kind)
        };
        match (seq, par) {
            (Some(s), Some(p)) => assert_eq!(
                fingerprint(&s),
                fingerprint(&p),
                "case {case} ({kind:?}) diverged"
            ),
            (None, None) => {}
            (s, p) => panic!(
                "case {case}: trainability diverged (seq {} par {})",
                s.is_some(),
                p.is_some()
            ),
        }
    }
}

/// Labelling (the most expensive stage) must emit identical blocks,
/// RUM matrices, and cost rows for any worker count.
#[test]
fn label_fleet_is_identical_across_thread_counts() {
    let mut rng = Rng::seed_from_u64(0x1AB31);
    let apps = arb_fleet(&mut rng, 10, 480);
    let cfg = test_cfg();
    let seq = {
        let _one = femux_par::override_threads(1);
        label_fleet(&apps, &cfg)
    };
    let par = {
        let _many = femux_par::override_threads(8);
        label_fleet(&apps, &cfg)
    };
    assert_eq!(seq.blocks, par.blocks);
    assert_eq!(seq.rum_costs, par.rum_costs);
    assert_eq!(seq.cost_records, par.cost_records);
}

/// Feature extraction must produce a bit-identical design matrix.
#[test]
fn extract_all_is_identical_across_thread_counts() {
    let mut rng = Rng::seed_from_u64(0xFEA7);
    let series: Vec<f64> =
        (0..2_520).map(|_| (rng.normal() + 2.0).max(0.0)).collect();
    let blocks = split_blocks(0, &series, 504, 0.7);
    let seq = {
        let _one = femux_par::override_threads(1);
        extract_all(&blocks, &FeatureKind::ALL)
    };
    let par = {
        let _many = femux_par::override_threads(8);
        extract_all(&blocks, &FeatureKind::ALL)
    };
    assert_eq!(seq, par);
}

//! End-to-end integration: synthetic fleet → FeMux training → simulated
//! deployment → RUM accounting, spanning every crate in the workspace.

use femux::config::FemuxConfig;
use femux::manager::FemuxPolicy;
use femux::model::{train, ClassifierKind, TrainApp};
use femux_rum::RumSpec;
use femux_sim::{run_fleet, KeepAlivePolicy, KnativeDefaultPolicy, SimConfig};
use femux_trace::repr::concurrency_per_minute;
use femux_trace::synth::azure::{generate, AzureFleetConfig};
use femux_trace::split::train_test_split;
use std::sync::Arc;

/// Builds TrainApps from an Azure-like fleet subset.
fn train_apps(
    fleet: &femux_trace::synth::azure::AzureFleet,
    idx: &[usize],
) -> Vec<TrainApp> {
    idx.iter()
        .map(|&i| {
            let app = &fleet.apps[i];
            TrainApp {
                concurrency: app.concurrency_series(),
                exec_secs: app.daily_avg_exec_ms[0] / 1_000.0,
                mem_gb: app.mem_mb as f64 / 1_024.0,
                pod_concurrency: 1,
            }
        })
        .collect()
}

#[test]
fn femux_end_to_end_beats_knative_default_on_rum() {
    // A small Azure-like fleet, split 70/30.
    let fleet = generate(&AzureFleetConfig {
        n_apps: 40,
        days: 3,
        seed: 99,
        rate_scale: 0.3,
    });
    let split = train_test_split(fleet.apps.len(), 7);

    // Train FeMux on the training apps with short blocks so several
    // switches happen within three days.
    let cfg = FemuxConfig {
        block_len: 240,
        history: 60,
        label_stride: 20,
        ..FemuxConfig::for_tests()
    };
    let model = Arc::new(
        train(&train_apps(&fleet, &split.train), &cfg, ClassifierKind::KMeans)
            .expect("training produces a model"),
    );

    // Deploy on the held-out test apps.
    let trace_full = fleet.to_trace();
    let mut test_trace = femux_trace::Trace::new(trace_full.span_ms);
    for &i in &split.test {
        test_trace.apps.push(trace_full.apps[i].clone());
    }
    let sim_cfg = SimConfig {
        respect_min_scale: false,
        ..SimConfig::default()
    };
    let femux_out = run_fleet(&test_trace, &sim_cfg, |_, app| {
        Box::new(FemuxPolicy::new(
            model.clone(),
            app.invocations
                .first()
                .map(|i| i.duration_ms as f64 / 1_000.0)
                .unwrap_or(1.0),
        ))
    });
    let knative_out = run_fleet(&test_trace, &sim_cfg, |_, _| {
        Box::new(KnativeDefaultPolicy)
    });
    let ka_out = run_fleet(&test_trace, &sim_cfg, |_, _| {
        Box::new(KeepAlivePolicy::ten_minutes())
    });

    // Conservation: every invocation served exactly once by all.
    assert_eq!(
        femux_out.total.invocations,
        test_trace.total_invocations()
    );
    assert_eq!(ka_out.total.invocations, femux_out.total.invocations);
    assert_eq!(
        knative_out.total.invocations,
        femux_out.total.invocations
    );
    for r in &femux_out.per_app {
        r.check().expect("per-app record consistent");
    }

    // The §5.2 claim: FeMux beats Knative's default reactive policy on
    // the RUM it optimizes (the paper reports a ~36 % reduction).
    let rum = RumSpec::default_paper();
    let femux_rum = rum.evaluate_fleet(&femux_out.per_app);
    let knative_rum = rum.evaluate_fleet(&knative_out.per_app);
    assert!(
        femux_rum < knative_rum,
        "femux RUM {femux_rum} vs knative default RUM {knative_rum}"
    );
    // And FeMux incurs far fewer cold starts than the reactive default,
    // while the generous 10-minute keep-alive stays the high-memory /
    // low-cold-start anchor it is in Fig. 11.
    assert!(
        femux_out.total.cold_starts < knative_out.total.cold_starts / 2,
        "femux {} vs knative {} cold starts",
        femux_out.total.cold_starts,
        knative_out.total.cold_starts
    );
    assert!(
        ka_out.total.wasted_gb_seconds
            > knative_out.total.wasted_gb_seconds,
        "the 10-min KA must waste more than the 1-min reactive default"
    );
}

#[test]
fn concurrency_representation_roundtrip_through_sim() {
    // The concurrency the simulator observes matches the analytic
    // representation computed from the trace.
    let fleet = generate(&AzureFleetConfig::small(5));
    let trace = fleet.to_trace();
    let app = trace
        .apps
        .iter()
        .max_by_key(|a| a.invocations.len())
        .expect("non-empty fleet");
    let analytic = concurrency_per_minute(&app.invocations, trace.span_ms);
    let res = femux_sim::simulate_app(
        app,
        &mut femux_sim::KnativeDefaultPolicy,
        trace.span_ms,
        &SimConfig::default(),
    );
    // Compare a few interior minutes (the sim adds no delay here because
    // min_scale/warm pods absorb most requests; small deviations come
    // from cold-start time shifting).
    let n = analytic.len().min(res.avg_concurrency.len());
    let analytic_sum: f64 = analytic[..n].iter().sum();
    let observed_sum: f64 = res.avg_concurrency[..n].iter().sum();
    let rel = (observed_sum - analytic_sum).abs()
        / analytic_sum.max(1e-9);
    assert!(
        rel < 0.2,
        "observed {observed_sum} vs analytic {analytic_sum}"
    );
}

//! Tier-1 gate: the workspace passes its own static-analysis audit.
//!
//! `femux-audit` enforces the determinism and hygiene contracts the
//! rest of this suite relies on (no wall-clock/entropy/env reads in
//! deterministic crates, no hash-ordered iteration reaching output,
//! pure `par_map` closures, no undocumented panic paths, offline-only
//! dependencies). This test is the enforcement point: it fails the
//! build on any unannotated finding, on any malformed or stale
//! `audit:allow`, and on any thread-count dependence in the audit's
//! own JSON report.

use femux_audit::{render_json, render_text, scan_workspace};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // The root package's manifest dir IS the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_zero_unannotated_findings() {
    let audit = scan_workspace(workspace_root()).expect("scan");
    assert!(audit.files_scanned > 100, "walk found the workspace");
    assert!(
        audit.findings.is_empty()
            && audit.malformed_allows.is_empty()
            && audit.unused_allows.is_empty(),
        "the workspace must audit clean; fix the sites or annotate \
         them with a reason:\n{}",
        render_text(&audit)
    );
    // Every suppression in the tree carries its justification.
    assert!(audit
        .allowed
        .iter()
        .all(|s| !s.reason.trim().is_empty()));
}

#[test]
fn report_is_byte_identical_at_any_thread_count() {
    // The audit dogfoods femux_par::par_map for its file scan; its
    // report must honor the same contract it enforces.
    let single = {
        let _guard = femux_par::override_threads(1);
        render_json(&scan_workspace(workspace_root()).expect("scan"))
    };
    let eight = {
        let _guard = femux_par::override_threads(8);
        render_json(&scan_workspace(workspace_root()).expect("scan"))
    };
    assert_eq!(single, eight);
    // And stable across repeated runs at the same count: no
    // timestamps, no absolute paths, no iteration-order leaks.
    let again = {
        let _guard = femux_par::override_threads(8);
        render_json(&scan_workspace(workspace_root()).expect("scan"))
    };
    assert_eq!(eight, again);
}

//! Workspace facade for the FeMux reproduction.
//!
//! Re-exports every member crate so examples and integration tests can
//! use one dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the per-figure reproduction index.

pub use femux as core;
pub use femux_audit as audit;
pub use femux_baselines as baselines;
pub use femux_classify as classify;
pub use femux_fault as fault;
pub use femux_features as features;
pub use femux_forecast as forecast;
pub use femux_knative as knative;
pub use femux_rum as rum;
pub use femux_serve as serve;
pub use femux_sim as sim;
pub use femux_stats as stats;
pub use femux_trace as trace;

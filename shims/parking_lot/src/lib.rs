//! In-tree stand-in for the `parking_lot` lock API.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! the real `parking_lot` from crates.io. This shim wraps the std
//! primitives behind `parking_lot`'s non-poisoning signatures (`read()` /
//! `write()` / `lock()` return guards directly). A poisoned std lock can
//! only arise from a panic inside a critical section, which in this
//! workspace is already a fatal bug, so the shim unwraps poison errors.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock,
    RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

/// Mutex with `parking_lot`'s panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }
}

//! In-tree stand-in for the Criterion benchmark harness.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! the real `criterion` from crates.io. This shim implements the API
//! subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! element throughput, and `Bencher::iter` — with a calibrated sampling
//! loop: it warms the benchmark up, sizes iterations-per-sample so one
//! sample costs roughly 50 ms, then reports `[min mean max]` over the
//! samples plus throughput when configured. Positional CLI arguments act
//! as substring filters, so `cargo bench -- femux_train` works as with
//! the real harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness state: CLI filters plus measurement settings.
pub struct Criterion {
    filters: Vec<String>,
    warmup: Duration,
    sample_count: usize,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: Vec::new(),
            warmup: Duration::from_millis(300),
            sample_count: 15,
            target_sample: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Reads positional CLI arguments as benchmark-name substring
    /// filters (flags are ignored, as are cargo's `--bench` markers).
    pub fn configure_from_args(mut self) -> Self {
        self.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        self
    }

    /// Prints the closing line (kept for API compatibility).
    pub fn final_summary(&self) {}

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty()
            || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Runs one benchmark under the sampling loop.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn run_one<F>(&self, id: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        // Warm up and calibrate: how many iterations fit in one sample?
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warmup_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warmup_start.elapsed() < self.warmup {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        }
        let iters_per_sample = (self.target_sample.as_nanos()
            / per_iter.as_nanos().max(1))
        .clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(
                bencher.elapsed.as_secs_f64() / iters_per_sample as f64,
            );
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let max = *samples.last().expect("non-empty samples");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut line = format!(
            "{id:<40} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        if let Some(t) = throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            line.push_str(&format!(
                "  thrpt: {:.3e} {unit}",
                count / mean
            ));
        }
        println!("{line}");
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// A group of related benchmarks sharing a name prefix and an optional
/// throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&full, self.throughput, f);
        self
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion =
                $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            sample_count: 3,
            target_sample: Duration::from_millis(2),
            ..Criterion::default()
        };
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion {
            filters: vec!["only-this".into()],
            warmup: Duration::from_millis(1),
            sample_count: 1,
            target_sample: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("only-this-one", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn groups_prefix_names_and_take_throughput() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            sample_count: 2,
            target_sample: Duration::from_millis(1),
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("inner", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }
}

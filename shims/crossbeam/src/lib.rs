//! In-tree stand-in for the `crossbeam` channel API.
//!
//! The build environment is fully offline, so the workspace cannot pull
//! the real `crossbeam` from crates.io. This shim provides the exact
//! subset the workspace uses — multi-producer/multi-consumer bounded and
//! unbounded channels with `recv_timeout` and `try_iter` — implemented
//! on a mutex-protected ring with condition variables. Semantics match
//! crossbeam for that subset: cloned receivers *share* the queue (each
//! message is consumed once), senders unblock receivers on disconnect,
//! and a bounded sender blocks while the channel is full.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    /// The sending half of a channel. Clonable; the channel disconnects
    /// when every sender is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable; clones share one queue.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(
        capacity: Option<usize>,
    ) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state =
                self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.capacity {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self
                            .shared
                            .not_full
                            .wait(state)
                            .expect("channel lock");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state =
                self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state =
                self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .expect("channel lock");
            }
        }

        /// Receives with a deadline relative to now.
        pub fn recv_timeout(
            &self,
            timeout: Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state =
                self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock");
                state = guard;
                if res.timed_out()
                    && state.queue.is_empty()
                    && state.senders > 0
                {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state =
                self.shared.state.lock().expect("channel lock");
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterator draining whatever is currently buffered without
        /// blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        /// True when nothing is buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers +=
                1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state =
                self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// See [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn round_trip_unbounded() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_timeout_times_out_then_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cloned_receivers_share_one_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut seen = Vec::new();
        seen.extend(rx1.try_iter());
        seen.extend(rx2.try_iter());
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            // Blocks until the consumer below frees a slot.
            tx.send(2).unwrap();
        });
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap();
    }

    #[test]
    fn mpmc_consumes_each_message_once() {
        let (tx, rx) = bounded(64);
        let n = 1_000u64;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for i in 1..=n {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 =
            consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, n * (n + 1) / 2);
    }
}

//! The pre-event-queue engine, frozen as an agreement reference.
//!
//! This module is a verbatim specialization (fault hooks and telemetry
//! stripped — both are inert in fault-free runs) of the per-tick engine
//! that `simulate_app` used before the event-queue rewrite: O(pods)
//! pod-vector scans per arrival, one full `on_tick` per interval for
//! the whole span, and per-tick `target_pods` calls only (never
//! [`crate::policy::ScalingPolicy::tick_idle`]).
//!
//! It exists so the rewrite is gated by *two* independent references:
//! `femux_oracle::reference_simulate` (per-millisecond) and this
//! per-tick twin. `femux-oracle`'s sweep asserts byte-exact agreement
//! of all three on every fault-free case. Do not "fix" or optimize this
//! module — its value is that it does not change.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use femux_rum::CostRecord;
use femux_trace::types::{AppRecord, Invocation};

use crate::cluster::{Cluster, PodRequest, ReleaseReason};
use crate::engine::{SimConfig, SimResult};
use crate::policy::{PolicyCtx, ScalingPolicy};

#[derive(Debug, Clone, Copy)]
struct Pod {
    uid: u64,
    warm_at: u64,
    keep_until: u64,
    queued: u64,
    joinable: bool,
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    concurrency: u64,
    cold_ms: u32,
    min_scale: usize,
    pods: Vec<Pod>,
    inflight: BinaryHeap<Reverse<u64>>,
    last_t: u64,
    alive_pod_ms: f64,
    interval_conc_ms: f64,
    interval_peak: f64,
    interval_arrivals: f64,
    avg_concurrency: Vec<f64>,
    peak_concurrency: Vec<f64>,
    arrivals: Vec<f64>,
    pod_counts: Vec<usize>,
    costs: CostRecord,
    delays: Vec<f64>,
    spawn_minute: u64,
    spawns_this_minute: usize,
    // The cluster layer is fault-free state, so the frozen twin mirrors
    // it: uid assignment, placement, eviction, and occupancy follow the
    // event engine's order exactly (node faults stay out — they require
    // a fault plan, which this engine rejects).
    cluster: Option<Cluster>,
    next_uid: u64,
}

impl Engine<'_> {
    fn advance(&mut self, t: u64) {
        debug_assert!(t >= self.last_t, "time went backwards");
        let mut now = self.last_t;
        while let Some(&Reverse(end)) = self.inflight.peek() {
            if end > t {
                break;
            }
            let dt = (end - now) as f64;
            self.interval_conc_ms += self.inflight.len() as f64 * dt;
            self.alive_pod_ms += self.pods.len() as f64 * dt;
            now = end;
            self.inflight.pop();
        }
        let dt = (t - now) as f64;
        self.interval_conc_ms += self.inflight.len() as f64 * dt;
        self.alive_pod_ms += self.pods.len() as f64 * dt;
        self.last_t = t;
        if let Some(cl) = self.cluster.as_mut() {
            cl.advance(t);
        }
    }

    fn warm_capacity(&self, t: u64) -> u64 {
        self.pods.iter().filter(|p| p.warm_at <= t).count() as u64
            * self.concurrency
    }

    fn waiting_on_warming(&self, t: u64) -> u64 {
        self.pods
            .iter()
            .filter(|p| p.warm_at > t)
            .map(|p| p.queued)
            .sum()
    }

    fn joinable_pod(&self, t: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, p) in self.pods.iter().enumerate() {
            if p.joinable && p.warm_at > t && p.queued < self.concurrency
            {
                match best {
                    Some(b) if self.pods[b].warm_at <= p.warm_at => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }

    /// Mirrors the event engine's reactive placement: try the cluster
    /// directly, else evict the minimum-`(warm_at, uid)` warm
    /// (`warm_at <= t`) unprotected (`keep_until <= t`) pod, else
    /// report saturation. Returns whether a slot was found.
    fn place_reactive(&mut self, t: u64) -> bool {
        let uid = self.next_uid;
        if self
            .cluster
            .as_mut()
            .expect("cluster layer on")
            .try_place(uid)
            .is_some()
        {
            return true;
        }
        let mut victim: Option<(u64, u64, usize)> = None;
        for (i, p) in self.pods.iter().enumerate() {
            if p.warm_at <= t && p.keep_until <= t {
                let key = (p.warm_at, p.uid);
                if victim.is_none_or(|(w, u, _)| key < (w, u)) {
                    victim = Some((p.warm_at, p.uid, i));
                }
            }
        }
        let Some((_, victim_uid, victim_idx)) = victim else {
            self.cluster
                .as_mut()
                .expect("cluster layer on")
                .saturated_overcommits += 1;
            return false;
        };
        let node = self
            .cluster
            .as_mut()
            .expect("cluster layer on")
            .release(victim_uid, ReleaseReason::Evicted);
        self.pods.remove(victim_idx);
        let placed = self
            .cluster
            .as_mut()
            .expect("cluster layer on")
            .try_place(uid);
        debug_assert_eq!(placed, Some(node), "eviction frees the victim's node");
        true
    }

    fn on_arrival(&mut self, inv: &Invocation, interval_end: u64) {
        let t = inv.start_ms;
        self.advance(t);
        self.interval_arrivals += 1.0;
        let warm = self.warm_capacity(t);
        let executing =
            self.inflight.len() as u64 - self.waiting_on_warming(t);
        let dur = inv.duration_ms as u64;
        let delay_ms = if executing < warm {
            0u64
        } else if let Some(slot) = self.joinable_pod(t) {
            let pod = &mut self.pods[slot];
            let wait = pod.warm_at - t;
            let end = pod.warm_at + dur;
            pod.queued += 1;
            pod.keep_until = pod.keep_until.max(interval_end).max(end);
            self.costs.cold_starts += 1;
            self.costs.cold_start_seconds += wait as f64 / 1_000.0;
            wait
        } else {
            let cold = self.cold_ms as u64;
            // Cluster layer: the spawn needs a slot — direct placement,
            // else eviction of the idle-longest unprotected warm pod,
            // else saturation (full cold penalty and no pod), in the
            // event engine's exact order.
            let placed = match self.cluster {
                Some(_) => self.place_reactive(t),
                None => true,
            };
            if placed {
                let end = t + cold + dur;
                self.pods.push(Pod {
                    uid: self.next_uid,
                    warm_at: t + cold,
                    keep_until: interval_end.max(end),
                    queued: 1,
                    joinable: true,
                });
                self.next_uid += 1;
            }
            self.costs.cold_starts += 1;
            self.costs.cold_start_seconds += cold as f64 / 1_000.0;
            cold
        };
        self.inflight.push(Reverse(t + delay_ms + dur));
        self.interval_peak =
            self.interval_peak.max(self.inflight.len() as f64);
        self.costs.invocations += 1;
        self.costs.exec_seconds += dur as f64 / 1_000.0;
        self.costs.service_seconds += (delay_ms + dur) as f64 / 1_000.0;
        if self.cfg.record_delays {
            self.delays.push(delay_ms as f64 / 1_000.0);
        }
    }

    fn proactive_spawn_allowed(&mut self, t: u64) -> bool {
        let Some(limit) = self.cfg.scale_limit else {
            return true;
        };
        if self.pods.len() < limit.threshold {
            return true;
        }
        let minute = t / 60_000;
        if minute != self.spawn_minute {
            self.spawn_minute = minute;
            self.spawns_this_minute = 0;
        }
        if self.spawns_this_minute < limit.per_minute {
            self.spawns_this_minute += 1;
            true
        } else {
            false
        }
    }

    fn on_tick(
        &mut self,
        t: u64,
        policy: &mut dyn ScalingPolicy,
        config: &femux_trace::types::AppConfig,
    ) {
        self.advance(t);
        let avg = self.interval_conc_ms / self.cfg.interval_ms as f64;
        self.avg_concurrency.push(avg);
        self.peak_concurrency.push(self.interval_peak);
        self.arrivals.push(self.interval_arrivals);
        self.interval_conc_ms = 0.0;
        self.interval_peak = self.inflight.len() as f64;
        self.interval_arrivals = 0.0;

        let ctx = PolicyCtx {
            now_ms: t,
            interval_ms: self.cfg.interval_ms,
            avg_concurrency: &self.avg_concurrency,
            peak_concurrency: &self.peak_concurrency,
            arrivals: &self.arrivals,
            config,
            current_pods: self.pods.len(),
            inflight: self.inflight.len(),
        };
        let mut target = policy.target_pods(&ctx);
        if self.cfg.respect_min_scale {
            target = target.max(self.min_scale);
        }
        self.apply_target(t, target);
        self.pod_counts.push(self.pods.len());
    }

    fn apply_target(&mut self, t: u64, target: usize) {
        let current = self.pods.len();
        if target > current {
            let cold = self.cold_ms as u64;
            for _ in current..target {
                // Placement-denial check precedes the rate-limit check
                // (denials never consume rate-limit slots), mirroring
                // the event engine.
                if self.cluster.as_ref().is_some_and(|cl| !cl.can_place()) {
                    self.cluster
                        .as_mut()
                        .expect("checked")
                        .placement_denials += 1;
                    break;
                }
                if !self.proactive_spawn_allowed(t) {
                    break;
                }
                let uid = self.next_uid;
                self.next_uid += 1;
                if let Some(cl) = self.cluster.as_mut() {
                    let placed = cl.try_place(uid);
                    debug_assert!(placed.is_some(), "can_place pre-checked");
                }
                self.pods.push(Pod {
                    uid,
                    warm_at: t + cold,
                    keep_until: t,
                    queued: 0,
                    joinable: false,
                });
            }
        } else if target < current {
            let needed = (self.inflight.len() as u64)
                .div_ceil(self.concurrency)
                as usize;
            let protected =
                self.pods.iter().filter(|p| p.keep_until > t).count();
            let floor = target
                .max(needed)
                .max(protected)
                .max(if self.cfg.respect_min_scale {
                    self.min_scale
                } else {
                    0
                });
            if floor < current {
                self.pods.sort_by_key(|p| {
                    (Reverse(p.keep_until > t), p.warm_at)
                });
                let keep = floor.max(protected);
                for i in keep..self.pods.len() {
                    if let Some(cl) = self.cluster.as_mut() {
                        cl.release(
                            self.pods[i].uid,
                            ReleaseReason::ScaledDown,
                        );
                    }
                }
                self.pods.truncate(keep);
            }
        }
    }
}

/// Simulates one application with the frozen per-tick engine.
///
/// Byte-identical to [`crate::engine::simulate_app`] on fault-free
/// configurations (the differential-testing invariant this module
/// exists for). Panics if a fault plan is installed — the fault paths
/// were stripped, not reimplemented.
pub fn simulate_app_tickwise(
    app: &AppRecord,
    policy: &mut dyn ScalingPolicy,
    span_ms: u64,
    cfg: &SimConfig,
) -> SimResult {
    assert!(
        cfg.faults.is_none(),
        "the tickwise reference engine is fault-free only"
    );
    let cold_ms = cfg.cold_start_ms.unwrap_or(app.cold_start_ms);
    let min_scale = if cfg.respect_min_scale {
        app.config.min_scale as usize
    } else {
        0
    };
    let mem_gb = app.mem_used_mb as f64 / 1_024.0;
    let mut cluster = cfg.cluster.as_ref().map(|cc| {
        Cluster::new(
            cc,
            PodRequest {
                cpu_milli: app.config.cpu_milli as u64,
                mem_mb: app.mem_used_mb as u64,
            },
        )
    });
    let mut initial_pods: Vec<Pod> = Vec::with_capacity(min_scale);
    for uid in 0..min_scale as u64 {
        if let Some(cl) = cluster.as_mut() {
            if cl.try_place(uid).is_none() {
                cl.placement_denials += 1;
                continue;
            }
        }
        initial_pods.push(Pod {
            uid,
            warm_at: 0,
            keep_until: 0,
            queued: 0,
            joinable: false,
        });
    }
    let placed_initial = initial_pods.len();
    let mut eng = Engine {
        cfg,
        concurrency: app.config.concurrency.max(1) as u64,
        cold_ms,
        min_scale,
        pods: initial_pods,
        inflight: BinaryHeap::new(),
        last_t: 0,
        alive_pod_ms: 0.0,
        interval_conc_ms: 0.0,
        interval_peak: 0.0,
        interval_arrivals: 0.0,
        avg_concurrency: Vec::new(),
        peak_concurrency: Vec::new(),
        arrivals: Vec::new(),
        pod_counts: Vec::new(),
        costs: CostRecord::default(),
        delays: Vec::new(),
        spawn_minute: 0,
        spawns_this_minute: 0,
        cluster,
        next_uid: min_scale as u64,
    };

    let n_replay = app
        .invocations
        .partition_point(|i| i.start_ms < span_ms);
    let replay = &app.invocations[..n_replay];
    let mut next_tick = cfg.interval_ms;
    let mut idx = 0usize;
    while idx < replay.len() || next_tick <= span_ms {
        let arrival = replay.get(idx).map(|i| i.start_ms);
        match arrival {
            Some(a) if a < next_tick || next_tick > span_ms => {
                let interval_end = next_tick.min(span_ms);
                let inv = replay[idx];
                eng.on_arrival(&inv, interval_end);
                idx += 1;
            }
            _ => {
                eng.on_tick(next_tick, policy, &app.config);
                next_tick += cfg.interval_ms;
            }
        }
    }
    let last_tick = next_tick - cfg.interval_ms;
    if last_tick < span_ms {
        eng.advance(span_ms);
        let tail_ms = (span_ms - last_tick) as f64;
        let avg = eng.interval_conc_ms / tail_ms;
        eng.avg_concurrency.push(avg);
        eng.peak_concurrency.push(eng.interval_peak);
        eng.arrivals.push(eng.interval_arrivals);
        eng.interval_conc_ms = 0.0;
        eng.interval_peak = eng.inflight.len() as f64;
        eng.interval_arrivals = 0.0;
    }
    let last_end = eng
        .inflight
        .iter()
        .map(|Reverse(e)| *e)
        .max()
        .unwrap_or(eng.last_t)
        .max(span_ms);
    eng.advance(last_end);

    let alive_secs = eng.alive_pod_ms / 1_000.0;
    eng.costs.allocated_gb_seconds = mem_gb * alive_secs;
    let busy_pod_secs =
        eng.costs.exec_seconds / eng.concurrency as f64;
    eng.costs.wasted_gb_seconds =
        (eng.costs.allocated_gb_seconds - mem_gb * busy_pod_secs).max(0.0);
    let cluster_outcome = eng.cluster.take().map(|cl| {
        debug_assert_eq!(
            cl.total_pod_ms() as f64,
            eng.alive_pod_ms,
            "per-node occupancy must sum to the alive-time integral"
        );
        cl.into_outcome(last_end)
    });
    SimResult {
        costs: eng.costs,
        delays_secs: eng.delays,
        avg_concurrency: eng.avg_concurrency,
        peak_concurrency: eng.peak_concurrency,
        arrivals: eng.arrivals,
        pod_counts: eng.pod_counts,
        initial_pods: placed_initial,
        faults: femux_fault::FaultStats::default(),
        cluster: cluster_outcome,
        // The frozen twin predates the span layer and never implements
        // it; equivalence runs compare with `SimConfig::spans` unset.
        spans: Vec::new(),
    }
}

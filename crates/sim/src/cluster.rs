//! Cluster model: nodes with finite core/memory capacity, pluggable pod
//! placement, memory-pressure eviction accounting, and node fault domains.
//!
//! The cluster is a *per-app* construct: each `simulate_app` run instantiates
//! its own `Cluster` from the shared [`ClusterConfig`], so per-app
//! independence (and therefore thread-count invariance) is preserved by
//! construction. All bookkeeping is integer millisecond arithmetic; the
//! occupancy integral is accrued segment-wise (`pods_on_node * dt`) which is
//! exact in u64 and agrees bit-for-bit with the oracle's per-ms accumulation.
//!
//! Contracts (pinned by the three-way oracle gate and DESIGN.md):
//! - Every pod in the engine's pod vector is resident on exactly one node
//!   while the cluster layer is enabled; `sum(node_pod_ms) == alive_pod_ms`.
//! - Placement is deterministic: `BestFit` picks the fitting up-node with the
//!   least free memory after the scan (ties -> lowest index); `RoundRobin`
//!   scans circularly from a cursor that advances only on success.
//! - Conservation: `placed == evictions + scaled_down + pods_displaced +
//!   resident_end`. Saturated overcommits never enter the ledger because no
//!   pod is created.

use std::collections::BTreeMap;

/// Capacity of a single node. `cpu_milli` follows the trace convention
/// (1000 = one core); memory is in MiB like `AppRecord::mem_used_mb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    pub cpu_milli: u64,
    pub mem_mb: u64,
}

impl NodeConfig {
    /// A node that can never fill up. Used by the backward-compat gate: a
    /// single unbounded node must reproduce the free-floating (cluster-less)
    /// results bit-exactly.
    pub fn unbounded() -> Self {
        Self { cpu_milli: u64::MAX, mem_mb: u64::MAX }
    }
}

/// Which shipped placement policy to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    BestFit,
    RoundRobin,
}

/// Cluster shape shared across apps; cheap to clone per app run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    pub nodes: Vec<NodeConfig>,
    pub placement: PlacementKind,
}

impl ClusterConfig {
    /// `n` identical nodes under best-fit placement.
    pub fn uniform(n: usize, node: NodeConfig) -> Self {
        Self { nodes: vec![node; n], placement: PlacementKind::BestFit }
    }

    /// The backward-compat configuration: one node of infinite capacity.
    /// Placement always succeeds on node 0, eviction never triggers, and
    /// every non-cluster observable is bit-identical to `cluster: None`.
    pub fn unbounded() -> Self {
        Self::uniform(1, NodeConfig::unbounded())
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("cluster must have at least one node".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.cpu_milli == 0 || n.mem_mb == 0 {
                return Err(format!("node {i} has zero capacity"));
            }
        }
        Ok(())
    }
}

/// Resource demand of one pod. Uniform per app (derived from the app's
/// `cpu_milli` and `mem_used_mb`), which guarantees that evicting exactly one
/// pod frees exactly enough room for one replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodRequest {
    pub cpu_milli: u64,
    pub mem_mb: u64,
}

/// Live node state tracked by the cluster.
#[derive(Debug, Clone)]
pub struct Node {
    pub cfg: NodeConfig,
    pub used_cpu_milli: u64,
    pub used_mem_mb: u64,
    pub pods: u64,
    pub up: bool,
    /// Tick-aligned recovery deadline; meaningful only while `!up`.
    pub down_until_ms: u64,
}

impl Node {
    fn new(cfg: NodeConfig) -> Self {
        Self { cfg, used_cpu_milli: 0, used_mem_mb: 0, pods: 0, up: true, down_until_ms: 0 }
    }

    /// Whether one more `req`-sized pod fits right now. Saturating arithmetic
    /// keeps the unbounded node (u64::MAX capacity) well-defined.
    pub fn fits(&self, req: PodRequest) -> bool {
        self.up
            && self.used_cpu_milli.saturating_add(req.cpu_milli) <= self.cfg.cpu_milli
            && self.used_mem_mb.saturating_add(req.mem_mb) <= self.cfg.mem_mb
    }

    pub fn free_mem_mb(&self) -> u64 {
        self.cfg.mem_mb - self.used_mem_mb
    }
}

/// Why a pod left its node; selects the conservation counter to bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseReason {
    /// Memory-pressure eviction of an idle warm pod.
    Evicted,
    /// Policy scale-down or keep-alive expiry.
    ScaledDown,
    /// The hosting node crashed.
    NodeCrash,
}

/// Deterministic placement strategy. `pick` may mutate internal state (e.g.
/// the round-robin cursor) but must be a pure function of that state plus the
/// node array — no ambient randomness, so engine/tickwise/oracle agree.
pub trait PlacementPolicy: Send {
    fn pick(&mut self, nodes: &[Node], req: PodRequest) -> Option<usize>;
}

/// Fitting up-node with the least free memory (tightest fit); ties resolve to
/// the lowest node index.
pub struct BestFit;

impl PlacementPolicy for BestFit {
    fn pick(&mut self, nodes: &[Node], req: PodRequest) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, n) in nodes.iter().enumerate() {
            if !n.fits(req) {
                continue;
            }
            let key = n.free_mem_mb();
            match best {
                Some((k, _)) if k <= key => {}
                _ => best = Some((key, i)),
            }
        }
        best.map(|(_, i)| i)
    }
}

/// Circular scan from a cursor that advances past each successful placement.
/// A failed scan leaves the cursor untouched so a later retry sees the same
/// order.
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    pub fn new() -> Self {
        Self { cursor: 0 }
    }
}

impl Default for RoundRobin {
    fn default() -> Self {
        Self::new()
    }
}

impl PlacementPolicy for RoundRobin {
    fn pick(&mut self, nodes: &[Node], req: PodRequest) -> Option<usize> {
        let n = nodes.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if nodes[i].fits(req) {
                self.cursor = (i + 1) % n;
                return Some(i);
            }
        }
        None
    }
}

fn make_policy(kind: PlacementKind) -> Box<dyn PlacementPolicy> {
    match kind {
        PlacementKind::BestFit => Box::new(BestFit),
        PlacementKind::RoundRobin => Box::new(RoundRobin::new()),
    }
}

/// Final cluster observables attached to `SimResult`. Compared exactly (f64
/// bit equality via the usual `PartialEq` on finite values) by the oracle
/// differ.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterOutcome {
    /// Per-node occupancy integral, `node_pod_ms / 1000`.
    pub node_pod_seconds: Vec<f64>,
    /// Pods that ever obtained a node slot (min-scale, reactive, proactive,
    /// and post-crash restarts alike).
    pub placed: u64,
    /// Warm pods reclaimed by memory-pressure eviction.
    pub evictions: u64,
    /// Reactive spawns that found neither room nor a victim; the request ran
    /// overcommitted (full cold penalty, no pod created).
    pub saturated_overcommits: u64,
    /// Proactive (scale-up) placements refused for lack of room.
    pub placement_denials: u64,
    /// Pods released by policy scale-down or keep-alive expiry.
    pub scaled_down: u64,
    /// Pods killed because their node crashed.
    pub pods_displaced: u64,
    /// Pods still resident when the simulation drained.
    pub resident_end: u64,
    /// Node-crash draws that fired.
    pub node_crashes: u64,
    /// Displaced pods successfully respawned on a surviving node.
    pub node_restarts: u64,
}

impl ClusterOutcome {
    /// The placement ledger must balance: every placed pod leaves by exactly
    /// one of eviction, scale-down, or node crash — or is still resident.
    pub fn conserved(&self) -> bool {
        self.placed == self.evictions + self.scaled_down + self.pods_displaced + self.resident_end
    }

    /// Adds another ledger's counts into this one (commutative), for
    /// fleet- or sweep-level aggregation. Occupancy integrals sum
    /// node-wise; a shorter vector zero-extends, so clusters of
    /// different sizes can be absorbed into one running total. A sum of
    /// [`conserved`](Self::conserved) ledgers is itself conserved.
    pub fn absorb(&mut self, other: &ClusterOutcome) {
        if self.node_pod_seconds.len() < other.node_pod_seconds.len() {
            self.node_pod_seconds.resize(other.node_pod_seconds.len(), 0.0);
        }
        for (a, b) in
            self.node_pod_seconds.iter_mut().zip(&other.node_pod_seconds)
        {
            *a += b;
        }
        self.placed += other.placed;
        self.evictions += other.evictions;
        self.saturated_overcommits += other.saturated_overcommits;
        self.placement_denials += other.placement_denials;
        self.scaled_down += other.scaled_down;
        self.pods_displaced += other.pods_displaced;
        self.resident_end += other.resident_end;
        self.node_crashes += other.node_crashes;
        self.node_restarts += other.node_restarts;
    }
}

/// Per-app cluster state. Owns the occupancy ledger and the conservation
/// counters; the engine decides *when* to place/evict/crash, the cluster
/// records it.
pub struct Cluster {
    nodes: Vec<Node>,
    policy: Box<dyn PlacementPolicy>,
    req: PodRequest,
    pod_node: BTreeMap<u64, usize>,
    node_pod_ms: Vec<u64>,
    last_t: u64,
    pub placed: u64,
    pub evictions: u64,
    pub saturated_overcommits: u64,
    pub placement_denials: u64,
    pub scaled_down: u64,
    pub pods_displaced: u64,
    pub node_crashes: u64,
    pub node_restarts: u64,
}

impl Cluster {
    pub fn new(cfg: &ClusterConfig, req: PodRequest) -> Self {
        debug_assert!(cfg.validate().is_ok(), "invalid cluster config");
        Self {
            nodes: cfg.nodes.iter().copied().map(Node::new).collect(),
            policy: make_policy(cfg.placement),
            req,
            pod_node: BTreeMap::new(),
            node_pod_ms: vec![0; cfg.nodes.len()],
            last_t: 0,
            placed: 0,
            evictions: 0,
            saturated_overcommits: 0,
            placement_denials: 0,
            scaled_down: 0,
            pods_displaced: 0,
            node_crashes: 0,
            node_restarts: 0,
        }
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Accrue the occupancy integral up to `t`. Must be called before any
    /// residency change and once more at the drain end; exact in u64.
    pub fn advance(&mut self, t: u64) {
        debug_assert!(t >= self.last_t, "cluster time went backwards");
        let dt = t - self.last_t;
        if dt > 0 {
            for (i, n) in self.nodes.iter().enumerate() {
                self.node_pod_ms[i] += n.pods * dt;
            }
            self.last_t = t;
        }
    }

    /// Try to place pod `uid`; returns the chosen node on success.
    pub fn try_place(&mut self, uid: u64) -> Option<usize> {
        let i = self.policy.pick(&self.nodes, self.req)?;
        let n = &mut self.nodes[i];
        n.used_cpu_milli = n.used_cpu_milli.saturating_add(self.req.cpu_milli);
        n.used_mem_mb = n.used_mem_mb.saturating_add(self.req.mem_mb);
        n.pods += 1;
        let prev = self.pod_node.insert(uid, i);
        debug_assert!(prev.is_none(), "pod {uid} placed twice");
        self.placed += 1;
        Some(i)
    }

    /// Release pod `uid` from its node and bump the counter for `reason`.
    /// Returns the node the pod was resident on.
    pub fn release(&mut self, uid: u64, reason: ReleaseReason) -> usize {
        let i = self.pod_node.remove(&uid).expect("released pod was never placed");
        let n = &mut self.nodes[i];
        n.used_cpu_milli = n.used_cpu_milli.saturating_sub(self.req.cpu_milli);
        n.used_mem_mb = n.used_mem_mb.saturating_sub(self.req.mem_mb);
        n.pods -= 1;
        match reason {
            ReleaseReason::Evicted => self.evictions += 1,
            ReleaseReason::ScaledDown => self.scaled_down += 1,
            ReleaseReason::NodeCrash => self.pods_displaced += 1,
        }
        i
    }

    pub fn node_of(&self, uid: u64) -> Option<usize> {
        self.pod_node.get(&uid).copied()
    }

    /// Whether any up-node currently fits one more pod.
    pub fn can_place(&self) -> bool {
        self.nodes.iter().any(|n| n.fits(self.req))
    }

    /// Number of nodes currently up.
    pub fn up_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.up).count()
    }

    /// Mark node `i` down until `down_until_ms`, releasing every resident pod
    /// as displaced. Returns the displaced pod uids in ascending order so the
    /// engine can remove them from its own pod vector deterministically.
    pub fn crash_node(&mut self, i: usize, down_until_ms: u64) -> Vec<u64> {
        debug_assert!(self.nodes[i].up, "crashed a node that was already down");
        self.nodes[i].up = false;
        self.nodes[i].down_until_ms = down_until_ms;
        self.node_crashes += 1;
        let victims: Vec<u64> =
            self.pod_node.iter().filter(|&(_, &n)| n == i).map(|(&uid, _)| uid).collect();
        for &uid in &victims {
            self.release(uid, ReleaseReason::NodeCrash);
        }
        victims
    }

    /// Bring any node whose recovery deadline has passed back up.
    pub fn recover_due(&mut self, t: u64) {
        for n in &mut self.nodes {
            if !n.up && t >= n.down_until_ms {
                n.up = true;
                n.down_until_ms = 0;
            }
        }
    }

    /// Close the ledger at `end_t` and emit the outcome.
    pub fn into_outcome(mut self, end_t: u64) -> ClusterOutcome {
        self.advance(end_t);
        let out = ClusterOutcome {
            node_pod_seconds: self.node_pod_ms.iter().map(|&ms| ms as f64 / 1000.0).collect(),
            placed: self.placed,
            evictions: self.evictions,
            saturated_overcommits: self.saturated_overcommits,
            placement_denials: self.placement_denials,
            scaled_down: self.scaled_down,
            pods_displaced: self.pods_displaced,
            resident_end: self.pod_node.len() as u64,
            node_crashes: self.node_crashes,
            node_restarts: self.node_restarts,
        };
        debug_assert!(out.conserved(), "cluster conservation violated: {out:?}");
        out
    }

    /// Total occupancy across nodes, for the `sum == alive_pod_ms` invariant.
    pub fn total_pod_ms(&self) -> u64 {
        self.node_pod_ms.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REQ: PodRequest = PodRequest { cpu_milli: 1000, mem_mb: 100 };

    fn small(n: usize, mem_mb: u64) -> ClusterConfig {
        ClusterConfig::uniform(n, NodeConfig { cpu_milli: 8000, mem_mb })
    }

    #[test]
    fn best_fit_prefers_tightest_node_with_low_index_ties() {
        let cfg = small(3, 300);
        let mut c = Cluster::new(&cfg, REQ);
        // Load node 1 with two pods so it is the tightest fit.
        assert_eq!(c.try_place(0), Some(0)); // all empty: tie -> node 0
        // Manually skew: place two more, best-fit now prefers node 0 (least
        // free after first placement).
        assert_eq!(c.try_place(1), Some(0));
        assert_eq!(c.try_place(2), Some(0));
        // Node 0 is full (300/100 = 3 pods); next goes to node 1.
        assert_eq!(c.try_place(3), Some(1));
        // Node 1 is now tighter than node 2; stays on node 1.
        assert_eq!(c.try_place(4), Some(1));
    }

    #[test]
    fn round_robin_cycles_and_skips_full_nodes() {
        let cfg = ClusterConfig {
            nodes: vec![NodeConfig { cpu_milli: 8000, mem_mb: 100 }; 3],
            placement: PlacementKind::RoundRobin,
        };
        let mut c = Cluster::new(&cfg, REQ);
        assert_eq!(c.try_place(0), Some(0));
        assert_eq!(c.try_place(1), Some(1));
        assert_eq!(c.try_place(2), Some(2));
        // All full now (one pod each at 100/100 MiB).
        assert_eq!(c.try_place(3), None);
        c.release(1, ReleaseReason::ScaledDown);
        // Cursor sits at node 0 (wrapped); node 1 is the only fit.
        assert_eq!(c.try_place(4), Some(1));
    }

    #[test]
    fn occupancy_integral_is_segment_exact() {
        let cfg = small(2, 1000);
        let mut c = Cluster::new(&cfg, REQ);
        c.try_place(0);
        c.advance(500); // 1 pod * 500ms on node 0
        c.try_place(1);
        c.advance(1500); // 2 pods * 1000ms on node 0
        c.release(0, ReleaseReason::ScaledDown);
        let out = c.into_outcome(2000); // 1 pod * 500ms
        assert_eq!(out.node_pod_seconds, vec![3.0, 0.0]);
        assert!(out.conserved());
    }

    #[test]
    fn crash_displaces_residents_and_blocks_placement_until_recovery() {
        let cfg = small(2, 1000);
        let mut c = Cluster::new(&cfg, REQ);
        for uid in 0..3 {
            assert_eq!(c.try_place(uid), Some(0));
        }
        let victims = c.crash_node(0, 60_000);
        assert_eq!(victims, vec![0, 1, 2]);
        assert_eq!(c.pods_displaced, 3);
        assert_eq!(c.node_crashes, 1);
        assert_eq!(c.up_nodes(), 1);
        // Placement lands on the surviving node.
        assert_eq!(c.try_place(3), Some(1));
        c.recover_due(59_999);
        assert_eq!(c.up_nodes(), 1);
        c.recover_due(60_000);
        assert_eq!(c.up_nodes(), 2);
        // Recovered node 0 is empty (1000 MiB free); node 1 holds uid 3
        // (900 MiB free) and is therefore the tighter best-fit target.
        assert_eq!(c.try_place(4), Some(1));
    }

    #[test]
    fn best_fit_picks_least_free_after_recovery() {
        let cfg = small(2, 1000);
        let mut c = Cluster::new(&cfg, REQ);
        c.try_place(0); // node 0
        c.crash_node(0, 10);
        c.try_place(1); // node 1 (only up node)
        c.recover_due(10);
        // node 0 empty (1000 free), node 1 has one pod (900 free): best fit -> node 1.
        assert_eq!(c.try_place(2), Some(1));
    }

    #[test]
    fn unbounded_single_node_always_places() {
        let cfg = ClusterConfig::unbounded();
        let mut c = Cluster::new(&cfg, REQ);
        for uid in 0..10_000 {
            assert_eq!(c.try_place(uid), Some(0));
        }
        let out = c.into_outcome(0);
        assert_eq!(out.placed, 10_000);
        assert_eq!(out.resident_end, 10_000);
        assert!(out.conserved());
    }

    #[test]
    fn conservation_holds_across_mixed_releases() {
        let cfg = small(4, 500);
        let mut c = Cluster::new(&cfg, REQ);
        for uid in 0..12 {
            c.try_place(uid);
        }
        c.release(0, ReleaseReason::Evicted);
        c.release(1, ReleaseReason::ScaledDown);
        c.crash_node(c.node_of(2).unwrap(), 1000);
        let out = c.into_outcome(5000);
        assert_eq!(out.placed, 12);
        assert!(out.conserved());
    }
}

//! Per-application discrete-event simulation.
//!
//! Applications are independent in the paper's evaluation model (each has
//! its own pods), so the engine simulates one application at a time:
//! replaying its invocation stream against a [`ScalingPolicy`] consulted
//! at fixed intervals, and accounting cold starts, allocated and wasted
//! GB-seconds, and service times into a [`CostRecord`].
//!
//! The engine is organized around a future-event queue so that cost
//! scales with invocations and pod activity, never with the simulated
//! span: pod-warm events feed an incrementally maintained warm-pod
//! counter, a waiting-on-warming total, and a soonest-warm join index
//! (replacing per-arrival pod-vector scans), and quiescent stretches of
//! interval boundaries are fast-forwarded through
//! [`ScalingPolicy::tick_idle`] in O(1) per constant-target run instead
//! of O(span / interval). [`EngineStats`] witnesses the guarantee, and
//! the frozen per-tick twin in [`crate::tickwise`] plus the
//! `femux-oracle` per-millisecond reference gate its byte-exactness.
//!
//! Semantics (following §4.3.5 and prior-work conventions; this list is
//! the contract the `femux-oracle` reference simulator pins — any edit
//! here must be mirrored there):
//!
//! - A request arriving when warm capacity (warm pods × per-pod
//!   concurrency) can absorb the requests *executing on warm pods*
//!   executes immediately. Requests still pinned to a warming pod do
//!   not count against warm capacity.
//! - Otherwise the request queues on the soonest-warm reactively
//!   spawned pod that still has spare per-pod concurrency, paying the
//!   pod's remaining warm-up as its cold-start wait. Only when no such
//!   pod exists does it spawn a fresh pod and pay the full cold-start
//!   latency. Either way the request counts as a cold start (it waited
//!   on pod provisioning) and the pod is protected from removal until
//!   the end of the interval (and until the request finishes).
//! - Pods requested proactively by the policy become warm after the
//!   cold-start latency but requests never wait on them unless they are
//!   warm in time (AWS-style provisioned capacity: not routable until
//!   ready).
//! - `span_ms` bounds the replay: invocations at or after the span are
//!   never replayed (the train/test split depends on this); requests
//!   admitted before the span keep their pods alive until they finish
//!   and that overhang is accounted in allocation.
//! - When the span is not a whole number of intervals, the partial tail
//!   interval is closed into `avg_concurrency`/`peak_concurrency`/
//!   `arrivals` with a pro-rated divisor (`span - last tick`). No
//!   policy ever observes it and no fault draw applies to it.
//! - Scale-down happens only at interval boundaries, never below the
//!   number of pods needed by in-flight requests, the protected pods, or
//!   the user's minimum scale.
//! - Proactive scale-up obeys the AWS-style rate limit (at most
//!   `limit.per_minute` new pods per minute once `limit.threshold` pods
//!   are allocated). Reactive cold-start spawns are not limited (the
//!   request has already committed to waiting).
//! - With a [`femux_fault::FaultConfig`] installed, the engine injects
//!   pod crashes (restart-as-cold-start, allocation uninterrupted),
//!   cold-start stragglers, report loss (`NaN` concurrency samples),
//!   and actuation delay/drop through a pending-actuation queue, all
//!   drawn from a per-app deterministic stream in a fixed order (see
//!   `femux-fault`'s crate docs for the contract).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use femux_fault::{ActuationFate, AppFaults, FaultStats, NodeFaults};
use femux_obs::span::{
    InvocationSpan, PodOrigin, SpanGuard, SpanSampler, WaitCause,
};
use femux_obs::FlowPhase;
use femux_rum::CostRecord;
use femux_trace::types::{AppRecord, Invocation};

use crate::cluster::{Cluster, ClusterOutcome, PodRequest, ReleaseReason};
use crate::policy::{IdleTicks, PolicyCtx, ScalingPolicy};

/// Backoff cap for displaced-pod rescheduling after a node crash: the
/// retry penalty is `2^strikes − 1` ticks, clamped at this exponent
/// (mirroring the AppManager's forecast-failure backoff idiom).
const MAX_RESTART_STRIKE_EXPONENT: u32 = 6;

/// Flow-id namespace for node-crash causal chains: XORed with the
/// running node-crash ordinal so every crash episode gets a distinct
/// flow, and displaced-pod restarts `Step` on the crash that displaced
/// them.
const NODE_CRASH_FLOW_BASE: u64 = 0x4E0D_ECAF_0000_0000;

/// AWS-style scale-out rate limit (§5.1: 500 new instances per minute
/// once above 3,000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleLimit {
    /// Pod count above which the limit engages.
    pub threshold: usize,
    /// Maximum proactive spawns per minute while engaged.
    pub per_minute: usize,
}

impl ScaleLimit {
    /// The AWS Lambda published limit.
    pub fn aws() -> Self {
        ScaleLimit {
            threshold: 3_000,
            per_minute: 500,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Scaling-decision interval in ms (60 000 for the main evaluation;
    /// 10 000 for the sub-minute study of Fig. 5).
    pub interval_ms: u64,
    /// Cold-start latency override in ms. `None` uses each app's own
    /// `cold_start_ms`; the paper's default analyses fix 808 ms.
    pub cold_start_ms: Option<u32>,
    /// Optional scale-out rate limit.
    pub scale_limit: Option<ScaleLimit>,
    /// Whether the user's `min_scale` floor is honored.
    pub respect_min_scale: bool,
    /// Record every request's platform delay (costs memory).
    pub record_delays: bool,
    /// Telemetry track namespace for this run's trace events. The fleet
    /// runners set it (via [`femux_obs::next_track_epoch`]) so repeated
    /// sweeps over the same apps never reuse a track; `None` falls back
    /// to the policy name.
    pub obs_track_prefix: Option<String>,
    /// Deterministic fault plan. `None` runs fault-free; a plan with
    /// all rates zero is byte-identical to `None` (draws never fire).
    pub faults: Option<femux_fault::FaultConfig>,
    /// Causal span sampling. `None` — or a config with a non-positive
    /// rate — compiles the span layer out of the run entirely: the
    /// engine takes the exact same branches and produces byte-identical
    /// output. The bench layer's `--span-sample` flag injects this via
    /// the fleet runners (see `femux_obs::span::ambient`).
    pub spans: Option<femux_obs::span::SpanConfig>,
    /// Optional cluster model: pods occupy finite per-node core/memory
    /// capacity, admission evicts idle warm pods under memory pressure,
    /// and (with a fault plan installed) whole nodes crash and recover.
    /// `None` keeps the historical free-floating accounting — and a
    /// single unbounded node ([`crate::cluster::ClusterConfig::unbounded`])
    /// is bit-identical to `None` on every pre-cluster observable.
    pub cluster: Option<crate::cluster::ClusterConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            interval_ms: 60_000,
            cold_start_ms: Some(808),
            scale_limit: Some(ScaleLimit::aws()),
            respect_min_scale: true,
            record_delays: false,
            obs_track_prefix: None,
            faults: None,
            spans: None,
            cluster: None,
        }
    }
}

/// Result of simulating one application.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Accumulated costs.
    pub costs: CostRecord,
    /// Per-request platform delays in seconds (empty unless
    /// `record_delays`).
    pub delays_secs: Vec<f64>,
    /// Average concurrency per interval, as observed by the policy.
    /// Intervals whose report was lost to an injected fault hold `NaN`
    /// (the policy saw a missing report; [`CostRecord`]s and RUM are
    /// never computed from this series). A span that is not a whole
    /// number of intervals contributes one final pro-rated sample that
    /// no policy observed.
    pub avg_concurrency: Vec<f64>,
    /// Peak instantaneous concurrency per interval (queued requests
    /// included), aligned with `avg_concurrency`.
    pub peak_concurrency: Vec<f64>,
    /// Invocation arrivals per interval, aligned with
    /// `avg_concurrency`.
    pub arrivals: Vec<f64>,
    /// Pod-count samples at each interval boundary (the partial tail
    /// interval has no boundary decision, so no sample).
    pub pod_counts: Vec<usize>,
    /// Pod count at t = 0 (the min-scale floor). [`Self::scale_events`]
    /// diffs the timeline against this baseline, so a min-scale app
    /// does not report a phantom 0 → min_scale scale-up.
    pub initial_pods: usize,
    /// Faults injected into this app's run (all zero when fault-free).
    pub faults: FaultStats,
    /// Lifecycle spans of the sampled invocations, in arrival order
    /// (empty unless [`SimConfig::spans`] carries a positive rate).
    /// Exact-accounting contract: each span's
    /// [`InvocationSpan::delay_secs`] equals the `delays_secs` entry at
    /// the span's invocation index bitwise.
    pub spans: Vec<InvocationSpan>,
    /// Cluster observables (`None` unless [`SimConfig::cluster`] is
    /// set): per-node occupancy integrals and the placement ledger,
    /// whose conservation (`placed == evictions + scaled_down +
    /// displaced + resident_end`) the oracle invariants check.
    pub cluster: Option<ClusterOutcome>,
}

/// A scale-up or scale-down event reconstructed from the pod-count
/// timeline — the "scale up/down events" field Table 1 credits to the
/// IBM dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Time of the decision (an interval boundary), ms.
    pub at_ms: u64,
    /// Pod count before.
    pub from: usize,
    /// Pod count after.
    pub to: usize,
}

impl ScaleEvent {
    /// True for scale-up events.
    pub fn is_up(&self) -> bool {
        self.to > self.from
    }
}

impl SimResult {
    /// Extracts the scale events from the pod-count samples, given the
    /// interval the simulation ran at.
    pub fn scale_events(&self, interval_ms: u64) -> Vec<ScaleEvent> {
        let mut events = Vec::new();
        let mut prev = self.initial_pods;
        for (i, &count) in self.pod_counts.iter().enumerate() {
            if count != prev {
                events.push(ScaleEvent {
                    at_ms: (i as u64 + 1) * interval_ms,
                    from: prev,
                    to: count,
                });
            }
            prev = count;
        }
        events
    }
}

/// Event-processing statistics for one simulated application — the
/// witness for the engine's complexity guarantee: [`EngineStats::events`]
/// grows with invocations and pod activity, never with the simulated
/// span. A 62-day idle app costs a handful of idle transitions, not
/// ~89,000 per-tick decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Invocations replayed.
    pub arrivals: u64,
    /// Interval boundaries processed one-by-one (work in flight, a
    /// fault plan installed, or a rate-limited idle scale-up).
    pub ticks: u64,
    /// Idle-stretch policy transitions (one per
    /// [`crate::policy::ScalingPolicy::tick_idle`] call).
    pub idle_transitions: u64,
    /// Interval boundaries absorbed in O(1) by the idle fast-forward.
    pub batched_ticks: u64,
}

impl EngineStats {
    /// Units of per-event work the engine actually performed. Batched
    /// ticks are excluded: an entire batch costs O(1).
    pub fn events(&self) -> u64 {
        self.arrivals + self.ticks + self.idle_transitions
    }
}

#[derive(Debug, Clone, Copy)]
struct Pod {
    /// Stable identity (monotonic, never reused) keying the incremental
    /// indexes into the pod vector.
    uid: u64,
    warm_at: u64,
    keep_until: u64,
    /// Requests pinned to this pod while it warms. Only meaningful
    /// while `warm_at` is in the future: once warm, the pod's load is
    /// tracked by the aggregate in-flight pool like every other pod's.
    queued: u64,
    /// Whether arrivals may queue on this pod while it warms. True for
    /// reactively spawned cold-start pods, false for proactive spawns
    /// (not routable until ready) and min-scale pods.
    joinable: bool,
    /// Whether a pod-warm event for the *current* `warm_at` is
    /// outstanding in the event queue. Events are deleted lazily: a
    /// popped event only settles the pod if this flag is still set and
    /// the times match (crashes reschedule the warm-up; evictions
    /// remove the pod entirely).
    warm_pending: bool,
    /// Which decision brought this pod into existence (min-scale floor,
    /// reactive admission, or proactive policy target) — the cause
    /// reference the span layer attributes waits to. Survives crashes:
    /// a restarted pod keeps its provenance.
    origin: PodOrigin,
}

/// Outcome of cluster admission for one reactive spawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReactiveSlot {
    /// Room found on `node`, after evicting `victim` if `Some`.
    Placed { node: usize, victim: Option<u64> },
    /// No room and no evictable warm pod: the request runs
    /// overcommitted with no pod created.
    Saturated,
}

/// Internal integrator state.
struct Engine<'a> {
    cfg: &'a SimConfig,
    /// Telemetry track for this app's trace events (`None` unless
    /// `femux_obs` event recording is on). One app is one sequential
    /// unit of work, so the track honors the obs ordering contract.
    track: Option<String>,
    concurrency: u64,
    cold_ms: u32,
    min_scale: usize,
    pods: Vec<Pod>,
    inflight: BinaryHeap<Reverse<u64>>,
    last_t: u64,
    alive_pod_ms: f64,
    interval_conc_ms: f64,
    interval_peak: f64,
    interval_arrivals: f64,
    avg_concurrency: Vec<f64>,
    peak_concurrency: Vec<f64>,
    arrivals: Vec<f64>,
    pod_counts: Vec<usize>,
    costs: CostRecord,
    delays: Vec<f64>,
    spawn_minute: u64,
    spawns_this_minute: usize,
    /// This app's fault stream (`None` when running fault-free).
    faults: Option<AppFaults>,
    /// Delayed actuations: `(apply_at_ms, target)` pairs waiting for
    /// their tick.
    pending_actuation: Vec<(u64, usize)>,
    /// Monotonic pod-identity source.
    next_uid: u64,
    /// Pods whose warm-up has completed — the incrementally maintained
    /// replacement for the per-arrival `warm_at <= t` scan.
    warm_pods: usize,
    /// Future pod-warm events `(warm_at, uid)`, settled lazily by
    /// [`Engine::settle_warm`]. Stale entries (crashed or evicted pods)
    /// are skipped on pop.
    warm_events: BinaryHeap<Reverse<(u64, u64)>>,
    /// Warming joinable pods with spare per-pod concurrency, ordered by
    /// `(warm_at, uid)`: `first()` is the soonest-warm join candidate.
    /// The uid tie-break equals the old pod-vector-order tie-break
    /// because joinable pods enter the vector in uid order and, having
    /// pinned requests, are protected — so the eviction sort (stable,
    /// keyed on `warm_at`) never reorders equal-`warm_at` joinables.
    joinable: BTreeSet<(u64, u64)>,
    /// Requests pinned to still-warming pods — the incrementally
    /// maintained replacement for the `waiting_on_warming` scan.
    waiting: u64,
    /// Pod uid → current index in `pods` (rebuilt after eviction
    /// sorts).
    index_of: BTreeMap<u64, usize>,
    stats: EngineStats,
    /// Numeric app id, the sampler's first key component.
    app_id: u64,
    /// Deterministic invocation sampler (`None` = span layer off; see
    /// [`SimConfig::spans`]).
    sampler: Option<SpanSampler>,
    /// Lifecycle spans of the sampled invocations, in arrival order.
    spans: Vec<InvocationSpan>,
    /// Per-app cluster state (`None` = free-floating pods, the
    /// historical accounting).
    cluster: Option<Cluster>,
    /// Per-node crash streams (`None` unless both a fault plan and a
    /// cluster are installed — node faults need nodes to crash).
    node_faults: Option<NodeFaults>,
    /// Pods displaced by node crashes still waiting to be respawned on
    /// a surviving node.
    displaced_pending: u64,
    /// Consecutive respawn rounds that left displaced pods queued; the
    /// retry penalty is `2^strikes − 1` ticks (capped).
    restart_strikes: u32,
    /// Earliest tick at which the next respawn round may run.
    restart_due: u64,
}

/// Removes the entries of `pending` that are due at `t`, preserving
/// insertion order in both the returned batch and the remainder. The
/// old implementation `Vec::remove(i)`-ed inside a scan loop — O(n²)
/// and easy to get out of order when re-entered.
fn drain_due(
    pending: &mut Vec<(u64, usize)>,
    t: u64,
) -> Vec<(u64, usize)> {
    let mut due = Vec::new();
    pending.retain(|&entry| {
        if entry.0 <= t {
            due.push(entry);
            false
        } else {
            true
        }
    });
    due
}

impl Engine<'_> {
    /// Advances the clock to `t`, integrating concurrency and pod-alive
    /// time across the in-between completions.
    fn advance(&mut self, t: u64) {
        debug_assert!(t >= self.last_t, "time went backwards");
        let mut now = self.last_t;
        while let Some(&Reverse(end)) = self.inflight.peek() {
            if end > t {
                break;
            }
            let dt = (end - now) as f64;
            self.interval_conc_ms += self.inflight.len() as f64 * dt;
            self.alive_pod_ms += self.pods.len() as f64 * dt;
            now = end;
            self.inflight.pop();
        }
        let dt = (t - now) as f64;
        self.interval_conc_ms += self.inflight.len() as f64 * dt;
        self.alive_pod_ms += self.pods.len() as f64 * dt;
        self.last_t = t;
        // Per-node residency is constant across the advance (completions
        // never move pods), so one segment step integrates it exactly;
        // sum(node_pod_ms) tracks alive_pod_ms by construction.
        if let Some(cl) = self.cluster.as_mut() {
            cl.advance(t);
        }
    }

    /// Settles every pod-warm event at or before `t`: the pod's warm-up
    /// completed, so it joins the warm count, releases its pinned
    /// requests from the waiting total, and leaves the join index.
    /// Amortized O(log pods) per pod spawn; stale events (the pod
    /// crashed and rescheduled its warm-up, or was evicted) are
    /// recognized by the `(warm_at, warm_pending)` check and skipped.
    fn settle_warm(&mut self, t: u64) {
        while let Some(&Reverse((w, uid))) = self.warm_events.peek() {
            if w > t {
                break;
            }
            self.warm_events.pop();
            let Some(&idx) = self.index_of.get(&uid) else {
                continue;
            };
            let pod = &mut self.pods[idx];
            if pod.warm_at != w || !pod.warm_pending {
                continue;
            }
            pod.warm_pending = false;
            let queued = pod.queued;
            self.warm_pods += 1;
            self.waiting -= queued;
            self.joinable.remove(&(w, uid));
        }
    }

    fn on_arrival(&mut self, inv: &Invocation, index: u64, interval_end: u64) {
        let t = inv.start_ms;
        self.advance(t);
        self.settle_warm(t);
        self.stats.arrivals += 1;
        self.interval_arrivals += 1.0;
        let warm = self.warm_pods as u64 * self.concurrency;
        let executing = self.inflight.len() as u64 - self.waiting;
        let dur = inv.duration_ms as u64;
        // `Some` iff this invocation is in the span sample. The cause is
        // computed inside the admission branch that fired, so the hot
        // path (sampler off, or invocation unsampled) stays untouched.
        let sampled = self
            .sampler
            .as_ref()
            .is_some_and(|s| s.sample(self.app_id, index));
        let mut cause: Option<WaitCause> = None;
        let delay_ms = if executing < warm {
            if sampled {
                cause = Some(self.warm_origin_mix(t));
            }
            0u64
        } else if let Some(&(warm_at, uid)) = self.joinable.first() {
            // Queue on an already-warming cold-start pod: the request
            // pays the pod's remaining warm-up as its cold-start wait
            // instead of spawning a pod of its own (a burst of k
            // requests with per-pod concurrency ≥ k shares one pod).
            let slot = self.index_of[&uid];
            let pod = &mut self.pods[slot];
            let wait = warm_at - t;
            let end = warm_at + dur;
            pod.queued += 1;
            pod.keep_until = pod.keep_until.max(interval_end).max(end);
            let origin = pod.origin;
            if pod.queued >= self.concurrency {
                self.joinable.remove(&(warm_at, uid));
            }
            self.waiting += 1;
            if sampled {
                cause = Some(WaitCause::JoinedWarmingPod {
                    pod_uid: uid,
                    origin,
                });
                if let Some(track) = &self.track {
                    // Flow step: bind this request to the spawn event of
                    // the pod whose warm-up it is waiting out.
                    femux_obs::flow(
                        track,
                        "span",
                        "join",
                        t * 1_000,
                        FlowPhase::Step,
                        femux_obs::span::flow_id(track, uid),
                    );
                }
            }
            self.costs.cold_starts += 1;
            self.costs.cold_start_seconds += wait as f64 / 1_000.0;
            femux_obs::counter_add("sim.cold_starts", 1);
            femux_obs::observe("sim.cold_start_wait_ms", wait);
            if let Some(track) = &self.track {
                femux_obs::span(
                    track,
                    "sim",
                    "cold-start",
                    t * 1_000,
                    wait * 1_000,
                    &[("wait_ms", wait)],
                );
            }
            wait
        } else {
            // Cold start: the cluster (when modeled) must find room
            // before any pod exists — evicting the idle-longest warm
            // pod under memory pressure, or, when saturated, admitting
            // the request overcommitted with no pod at all. Placement
            // resolves first so tickwise and the oracle mirror it
            // branch-for-branch.
            let mut evicted: Option<(u64, usize)> = None;
            let mut saturated = false;
            if self.cluster.is_some() {
                match self.place_reactive(t, self.next_uid) {
                    ReactiveSlot::Placed { node, victim } => {
                        if let Some(v) = victim {
                            evicted = Some((v, node));
                        }
                    }
                    ReactiveSlot::Saturated => saturated = true,
                }
            }
            if saturated {
                // Saturated overcommit: the request still runs and pays
                // a full — never straggled — cold start, but no pod is
                // created (the straggler draw contract is one draw per
                // pod *spawn*, and nothing spawned).
                let cold = self.cold_ms as u64;
                if sampled {
                    cause = Some(WaitCause::Saturated);
                }
                self.costs.cold_starts += 1;
                self.costs.cold_start_seconds += cold as f64 / 1_000.0;
                femux_obs::counter_add("sim.cold_starts", 1);
                femux_obs::observe("sim.cold_start_wait_ms", cold);
                if let Some(track) = &self.track {
                    femux_obs::span(
                        track,
                        "sim",
                        "cold-start",
                        t * 1_000,
                        cold * 1_000,
                        &[("wait_ms", cold)],
                    );
                }
                self.inflight.push(Reverse(t + cold + dur));
                self.interval_peak =
                    self.interval_peak.max(self.inflight.len() as f64);
                self.costs.invocations += 1;
                femux_obs::counter_add("sim.invocations", 1);
                self.costs.exec_seconds += dur as f64 / 1_000.0;
                self.costs.service_seconds +=
                    (cold + dur) as f64 / 1_000.0;
                if self.cfg.record_delays {
                    self.delays.push(cold as f64 / 1_000.0);
                }
                if let Some(cause) = cause {
                    self.record_span(t, index, cold, dur, cause);
                }
                return;
            }
            // Spawn a pod now; it is protected until the end of the
            // current interval and until this request completes.
            let mut cold = self.cold_ms as u64;
            // One straggler draw per cold-start pod spawn (fault
            // determinism contract): the request pays the inflated
            // latency and the cold-start seconds account for it.
            if let Some(faults) = self.faults.as_mut() {
                if let Some(factor) = faults.straggle() {
                    let inflated =
                        (cold as f64 * factor).round() as u64;
                    femux_obs::observe(
                        "fault.straggler_extra_ms",
                        inflated.saturating_sub(cold),
                    );
                    cold = inflated;
                }
            }
            let end = t + cold + dur;
            let uid = self.next_uid;
            self.next_uid += 1;
            let warm_at = t + cold;
            self.pods.push(Pod {
                uid,
                warm_at,
                keep_until: interval_end.max(end),
                queued: 1,
                joinable: true,
                warm_pending: cold > 0,
                origin: PodOrigin::Reactive { at_ms: t },
            });
            self.index_of.insert(uid, self.pods.len() - 1);
            if self.sampler.is_some() {
                if let Some(track) = &self.track {
                    // Flow start: every reactive spawn anchors a causal
                    // arrow; later sampled joiners bind to it with flow
                    // steps. Emitted for unsampled spawns too (a sampled
                    // join may reference a pod an unsampled arrival
                    // spawned), but only while the span layer is on.
                    femux_obs::flow(
                        track,
                        "span",
                        "pod-spawn",
                        t * 1_000,
                        FlowPhase::Start,
                        femux_obs::span::flow_id(track, uid),
                    );
                }
            }
            if sampled {
                cause = Some(match evicted {
                    Some((victim, node)) => WaitCause::Evicted {
                        node: node as u64,
                        victim_pod: victim,
                    },
                    None => WaitCause::FreshSpawn { pod_uid: uid },
                });
                if let Some(track) = &self.track {
                    femux_obs::flow(
                        track,
                        "span",
                        "join",
                        t * 1_000,
                        FlowPhase::Step,
                        femux_obs::span::flow_id(track, uid),
                    );
                }
            }
            if cold > 0 {
                self.warm_events.push(Reverse((warm_at, uid)));
                self.waiting += 1;
                if 1 < self.concurrency {
                    self.joinable.insert((warm_at, uid));
                }
            } else {
                // Instantly warm: never enters the event queue (and a
                // pod that is already warm is not joinable).
                self.warm_pods += 1;
            }
            self.costs.cold_starts += 1;
            self.costs.cold_start_seconds += cold as f64 / 1_000.0;
            femux_obs::counter_add("sim.cold_starts", 1);
            femux_obs::observe("sim.cold_start_wait_ms", cold);
            if let Some(track) = &self.track {
                // The span covers the queueing delay the request pays
                // while its pod initializes (virtual time, µs).
                femux_obs::span(
                    track,
                    "sim",
                    "cold-start",
                    t * 1_000,
                    cold * 1_000,
                    &[("wait_ms", cold)],
                );
            }
            cold
        };
        self.inflight.push(Reverse(t + delay_ms + dur));
        self.interval_peak =
            self.interval_peak.max(self.inflight.len() as f64);
        self.costs.invocations += 1;
        femux_obs::counter_add("sim.invocations", 1);
        self.costs.exec_seconds += dur as f64 / 1_000.0;
        self.costs.service_seconds += (delay_ms + dur) as f64 / 1_000.0;
        if self.cfg.record_delays {
            self.delays.push(delay_ms as f64 / 1_000.0);
        }
        if let Some(cause) = cause {
            self.record_span(t, index, delay_ms, dur, cause);
        }
    }

    /// Provenance breakdown of the currently warm pods, as a
    /// [`WaitCause::Warm`]. Only computed for sampled warm admissions —
    /// an O(pods) scan, deliberately kept off the unsampled hot path.
    fn warm_origin_mix(&self, t: u64) -> WaitCause {
        let (mut min_scale, mut reactive, mut proactive, mut restarted) =
            (0, 0, 0, 0);
        for p in self.pods.iter().filter(|p| p.warm_at <= t) {
            match p.origin {
                PodOrigin::MinScale => min_scale += 1,
                PodOrigin::Reactive { .. } => reactive += 1,
                PodOrigin::Proactive { .. } => proactive += 1,
                PodOrigin::Restarted { .. } => restarted += 1,
            }
        }
        WaitCause::Warm { min_scale, reactive, proactive, restarted }
    }

    /// Finds cluster room for a reactive spawn with pod id `uid` at
    /// time `t`: direct placement, else memory-pressure eviction of the
    /// idle-longest unprotected warm pod (minimum `(warm_at, uid)`, the
    /// `joinable` ordering extended to warm pods), else saturation.
    /// Eviction deliberately ignores the min-scale floor: memory
    /// pressure is physical, and the policy will re-request the floor
    /// at the next tick.
    fn place_reactive(&mut self, t: u64, uid: u64) -> ReactiveSlot {
        if let Some(node) =
            self.cluster.as_mut().expect("cluster layer on").try_place(uid)
        {
            return ReactiveSlot::Placed { node, victim: None };
        }
        // Victim scan: warm (`warm_at <= t`) and unprotected
        // (`keep_until <= t`, so every admitted request has finished).
        let mut victim: Option<(u64, u64, usize)> = None;
        for (i, p) in self.pods.iter().enumerate() {
            if p.warm_at <= t && p.keep_until <= t {
                let key = (p.warm_at, p.uid);
                if victim.is_none_or(|(w, u, _)| key < (w, u)) {
                    victim = Some((p.warm_at, p.uid, i));
                }
            }
        }
        let Some((_, victim_uid, victim_idx)) = victim else {
            let cl = self.cluster.as_mut().expect("cluster layer on");
            cl.saturated_overcommits += 1;
            femux_obs::counter_add("evict.saturated_overcommits", 1);
            return ReactiveSlot::Saturated;
        };
        let cl = self.cluster.as_mut().expect("cluster layer on");
        let node = cl.release(victim_uid, ReleaseReason::Evicted);
        femux_obs::counter_add("evict.evictions", 1);
        // The victim is warm (settled) so it sits in the warm count and
        // nowhere else; its orphaned warm events (if any) are lazily
        // skipped once the uid leaves `index_of`.
        self.warm_pods -= 1;
        self.pods.remove(victim_idx);
        self.index_of.clear();
        for (i, p) in self.pods.iter().enumerate() {
            self.index_of.insert(p.uid, i);
        }
        if let Some(track) = &self.track {
            femux_obs::instant(
                track,
                "cluster",
                "pod-evict",
                t * 1_000,
                &[("node", node as u64), ("victim", victim_uid)],
            );
        }
        // Pods are uniform-sized, so freeing the victim's slot is
        // exactly enough room — and the only room, so placement must
        // land on the victim's node.
        let placed = self
            .cluster
            .as_mut()
            .expect("cluster layer on")
            .try_place(uid);
        debug_assert_eq!(placed, Some(node), "eviction frees the victim's node");
        ReactiveSlot::Placed { node, victim: Some(victim_uid) }
    }

    /// Tears the displaced pods out of the engine's pod bookkeeping
    /// after a node crash (the cluster already released them). Admitted
    /// in-flight work keeps its original completion time — the same
    /// simplification the pod-level crash layer makes — but queued
    /// joiners on still-warming pods are dropped from the waiting count
    /// (they were already billed their delay at admission).
    fn remove_displaced(&mut self, uids: &[u64], t: u64) {
        for &uid in uids {
            let idx = self.index_of[&uid];
            let p = self.pods[idx];
            if p.warm_at > t {
                self.waiting -= p.queued;
                self.joinable.remove(&(p.warm_at, p.uid));
            } else {
                self.warm_pods -= 1;
            }
        }
        let dead: BTreeSet<u64> = uids.iter().copied().collect();
        self.pods.retain(|p| !dead.contains(&p.uid));
        self.index_of.clear();
        for (i, p) in self.pods.iter().enumerate() {
            self.index_of.insert(p.uid, i);
        }
        self.displaced_pending += uids.len() as u64;
    }

    /// Records the lifecycle of one sampled invocation: the span table
    /// entry (always), the per-segment breakdown histograms (when
    /// telemetry is on), and the Chrome-trace lifecycle event (when
    /// event recording is on). Exactly one wait segment is nonzero —
    /// queue wait for joins, cold wait for fresh spawns — and their sum
    /// is the `delay_ms` the engine just billed, so the exact-accounting
    /// identity holds by construction.
    fn record_span(
        &mut self,
        t: u64,
        index: u64,
        delay_ms: u64,
        dur: u64,
        cause: WaitCause,
    ) {
        let (queue_wait_ms, cold_wait_ms) = match cause {
            WaitCause::Warm { .. } => (0, 0),
            WaitCause::JoinedWarmingPod { .. } => (delay_ms, 0),
            WaitCause::FreshSpawn { .. }
            | WaitCause::Evicted { .. }
            | WaitCause::Saturated => (0, delay_ms),
        };
        self.spans.push(InvocationSpan {
            app: self.app_id,
            index,
            arrival_ms: t,
            queue_wait_ms,
            cold_wait_ms,
            exec_ms: dur,
            cause,
        });
        femux_obs::observe("span.queue_wait", queue_wait_ms);
        femux_obs::observe("span.cold_wait", cold_wait_ms);
        femux_obs::observe("span.exec", dur);
        if let Some(track) = &self.track {
            let mut span = SpanGuard::open(
                track,
                "span",
                &format!("inv-{index}"),
                t * 1_000,
            );
            span.end_at((t + delay_ms + dur) * 1_000);
            span.arg("index", index);
            span.arg("queue_wait_ms", queue_wait_ms);
            span.arg("cold_wait_ms", cold_wait_ms);
            span.arg("exec_ms", dur);
            span.arg("cause", cause.code());
            match cause {
                WaitCause::Warm {
                    min_scale,
                    reactive,
                    proactive,
                    restarted,
                } => {
                    span.arg("warm_min_scale", min_scale);
                    span.arg("warm_reactive", reactive);
                    span.arg("warm_proactive", proactive);
                    span.arg("warm_restarted", restarted);
                }
                WaitCause::JoinedWarmingPod { pod_uid, origin } => {
                    span.arg("pod", pod_uid);
                    span.arg("pod_origin", origin.code());
                    if let PodOrigin::Reactive { at_ms }
                    | PodOrigin::Proactive { at_ms }
                    | PodOrigin::Restarted { at_ms } = origin
                    {
                        span.arg("pod_spawned_ms", at_ms);
                    }
                }
                WaitCause::FreshSpawn { pod_uid } => {
                    span.arg("pod", pod_uid);
                }
                WaitCause::Evicted { node, victim_pod } => {
                    span.arg("node", node);
                    span.arg("victim_pod", victim_pod);
                }
                WaitCause::Saturated => {}
            }
        }
    }

    fn proactive_spawn_allowed(&mut self, t: u64) -> bool {
        let Some(limit) = self.cfg.scale_limit else {
            return true;
        };
        if self.pods.len() < limit.threshold {
            return true;
        }
        let minute = t / 60_000;
        if minute != self.spawn_minute {
            self.spawn_minute = minute;
            self.spawns_this_minute = 0;
        }
        if self.spawns_this_minute < limit.per_minute {
            self.spawns_this_minute += 1;
            true
        } else {
            false
        }
    }

    fn on_tick(&mut self, t: u64, policy: &mut dyn ScalingPolicy, config: &femux_trace::types::AppConfig) {
        self.advance(t);
        self.settle_warm(t);
        self.stats.ticks += 1;
        // Fault draw order is part of the determinism contract: per-pod
        // crash draws in pod-vector order, then the report-loss draw,
        // then the per-node crash draws in node order, then (after the
        // policy decision) the actuation-fate draw.
        if let Some(mut faults) = self.faults.take() {
            let cold = self.cold_ms as u64;
            let mut crashed = 0u64;
            for i in 0..self.pods.len() {
                if !faults.crash_pod() {
                    continue;
                }
                // The pod restarts in place: it stays allocated
                // (the platform reschedules it immediately, so
                // GB-seconds keep accruing) but must redo its cold
                // start, dropping warm capacity until then. The
                // restart itself is not a request-visible cold
                // start — requests that find no warm capacity pay
                // (and account) their own. Restarting pods accept
                // no joiners and shed any stale warming queue
                // (requests already admitted keep their original
                // completion times — the crash never re-delays
                // admitted work, a deliberate simplification).
                let old = self.pods[i];
                if old.warm_at > t {
                    self.waiting -= old.queued;
                    self.joinable.remove(&(old.warm_at, old.uid));
                } else {
                    self.warm_pods -= 1;
                }
                let pod = &mut self.pods[i];
                pod.warm_at = t + cold;
                pod.keep_until = pod.keep_until.max(t);
                pod.queued = 0;
                pod.joinable = false;
                pod.warm_pending = cold > 0;
                if cold > 0 {
                    self.warm_events.push(Reverse((t + cold, old.uid)));
                } else {
                    self.warm_pods += 1;
                }
                crashed += 1;
            }
            if crashed > 0 {
                if let Some(track) = &self.track {
                    femux_obs::instant(
                        track,
                        "fault",
                        "pod-crash",
                        t * 1_000,
                        &[("pods", crashed)],
                    );
                }
            }
            self.faults = Some(faults);
        }
        // Close the completed interval's observations. A lost report
        // surfaces as a NaN average-concurrency sample: the policy must
        // cope with a missing queue-proxy report.
        let mut avg = self.interval_conc_ms / self.cfg.interval_ms as f64;
        if let Some(faults) = self.faults.as_mut() {
            if faults.lose_report() {
                avg = f64::NAN;
            }
        }
        self.avg_concurrency.push(avg);
        self.peak_concurrency.push(self.interval_peak);
        self.arrivals.push(self.interval_arrivals);
        self.interval_conc_ms = 0.0;
        self.interval_peak = self.inflight.len() as f64;
        self.interval_arrivals = 0.0;

        // Node fault domain (cluster layer + fault plan only): recover
        // matured nodes, then one crash draw per *up* node in node
        // order — after the pod-level per-tick draws, before the
        // actuation-fate draw (the `fault-draw-order` contract). A
        // fired draw kills every resident pod at once; displaced pods
        // respawn on surviving nodes under capped exponential backoff,
        // degrading to queueing while the cluster stays saturated.
        if self.node_faults.is_some() {
            let mut nf = self.node_faults.take().expect("checked");
            let mut cl =
                self.cluster.take().expect("node faults imply a cluster");
            cl.recover_due(t);
            let recovery_ms =
                nf.recovery_ticks() * self.cfg.interval_ms;
            let mut displaced: Vec<u64> = Vec::new();
            for node in 0..cl.nodes().len() {
                if !cl.nodes()[node].up {
                    continue;
                }
                if !nf.crash_node(node) {
                    continue;
                }
                let victims = cl.crash_node(node, t + recovery_ms);
                if let Some(track) = &self.track {
                    femux_obs::instant(
                        track,
                        "fault",
                        "node-crash",
                        t * 1_000,
                        &[
                            ("node", node as u64),
                            ("pods", victims.len() as u64),
                        ],
                    );
                    // Causal anchor: later pod-restart flow steps bind
                    // to the crash that displaced them.
                    femux_obs::flow(
                        track,
                        "span",
                        "node-crash",
                        t * 1_000,
                        FlowPhase::Start,
                        femux_obs::span::flow_id(
                            track,
                            NODE_CRASH_FLOW_BASE ^ cl.node_crashes,
                        ),
                    );
                }
                displaced.extend(victims);
            }
            if !displaced.is_empty() {
                let fresh = displaced.len() as u64;
                self.remove_displaced(&displaced, t);
                if self.displaced_pending == fresh {
                    // First displacement of an episode: the first
                    // respawn attempt runs at the next tick (zero
                    // strikes, zero penalty).
                    self.restart_due = t + self.cfg.interval_ms;
                }
            }
            // Respawn round: place queued displaced pods (cold,
            // non-joinable, new identity) on surviving nodes.
            if self.displaced_pending > 0 && t >= self.restart_due {
                let cold = self.cold_ms as u64;
                let mut restarted = 0u64;
                while self.displaced_pending > 0 {
                    let uid = self.next_uid;
                    if cl.try_place(uid).is_none() {
                        break;
                    }
                    cl.node_restarts += 1;
                    self.next_uid += 1;
                    self.pods.push(Pod {
                        uid,
                        warm_at: t + cold,
                        keep_until: t,
                        queued: 0,
                        joinable: false,
                        warm_pending: cold > 0,
                        origin: PodOrigin::Restarted { at_ms: t },
                    });
                    self.index_of.insert(uid, self.pods.len() - 1);
                    if cold > 0 {
                        self.warm_events.push(Reverse((t + cold, uid)));
                    } else {
                        self.warm_pods += 1;
                    }
                    self.displaced_pending -= 1;
                    restarted += 1;
                    if let Some(track) = &self.track {
                        femux_obs::flow(
                            track,
                            "span",
                            "pod-restart",
                            t * 1_000,
                            FlowPhase::Step,
                            femux_obs::span::flow_id(
                                track,
                                NODE_CRASH_FLOW_BASE ^ cl.node_crashes,
                            ),
                        );
                    }
                }
                if restarted > 0 {
                    femux_obs::counter_add(
                        "fault.node_restarts",
                        restarted,
                    );
                    if let Some(track) = &self.track {
                        femux_obs::instant(
                            track,
                            "cluster",
                            "pod-restart",
                            t * 1_000,
                            &[
                                ("pods", restarted),
                                ("queued", self.displaced_pending),
                            ],
                        );
                    }
                }
                if self.displaced_pending > 0 {
                    let penalty = (1u64
                        << self
                            .restart_strikes
                            .min(MAX_RESTART_STRIKE_EXPONENT))
                        - 1;
                    self.restart_strikes =
                        self.restart_strikes.saturating_add(1);
                    self.restart_due =
                        t + (penalty + 1) * self.cfg.interval_ms;
                } else {
                    self.restart_strikes = 0;
                }
            }
            self.cluster = Some(cl);
            self.node_faults = Some(nf);
        }

        // Apply actuations whose injected delay has matured — in
        // insertion order, before the policy observes the pod count.
        if !self.pending_actuation.is_empty() {
            for (_, target) in drain_due(&mut self.pending_actuation, t)
            {
                self.apply_target(t, target);
            }
        }

        let ctx = PolicyCtx {
            now_ms: t,
            interval_ms: self.cfg.interval_ms,
            avg_concurrency: &self.avg_concurrency,
            peak_concurrency: &self.peak_concurrency,
            arrivals: &self.arrivals,
            config,
            current_pods: self.pods.len(),
            inflight: self.inflight.len(),
        };
        let mut target = policy.target_pods(&ctx);
        if self.cfg.respect_min_scale {
            target = target.max(self.min_scale);
        }
        femux_obs::counter_add("sim.ticks", 1);
        if self.sampler.is_some() {
            if let Some(track) = &self.track {
                // Decision-point marker for the span layer: `lens` uses
                // these to name the policy decision nearest a wait.
                femux_obs::instant(
                    track,
                    "policy",
                    "policy-decision",
                    t * 1_000,
                    &[
                        ("target", target as u64),
                        ("pods", self.pods.len() as u64),
                    ],
                );
            }
        }
        let fate = match self.faults.as_mut() {
            Some(faults) => faults.actuation_fate(),
            None => ActuationFate::Apply,
        };
        match fate {
            ActuationFate::Apply => self.apply_target(t, target),
            ActuationFate::Delay(ticks) => self
                .pending_actuation
                .push((t + ticks.max(1) * self.cfg.interval_ms, target)),
            ActuationFate::Drop => {}
        }
        self.pod_counts.push(self.pods.len());
    }

    /// Applies a scaling decision: scale up under the rate limit, or
    /// scale down respecting in-flight work, protected pods, and the
    /// minimum-scale floor.
    fn apply_target(&mut self, t: u64, target: usize) {
        let current = self.pods.len();
        if target > current {
            let cold = self.cold_ms as u64;
            for _ in current..target {
                // Proactive spawns never evict: a placement denial is
                // counted and the spawn is simply skipped, before the
                // rate-limit check so a denial never consumes a
                // rate-limit slot.
                if self.cluster.as_ref().is_some_and(|cl| !cl.can_place()) {
                    self.cluster
                        .as_mut()
                        .expect("checked")
                        .placement_denials += 1;
                    femux_obs::counter_add("evict.placement_denials", 1);
                    break;
                }
                if !self.proactive_spawn_allowed(t) {
                    femux_obs::counter_add("sim.scale_limit_denials", 1);
                    break;
                }
                let uid = self.next_uid;
                self.next_uid += 1;
                if let Some(cl) = self.cluster.as_mut() {
                    let placed = cl.try_place(uid);
                    debug_assert!(placed.is_some(), "can_place pre-checked");
                }
                self.pods.push(Pod {
                    uid,
                    warm_at: t + cold,
                    keep_until: t,
                    queued: 0,
                    joinable: false,
                    warm_pending: cold > 0,
                    origin: PodOrigin::Proactive { at_ms: t },
                });
                self.index_of.insert(uid, self.pods.len() - 1);
                if cold > 0 {
                    self.warm_events.push(Reverse((t + cold, uid)));
                } else {
                    self.warm_pods += 1;
                }
            }
            let spawned = self.pods.len() - current;
            if spawned > 0 {
                femux_obs::counter_add("sim.scale_up_events", 1);
                femux_obs::counter_add(
                    "sim.pods_spawned",
                    spawned as u64,
                );
                if let Some(track) = &self.track {
                    femux_obs::instant(
                        track,
                        "sim",
                        "scale-up",
                        t * 1_000,
                        &[
                            ("from", current as u64),
                            ("to", self.pods.len() as u64),
                        ],
                    );
                }
            }
        } else if target < current {
            let needed = (self.inflight.len() as u64)
                .div_ceil(self.concurrency)
                as usize;
            let protected =
                self.pods.iter().filter(|p| p.keep_until > t).count();
            let floor = target
                .max(needed)
                .max(protected)
                .max(if self.cfg.respect_min_scale {
                    self.min_scale
                } else {
                    0
                });
            if floor < current {
                // Keep protected pods, then the longest-warm ones (they
                // are certainly usable immediately).
                self.pods.sort_by_key(|p| {
                    (Reverse(p.keep_until > t), p.warm_at)
                });
                let keep = floor.max(protected);
                for i in keep..self.pods.len() {
                    let p = self.pods[i];
                    if p.warm_at > t {
                        // Still-warming evictees are proactive spawns
                        // that never became routable: nothing pinned
                        // (pods with pinned requests are protected).
                        debug_assert_eq!(p.queued, 0);
                        self.joinable.remove(&(p.warm_at, p.uid));
                    } else {
                        self.warm_pods -= 1;
                    }
                    if let Some(cl) = self.cluster.as_mut() {
                        cl.release(p.uid, ReleaseReason::ScaledDown);
                    }
                }
                self.pods.truncate(keep);
                // The sort shuffled vector positions; rebuild the uid
                // index (evicted uids drop out, orphaning their queued
                // warm events for lazy deletion).
                self.index_of.clear();
                for (i, p) in self.pods.iter().enumerate() {
                    self.index_of.insert(p.uid, i);
                }
            }
            let removed = current - self.pods.len();
            if removed > 0 {
                // A scale-down to a zero target is the moment the
                // policy's keep-alive (or grace period) lapsed.
                let name = if target == 0 && self.pods.is_empty() {
                    femux_obs::counter_add("sim.keep_alive_expiries", 1);
                    "keep-alive-expiry"
                } else {
                    "scale-down"
                };
                femux_obs::counter_add("sim.scale_down_events", 1);
                femux_obs::counter_add(
                    "sim.pods_reclaimed",
                    removed as u64,
                );
                if let Some(track) = &self.track {
                    femux_obs::instant(
                        track,
                        "sim",
                        name,
                        t * 1_000,
                        &[
                            ("from", current as u64),
                            ("to", self.pods.len() as u64),
                        ],
                    );
                }
            }
        }
    }

    /// Processes `n` consecutive quiescent interval boundaries, starting
    /// at `first_tick`, consulting the policy once per constant-target
    /// stretch (via [`ScalingPolicy::tick_idle`]) instead of once per
    /// tick. The caller guarantees quiescence: no fault plan, nothing in
    /// flight, and no arrival strictly before the stretch's last tick.
    ///
    /// Byte-exactness with the per-tick path follows from the
    /// `tick_idle` contract (the policy asserts the per-tick decisions
    /// it skipped) plus three engine facts: every closed interval of the
    /// stretch beyond the first is an exact zero, the pod count between
    /// transitions is constant (so the alive-time integral collapses to
    /// one product of integers, exact in f64), and no pod is protected
    /// while the app is quiescent, so applying a target `T ≤ current`
    /// leaves exactly `max(T, min_scale)` pods. Rate-limited scale-ups
    /// are the one pod-count trajectory the policy cannot predict, so
    /// those re-apply the (constant) target tick-by-tick.
    fn run_idle_ticks(
        &mut self,
        first_tick: u64,
        n: u64,
        policy: &mut dyn ScalingPolicy,
        config: &femux_trace::types::AppConfig,
    ) {
        let interval = self.cfg.interval_ms;
        self.advance(first_tick);
        self.settle_warm(first_tick);
        debug_assert!(self.inflight.is_empty());
        debug_assert!(self.faults.is_none());
        debug_assert!(
            self.pending_actuation.is_empty(),
            "delayed actuations only exist under fault plans"
        );
        debug_assert_eq!(self.waiting, 0);
        // Close the first interval with whatever accrued before
        // quiescence set in; every further interval of the stretch is an
        // exact zero (nothing arrives, nothing completes, nothing is in
        // flight).
        let base = self.avg_concurrency.len();
        self.avg_concurrency
            .push(self.interval_conc_ms / interval as f64);
        self.peak_concurrency.push(self.interval_peak);
        self.arrivals.push(self.interval_arrivals);
        let total = base + n as usize;
        self.avg_concurrency.resize(total, 0.0);
        self.peak_concurrency.resize(total, 0.0);
        self.arrivals.resize(total, 0.0);
        self.interval_conc_ms = 0.0;
        self.interval_peak = 0.0;
        self.interval_arrivals = 0.0;
        let min_pods = if self.cfg.respect_min_scale {
            self.min_scale
        } else {
            0
        };
        let mut i = 0u64;
        while i < n {
            let t = first_tick + i * interval;
            self.advance(t);
            self.settle_warm(t);
            debug_assert!(
                self.pods.iter().all(|p| p.keep_until <= t),
                "no pod is protected while quiescent"
            );
            let run = {
                let idle = IdleTicks {
                    start_ms: first_tick,
                    interval_ms: interval,
                    n,
                    config,
                    min_pods,
                    avg_concurrency: &self.avg_concurrency,
                    peak_concurrency: &self.peak_concurrency,
                    arrivals: &self.arrivals,
                    base,
                };
                policy.tick_idle(&idle, i, self.pods.len(), n - i)
            };
            let ticks = run.ticks.clamp(1, n - i);
            let target = if self.cfg.respect_min_scale {
                run.target.max(self.min_scale)
            } else {
                run.target
            };
            self.stats.idle_transitions += 1;
            femux_obs::counter_add("sim.ticks", ticks);
            if self.sampler.is_some() {
                if let Some(track) = &self.track {
                    // One marker per idle transition (the per-tick path
                    // it replaces would emit one per tick; the trace
                    // records the batched reality, with the run length).
                    femux_obs::instant(
                        track,
                        "policy",
                        "policy-decision",
                        t * 1_000,
                        &[
                            ("target", target as u64),
                            ("pods", self.pods.len() as u64),
                            ("ticks", ticks),
                        ],
                    );
                }
            }
            self.apply_target(t, target);
            self.pod_counts.push(self.pods.len());
            if self.pods.len() < target {
                // The scale-out rate limit bit: re-apply the target
                // (constant across the run, by the tick_idle contract)
                // tick-by-tick without re-consulting the policy.
                for j in 1..ticks {
                    let tj = t + j * interval;
                    self.advance(tj);
                    self.settle_warm(tj);
                    self.apply_target(tj, target);
                    self.pod_counts.push(self.pods.len());
                    self.stats.ticks += 1;
                }
            } else if ticks > 1 {
                // Constant pod count across the run: collapse the
                // remaining intervals into one integration step. The
                // product is integer-valued, so f64 addition is exact
                // and agrees with the per-tick sum.
                self.alive_pod_ms += self.pods.len() as f64
                    * interval as f64
                    * (ticks - 1) as f64;
                self.last_t = t + (ticks - 1) * interval;
                // Keep the per-node occupancy integral in lockstep with
                // the batched alive-time integral.
                let lt = self.last_t;
                if let Some(cl) = self.cluster.as_mut() {
                    cl.advance(lt);
                }
                let len = self.pod_counts.len();
                self.pod_counts
                    .resize(len + (ticks - 1) as usize, self.pods.len());
                self.stats.batched_ticks += ticks - 1;
            }
            i += ticks;
        }
    }
}

/// Simulates one application under a policy.
///
/// `span_ms` bounds the replay; requests completing after the span keep
/// their pods alive until they finish, and that overhang is accounted.
pub fn simulate_app(
    app: &AppRecord,
    policy: &mut dyn ScalingPolicy,
    span_ms: u64,
    cfg: &SimConfig,
) -> SimResult {
    simulate_app_with_stats(app, policy, span_ms, cfg).0
}

/// [`simulate_app`], also returning the [`EngineStats`] witness of how
/// much per-event work the run performed.
pub fn simulate_app_with_stats(
    app: &AppRecord,
    policy: &mut dyn ScalingPolicy,
    span_ms: u64,
    cfg: &SimConfig,
) -> (SimResult, EngineStats) {
    let cold_ms = cfg.cold_start_ms.unwrap_or(app.cold_start_ms);
    let min_scale = if cfg.respect_min_scale {
        app.config.min_scale as usize
    } else {
        0
    };
    let mem_gb = app.mem_used_mb as f64 / 1_024.0;
    let track = if femux_obs::events_enabled() {
        match &cfg.obs_track_prefix {
            Some(p) => Some(format!("sim/{p}/{}", app.id)),
            None => Some(format!("sim/{}/{}", policy.name(), app.id)),
        }
    } else {
        None
    };
    // Cluster layer (optional): one private instance per app run, so
    // per-app simulations stay order-independent. Pods are uniform
    // within an app — every placement request carries the app's own
    // cpu/memory demand.
    let mut cluster = cfg.cluster.as_ref().map(|cc| {
        Cluster::new(
            cc,
            PodRequest {
                cpu_milli: app.config.cpu_milli as u64,
                mem_mb: app.mem_used_mb as u64,
            },
        )
    });
    let node_faults = match (&cfg.faults, &cfg.cluster) {
        (Some(f), Some(cc)) => Some(f.node_faults(cc.nodes.len())),
        _ => None,
    };
    // Place the min-scale floor. Denied placements (cluster smaller
    // than the floor) are counted and the pod simply never exists; uid
    // assignment is unchanged so downstream identity is stable.
    let mut initial_pods: Vec<Pod> = Vec::with_capacity(min_scale);
    for uid in 0..min_scale as u64 {
        if let Some(cl) = cluster.as_mut() {
            if cl.try_place(uid).is_none() {
                cl.placement_denials += 1;
                femux_obs::counter_add("evict.placement_denials", 1);
                continue;
            }
        }
        initial_pods.push(Pod {
            uid,
            warm_at: 0,
            keep_until: 0,
            queued: 0,
            joinable: false,
            warm_pending: false,
            origin: PodOrigin::MinScale,
        });
    }
    let placed_initial = initial_pods.len();
    let initial_index: BTreeMap<u64, usize> = initial_pods
        .iter()
        .enumerate()
        .map(|(i, p)| (p.uid, i))
        .collect();
    let mut eng = Engine {
        cfg,
        track,
        concurrency: app.config.concurrency.max(1) as u64,
        cold_ms,
        min_scale,
        pods: initial_pods,
        inflight: BinaryHeap::new(),
        last_t: 0,
        alive_pod_ms: 0.0,
        interval_conc_ms: 0.0,
        interval_peak: 0.0,
        interval_arrivals: 0.0,
        avg_concurrency: Vec::new(),
        peak_concurrency: Vec::new(),
        arrivals: Vec::new(),
        pod_counts: Vec::new(),
        costs: CostRecord::default(),
        delays: Vec::new(),
        spawn_minute: 0,
        spawns_this_minute: 0,
        faults: cfg.faults.as_ref().map(|f| f.engine_faults(app.id)),
        cluster,
        node_faults,
        displaced_pending: 0,
        restart_strikes: 0,
        restart_due: 0,
        pending_actuation: Vec::new(),
        next_uid: min_scale as u64,
        warm_pods: placed_initial,
        warm_events: BinaryHeap::new(),
        joinable: BTreeSet::new(),
        waiting: 0,
        index_of: initial_index,
        stats: EngineStats::default(),
        app_id: app.id.0 as u64,
        sampler: cfg
            .spans
            .as_ref()
            .and_then(SpanSampler::new),
        spans: Vec::new(),
    };

    // `span_ms` bounds the replay: invocations at or after the span
    // boundary belong to the next window (train/test splits rely on
    // this) and are never served here. Invocations are time-sorted (an
    // `AppRecord` contract), so the replay prefix is a partition point.
    let n_replay = app
        .invocations
        .partition_point(|i| i.start_ms < span_ms);
    let replay = &app.invocations[..n_replay];
    let mut next_tick = cfg.interval_ms;
    let mut idx = 0usize;
    while idx < replay.len() || next_tick <= span_ms {
        let arrival = replay.get(idx).map(|i| i.start_ms);
        match arrival {
            Some(a) if a < next_tick || next_tick > span_ms => {
                let interval_end = next_tick.min(span_ms);
                let inv = replay[idx];
                eng.on_arrival(&inv, idx as u64, interval_end);
                idx += 1;
            }
            _ => {
                if eng.faults.is_none() && eng.inflight.is_empty() {
                    // Idle fast-forward: every tick up to (and
                    // including) the next arrival's interval boundary —
                    // or the span end — observes a quiescent app, so
                    // the whole stretch is handed to the policy at
                    // once. Any fault plan (even all-zero rates) takes
                    // the per-tick path: its draws consume the RNG
                    // stream unconditionally.
                    let last = arrival
                        .map(|a| a.min(span_ms))
                        .unwrap_or(span_ms);
                    let n = (last - next_tick) / cfg.interval_ms + 1;
                    eng.run_idle_ticks(
                        next_tick,
                        n,
                        policy,
                        &app.config,
                    );
                    next_tick += n * cfg.interval_ms;
                } else {
                    eng.on_tick(next_tick, policy, &app.config);
                    next_tick += cfg.interval_ms;
                }
            }
        }
    }
    // Close the partial tail interval of a span that is not a whole
    // number of intervals: concurrency, peak, and arrivals accrued
    // after the last tick are reported with a pro-rated divisor. No
    // policy observes this sample and no fault draw applies (report
    // loss models a lost *policy* report).
    let last_tick = next_tick - cfg.interval_ms;
    if last_tick < span_ms {
        eng.advance(span_ms);
        let tail_ms = (span_ms - last_tick) as f64;
        let avg = eng.interval_conc_ms / tail_ms;
        eng.avg_concurrency.push(avg);
        eng.peak_concurrency.push(eng.interval_peak);
        eng.arrivals.push(eng.interval_arrivals);
        eng.interval_conc_ms = 0.0;
        eng.interval_peak = eng.inflight.len() as f64;
        eng.interval_arrivals = 0.0;
    }
    // Drain remaining in-flight work.
    let last_end = eng
        .inflight
        .iter()
        .map(|Reverse(e)| *e)
        .max()
        .unwrap_or(eng.last_t)
        .max(span_ms);
    eng.advance(last_end);

    femux_obs::counter_add("sim.apps_simulated", 1);
    let alive_secs = eng.alive_pod_ms / 1_000.0;
    eng.costs.allocated_gb_seconds = mem_gb * alive_secs;
    let busy_pod_secs =
        eng.costs.exec_seconds / eng.concurrency as f64;
    eng.costs.wasted_gb_seconds =
        (eng.costs.allocated_gb_seconds - mem_gb * busy_pod_secs).max(0.0);
    let stats = eng.stats;
    // Fold the cluster into its outcome: the per-node occupancy
    // integral must agree exactly with the engine's alive-time
    // integral (both are integer-valued sums of pod-count × ms).
    let cluster_outcome = eng.cluster.take().map(|cl| {
        debug_assert_eq!(
            cl.total_pod_ms() as f64,
            eng.alive_pod_ms,
            "per-node occupancy must sum to the alive-time integral"
        );
        cl.into_outcome(last_end)
    });
    let mut fault_stats =
        eng.faults.map(|f| f.stats).unwrap_or_default();
    if let Some(nf) = eng.node_faults {
        fault_stats.merge(&nf.stats);
    }
    (
        SimResult {
            costs: eng.costs,
            delays_secs: eng.delays,
            avg_concurrency: eng.avg_concurrency,
            peak_concurrency: eng.peak_concurrency,
            arrivals: eng.arrivals,
            pod_counts: eng.pod_counts,
            initial_pods: placed_initial,
            faults: fault_stats,
            cluster: cluster_outcome,
            spans: eng.spans,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{
        FixedPolicy, KeepAlivePolicy, KnativeDefaultPolicy, ZeroPolicy,
    };
    use femux_trace::types::{AppId, WorkloadKind};

    fn app_with(
        invocations: Vec<Invocation>,
        concurrency: u32,
        min_scale: u32,
    ) -> AppRecord {
        let mut app = AppRecord::new(AppId(1), WorkloadKind::Application);
        app.config.concurrency = concurrency;
        app.config.min_scale = min_scale;
        app.mem_used_mb = 1_024; // 1 GB for easy arithmetic
        app.invocations = invocations;
        app
    }

    fn inv(start_ms: u64, duration_ms: u32) -> Invocation {
        Invocation {
            start_ms,
            duration_ms,
            delay_ms: 0,
        }
    }

    fn cfg() -> SimConfig {
        SimConfig {
            record_delays: true,
            ..SimConfig::default()
        }
    }

    #[test]
    fn first_request_is_cold() {
        let app = app_with(vec![inv(1_000, 500)], 1, 0);
        let mut policy = ZeroPolicy;
        let res = simulate_app(&app, &mut policy, 120_000, &cfg());
        assert_eq!(res.costs.invocations, 1);
        assert_eq!(res.costs.cold_starts, 1);
        assert!((res.costs.cold_start_seconds - 0.808).abs() < 1e-9);
        assert_eq!(res.delays_secs, vec![0.808]);
    }

    #[test]
    fn min_scale_prevents_cold_start() {
        let app = app_with(vec![inv(1_000, 500)], 1, 1);
        let mut policy = ZeroPolicy;
        let res = simulate_app(&app, &mut policy, 120_000, &cfg());
        assert_eq!(res.costs.cold_starts, 0);
        assert_eq!(res.delays_secs, vec![0.0]);
        // The warm pod is allocated the entire span: 120 s * 1 GB.
        assert!(
            (res.costs.allocated_gb_seconds - 120.0).abs() < 0.5,
            "allocated {}",
            res.costs.allocated_gb_seconds
        );
    }

    #[test]
    fn concurrent_capacity_absorbs_burst() {
        // Concurrency 100: one cold start creates a pod that serves the
        // rest of the simultaneous burst... but the burst arrives at the
        // same ms, before the pod is warm, so each request within the
        // cold window that exceeds capacity spawns its own pod. With a
        // warm pod (min_scale 1), all 50 fit.
        let burst: Vec<Invocation> =
            (0..50).map(|k| inv(10_000 + k, 200)).collect();
        let app = app_with(burst, 100, 1);
        let mut policy = ZeroPolicy;
        let res = simulate_app(&app, &mut policy, 60_000, &cfg());
        assert_eq!(res.costs.cold_starts, 0);
    }

    #[test]
    fn concurrency_one_burst_spawns_pod_per_request() {
        let burst: Vec<Invocation> =
            (0..5).map(|k| inv(10_000 + k, 5_000)).collect();
        let app = app_with(burst, 1, 0);
        let mut policy = ZeroPolicy;
        let res = simulate_app(&app, &mut policy, 60_000, &cfg());
        assert_eq!(res.costs.cold_starts, 5);
    }

    #[test]
    fn second_request_reuses_warm_pod() {
        // First cold (spawns pod kept to interval end), second arrives
        // after the first completes but within the same interval: warm.
        let app = app_with(vec![inv(1_000, 100), inv(30_000, 100)], 1, 0);
        let mut policy = ZeroPolicy;
        let res = simulate_app(&app, &mut policy, 60_000, &cfg());
        assert_eq!(res.costs.cold_starts, 1);
        assert_eq!(res.delays_secs[1], 0.0);
    }

    #[test]
    fn zero_policy_scales_down_after_interval() {
        // Cold pod protected only to the end of its interval; a request
        // in a later interval is cold again.
        let app =
            app_with(vec![inv(1_000, 100), inv(200_000, 100)], 1, 0);
        let mut policy = ZeroPolicy;
        let res = simulate_app(&app, &mut policy, 300_000, &cfg());
        assert_eq!(res.costs.cold_starts, 2);
    }

    #[test]
    fn keep_alive_retains_pod() {
        // 5-minute keep-alive: the pod from the first request is still
        // around 3 minutes later.
        let app =
            app_with(vec![inv(1_000, 100), inv(200_000, 100)], 1, 0);
        let mut policy = KeepAlivePolicy::five_minutes();
        let res = simulate_app(&app, &mut policy, 300_000, &cfg());
        assert_eq!(res.costs.cold_starts, 1);
    }

    #[test]
    fn keep_alive_expires() {
        // 1-minute keep-alive: a request 4 minutes later is cold.
        let app =
            app_with(vec![inv(1_000, 100), inv(250_000, 100)], 1, 0);
        let mut policy = KeepAlivePolicy::one_minute();
        let res = simulate_app(&app, &mut policy, 300_000, &cfg());
        assert_eq!(res.costs.cold_starts, 2);
    }

    #[test]
    fn accounting_identity_holds() {
        let invs: Vec<Invocation> =
            (0..100).map(|k| inv(k * 2_000, 1_000)).collect();
        let app = app_with(invs, 1, 0);
        let mut policy = KnativeDefaultPolicy;
        let res = simulate_app(&app, &mut policy, 300_000, &cfg());
        res.costs.check().expect("cost record is consistent");
        // exec = 100 * 1 s
        assert!((res.costs.exec_seconds - 100.0).abs() < 1e-9);
        // waste + busy = allocated (1 GB memory).
        let busy_gbs = res.costs.exec_seconds * 1.0;
        assert!(
            (res.costs.wasted_gb_seconds + busy_gbs
                - res.costs.allocated_gb_seconds)
                .abs()
                < 1e-6
        );
    }

    #[test]
    fn fixed_policy_allocation_matches_span() {
        // 3 pods held for the whole 10-minute span with no traffic:
        // allocation = 3 pods * 600 s * 1 GB, all wasted.
        let app = app_with(vec![], 1, 0);
        let mut policy = FixedPolicy(3);
        let res = simulate_app(&app, &mut policy, 600_000, &cfg());
        // Pods only appear at the first tick (60 s in).
        let expected = 3.0 * (600.0 - 60.0);
        assert!(
            (res.costs.allocated_gb_seconds - expected).abs() < 1.0,
            "allocated {}",
            res.costs.allocated_gb_seconds
        );
        assert!(
            (res.costs.wasted_gb_seconds
                - res.costs.allocated_gb_seconds)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn inflight_pods_not_preempted() {
        // A long request spans several intervals under ZeroPolicy; its
        // pod must survive until completion.
        let app = app_with(vec![inv(1_000, 200_000)], 1, 0);
        let mut policy = ZeroPolicy;
        let res = simulate_app(&app, &mut policy, 300_000, &cfg());
        assert_eq!(res.costs.cold_starts, 1);
        // Pod alive from 1 s to ~201.8 s => ~200 GB-s allocated.
        assert!(
            res.costs.allocated_gb_seconds > 195.0,
            "allocated {}",
            res.costs.allocated_gb_seconds
        );
    }

    #[test]
    fn concurrency_observation_matches_load() {
        // Constant one-request-in-flight load: avg concurrency ~1.
        let invs: Vec<Invocation> =
            (0..300).map(|k| inv(k * 1_000, 1_000)).collect();
        let app = app_with(invs, 1, 1);
        let mut policy = KnativeDefaultPolicy;
        let res = simulate_app(&app, &mut policy, 300_000, &cfg());
        let mid = res.avg_concurrency[2];
        assert!((mid - 1.0).abs() < 0.05, "observed concurrency {mid}");
    }

    #[test]
    fn scale_limit_caps_proactive_spawns() {
        let app = app_with(vec![], 1, 0);
        let mut policy = FixedPolicy(5_000);
        let limited = SimConfig {
            scale_limit: Some(ScaleLimit {
                threshold: 0,
                per_minute: 100,
            }),
            ..cfg()
        };
        let res = simulate_app(&app, &mut policy, 120_000, &limited);
        // Two ticks (at 60 s and 120 s), each in its own minute: at most
        // 100 spawns each.
        assert!(
            *res.pod_counts.last().expect("ticks happened") <= 200,
            "pods {:?}",
            res.pod_counts
        );
    }

    #[test]
    fn delays_recorded_only_when_asked() {
        let app = app_with(vec![inv(1_000, 10)], 1, 0);
        let quiet = SimConfig {
            record_delays: false,
            ..SimConfig::default()
        };
        let res =
            simulate_app(&app, &mut ZeroPolicy, 60_000, &quiet);
        assert!(res.delays_secs.is_empty());
    }

    #[test]
    fn scale_events_reconstruct_timeline() {
        // Traffic for two intervals, then silence: expect one scale-up
        // and one scale-down event.
        let invs: Vec<Invocation> =
            (0..120).map(|k| inv(k * 1_000, 900)).collect();
        let app = app_with(invs, 1, 0);
        let mut policy = KnativeDefaultPolicy;
        let res = simulate_app(&app, &mut policy, 600_000, &cfg());
        let events = res.scale_events(60_000);
        assert!(!events.is_empty());
        assert!(events[0].is_up(), "first event is a scale-up");
        let last = events.last().expect("non-empty");
        assert_eq!(last.to, 0, "fleet scales back to zero");
        assert!(!last.is_up());
        // Events are time-ordered and alternate states faithfully.
        for w in events.windows(2) {
            assert!(w[0].at_ms < w[1].at_ms);
            assert!(w[0].to == w[1].from);
        }
    }

    #[test]
    fn min_scale_app_emits_no_phantom_scale_event() {
        // A min-scale-2 app with no traffic holds 2 pods the whole
        // span: the timeline never changes, so no scale event may be
        // reported (58.8 % of the calibrated fleet runs min_scale ≥ 1).
        let app = app_with(vec![], 1, 2);
        let res = simulate_app(&app, &mut ZeroPolicy, 180_000, &cfg());
        assert_eq!(res.initial_pods, 2);
        assert!(res.pod_counts.iter().all(|&p| p == 2));
        assert_eq!(
            res.scale_events(60_000),
            vec![],
            "constant min-scale timeline must emit no events"
        );
    }

    #[test]
    fn replay_is_clamped_to_span() {
        // The second invocation starts past the span boundary; it
        // belongs to the next window and must not be served, cost, or
        // keep pods alive here.
        let app =
            app_with(vec![inv(10_000, 100), inv(400_000, 100)], 1, 0);
        let res = simulate_app(&app, &mut ZeroPolicy, 120_000, &cfg());
        assert_eq!(res.costs.invocations, 1);
        assert_eq!(res.costs.cold_starts, 1);
        assert!((res.costs.exec_seconds - 0.1).abs() < 1e-12);
        // An invocation at exactly the boundary is also out of scope.
        let edge = app_with(vec![inv(120_000, 100)], 1, 0);
        let res = simulate_app(&edge, &mut ZeroPolicy, 120_000, &cfg());
        assert_eq!(res.costs.invocations, 0);
    }

    #[test]
    fn burst_queues_on_warming_pod() {
        // Three near-simultaneous arrivals with per-pod concurrency 100
        // share the one pod the first arrival spawns; the later two pay
        // the pod's remaining warm-up, not a fresh pod each.
        let burst: Vec<Invocation> =
            (0..3).map(|k| inv(10_000 + k, 200)).collect();
        let app = app_with(burst, 100, 0);
        let res = simulate_app(&app, &mut ZeroPolicy, 60_000, &cfg());
        assert_eq!(res.costs.cold_starts, 3);
        assert_eq!(res.delays_secs, vec![0.808, 0.807, 0.806]);
        // One 1-GB pod alive from 10 s to the 60 s interval end — three
        // pods would show ~150 GB-s.
        assert!(
            (res.costs.allocated_gb_seconds - 50.0).abs() < 1.0,
            "allocated {}",
            res.costs.allocated_gb_seconds
        );
    }

    #[test]
    fn odd_span_closes_prorated_tail_interval() {
        // Span 90 s at a 60 s interval: one tick at 60 s plus a 30 s
        // tail. A request executing 70 s → 90 s contributes 20 s of
        // concurrency to the tail, averaged over the 30 s divisor.
        let app = app_with(vec![inv(70_000, 20_000)], 1, 1);
        let res = simulate_app(&app, &mut ZeroPolicy, 90_000, &cfg());
        assert_eq!(res.avg_concurrency.len(), 2);
        assert_eq!(res.peak_concurrency.len(), 2);
        assert_eq!(res.arrivals.len(), 2);
        assert!((res.avg_concurrency[1] - 20.0 / 30.0).abs() < 1e-12);
        assert_eq!(res.arrivals[1], 1.0);
        // The tick-aligned sample stream is untouched.
        assert_eq!(res.pod_counts.len(), 1);
    }

    fn fault_cfg(faults: femux_fault::FaultConfig) -> SimConfig {
        SimConfig {
            record_delays: true,
            faults: Some(faults),
            ..SimConfig::default()
        }
    }

    #[test]
    fn zero_rate_plan_matches_no_plan_byte_for_byte() {
        let invs: Vec<Invocation> =
            (0..60).map(|k| inv(k * 3_000, 1_500)).collect();
        let app = app_with(invs, 1, 0);
        let mut p1 = KnativeDefaultPolicy;
        let mut p2 = KnativeDefaultPolicy;
        let clean = simulate_app(&app, &mut p1, 300_000, &cfg());
        let zeroed = simulate_app(
            &app,
            &mut p2,
            300_000,
            &fault_cfg(femux_fault::FaultConfig::off(0xFA17)),
        );
        assert_eq!(format!("{clean:?}"), format!("{zeroed:?}"));
        assert_eq!(zeroed.faults, FaultStats::default());
    }

    #[test]
    fn crashed_pod_restarts_cold_but_stays_allocated() {
        // min_scale 1 keeps one pod warm from t=0; a certain crash at
        // the 60 s tick leaves it allocated but cold, so the request at
        // 60.1 s pays a cold start it would not have paid otherwise.
        let app = app_with(vec![inv(60_100, 100)], 1, 1);
        let clean =
            simulate_app(&app, &mut ZeroPolicy, 120_000, &cfg());
        assert_eq!(clean.costs.cold_starts, 0);
        let mut faults = femux_fault::FaultConfig::off(1);
        faults.pod_crash_rate = 1.0;
        let crashed = simulate_app(
            &app,
            &mut ZeroPolicy,
            120_000,
            &fault_cfg(faults),
        );
        assert_eq!(crashed.costs.cold_starts, 1);
        assert!(crashed.faults.pod_crashes > 0);
        crashed.costs.check().expect("crash accounting stays valid");
        // The crashed pod never leaves the fleet (min_scale floor holds
        // throughout) and keeps accruing allocation while it restarts;
        // the reactive cold-start spawn only adds on top.
        assert!(crashed.pod_counts.iter().all(|&p| p >= 1));
        assert!(
            crashed.costs.allocated_gb_seconds
                >= clean.costs.allocated_gb_seconds - 1e-9,
            "restarting pod must keep accruing allocation: {} vs {}",
            crashed.costs.allocated_gb_seconds,
            clean.costs.allocated_gb_seconds
        );
    }

    #[test]
    fn straggler_inflates_cold_start_latency() {
        let app = app_with(vec![inv(1_000, 500)], 1, 0);
        let mut faults = femux_fault::FaultConfig::off(2);
        faults.straggler_rate = 1.0;
        faults.straggler_factor = 10.0;
        let res = simulate_app(
            &app,
            &mut ZeroPolicy,
            120_000,
            &fault_cfg(faults),
        );
        assert_eq!(res.faults.cold_stragglers, 1);
        assert_eq!(res.delays_secs, vec![8.08]);
        assert!((res.costs.cold_start_seconds - 8.08).abs() < 1e-9);
    }

    #[test]
    fn dropped_actuations_never_scale_up() {
        let app = app_with(vec![], 1, 0);
        let mut faults = femux_fault::FaultConfig::off(3);
        faults.actuation_drop_rate = 1.0;
        let res = simulate_app(
            &app,
            &mut FixedPolicy(3),
            300_000,
            &fault_cfg(faults),
        );
        assert!(res.pod_counts.iter().all(|&p| p == 0));
        assert_eq!(res.faults.actuation_drops as usize, res.pod_counts.len());
    }

    #[test]
    fn delayed_actuations_apply_one_tick_late() {
        let app = app_with(vec![], 1, 0);
        let mut faults = femux_fault::FaultConfig::off(4);
        faults.actuation_delay_rate = 1.0;
        let res = simulate_app(
            &app,
            &mut FixedPolicy(3),
            300_000,
            &fault_cfg(faults),
        );
        // Every decision is delayed one tick: the first tick shows no
        // pods, every later tick shows the previous tick's target.
        assert_eq!(res.pod_counts[0], 0);
        assert!(res.pod_counts[1..].iter().all(|&p| p == 3));
        assert!(res.faults.actuation_delays > 0);
    }

    #[test]
    fn cost_scales_with_invocations_not_span() {
        // A sparse app — one request per day for a month — then the
        // same app simulated over twice the span (31 further days of
        // pure idle). The extra idle month must cost O(1) processed
        // events, not one per-tick decision per interval.
        let day = 86_400_000u64;
        let invs: Vec<Invocation> =
            (0..31).map(|d| inv(d * day + 1_000, 500)).collect();
        let app = app_with(invs, 1, 0);
        let run = |span: u64| {
            let mut policy = KeepAlivePolicy::ten_minutes();
            simulate_app_with_stats(&app, &mut policy, span, &cfg())
        };
        let (r31, s31) = run(31 * day);
        let (r62, s62) = run(62 * day);
        assert_eq!(r31.costs.invocations, 31);
        assert_eq!(r62.costs.invocations, 31);
        // The batched series still covers every interval of the span.
        assert_eq!(r62.pod_counts.len(), (62 * day / 60_000) as usize);
        let per_tick_cost = 31 * day / 60_000; // 44,640 avoided ticks
        let extra = s62.events() - s31.events();
        assert!(
            extra <= 16,
            "an idle month must cost O(1) events, got {extra} \
             (a per-tick engine would pay {per_tick_cost})"
        );
        // Even the active month runs on far fewer events than ticks.
        assert!(
            s31.events() < per_tick_cost / 10,
            "events {} vs span ticks {per_tick_cost}",
            s31.events()
        );
    }

    #[test]
    fn drain_due_preserves_insertion_order() {
        let mut pending =
            vec![(10, 5), (10, 2), (20, 7), (5, 9), (10, 4)];
        let due = drain_due(&mut pending, 10);
        // Everything due at t=10, in the order it was enqueued — the
        // order delayed actuations must be applied in.
        assert_eq!(due, vec![(10, 5), (10, 2), (5, 9), (10, 4)]);
        assert_eq!(pending, vec![(20, 7)]);
        let due = drain_due(&mut pending, 15);
        assert!(due.is_empty());
        assert_eq!(pending, vec![(20, 7)]);
        let due = drain_due(&mut pending, 20);
        assert_eq!(due, vec![(20, 7)]);
        assert!(pending.is_empty());
    }

    #[test]
    fn staggered_delays_apply_in_decision_order() {
        // Every decision delayed two ticks: the pending queue holds two
        // entries at all times and each tick must mature the *older*
        // one. A ramping policy makes any reordering visible in the
        // pod-count timeline.
        struct Ramp(usize);
        impl ScalingPolicy for Ramp {
            fn name(&self) -> String {
                "ramp".into()
            }
            fn target_pods(&mut self, _ctx: &PolicyCtx<'_>) -> usize {
                self.0 += 1;
                self.0
            }
        }
        let app = app_with(vec![], 1, 0);
        let mut faults = femux_fault::FaultConfig::off(6);
        faults.actuation_delay_rate = 1.0;
        faults.actuation_delay_ticks = 2;
        let res = simulate_app(
            &app,
            &mut Ramp(0),
            600_000,
            &fault_cfg(faults),
        );
        // Tick k (0-based) applies the target decided at tick k-2,
        // which was k-1 pods.
        for (k, &pods) in res.pod_counts.iter().enumerate() {
            assert_eq!(pods, k.saturating_sub(1), "tick {k}");
        }
    }

    #[test]
    fn lost_reports_surface_as_nan_samples() {
        let invs: Vec<Invocation> =
            (0..100).map(|k| inv(k * 1_000, 500)).collect();
        let app = app_with(invs, 1, 0);
        let mut faults = femux_fault::FaultConfig::off(5);
        faults.report_loss_rate = 1.0;
        let res = simulate_app(
            &app,
            &mut KnativeDefaultPolicy,
            300_000,
            &fault_cfg(faults),
        );
        assert!(res.avg_concurrency.iter().all(|v| v.is_nan()));
        assert_eq!(
            res.faults.report_losses as usize,
            res.avg_concurrency.len()
        );
        // Costs never touch the poisoned series.
        res.costs.check().expect("cost record stays consistent");
        assert!(res.costs.allocated_gb_seconds.is_finite());
    }

    #[test]
    fn per_app_cold_start_override() {
        let mut app = app_with(vec![inv(1_000, 10)], 1, 0);
        app.cold_start_ms = 5_000;
        let use_app_cs = SimConfig {
            cold_start_ms: None,
            record_delays: true,
            ..SimConfig::default()
        };
        let res =
            simulate_app(&app, &mut ZeroPolicy, 60_000, &use_app_cs);
        assert!((res.costs.cold_start_seconds - 5.0).abs() < 1e-9);
        assert_eq!(res.delays_secs, vec![5.0]);
    }

    fn cluster_cfg(nodes: usize, mem_mb: u64) -> SimConfig {
        SimConfig {
            record_delays: true,
            cluster: Some(crate::cluster::ClusterConfig::uniform(
                nodes,
                crate::cluster::NodeConfig {
                    cpu_milli: u64::MAX,
                    mem_mb,
                },
            )),
            ..SimConfig::default()
        }
    }

    #[test]
    fn unbounded_cluster_is_transparent() {
        let invs: Vec<Invocation> =
            (0..40).map(|k| inv(k * 4_000, 2_000)).collect();
        let app = app_with(invs, 2, 1);
        let free =
            simulate_app(&app, &mut KnativeDefaultPolicy, 300_000, &cfg());
        let clustered_cfg = SimConfig {
            record_delays: true,
            cluster: Some(crate::cluster::ClusterConfig::unbounded()),
            ..SimConfig::default()
        };
        let clustered = simulate_app(
            &app,
            &mut KnativeDefaultPolicy,
            300_000,
            &clustered_cfg,
        );
        let outcome =
            clustered.cluster.clone().expect("cluster outcome present");
        assert_eq!(outcome.evictions, 0);
        assert_eq!(outcome.saturated_overcommits, 0);
        assert_eq!(outcome.placement_denials, 0);
        // Per-node occupancy (one node) equals the billed alive time.
        let alive_secs =
            free.costs.allocated_gb_seconds / (1_024.0 / 1_024.0);
        assert!(
            (outcome.node_pod_seconds[0] - alive_secs).abs() < 1e-6,
            "occupancy {} vs billed {}",
            outcome.node_pod_seconds[0],
            alive_secs
        );
        let mut stripped = clustered.clone();
        stripped.cluster = None;
        assert_eq!(format!("{stripped:?}"), format!("{free:?}"));
    }

    #[test]
    fn memory_pressure_evicts_idle_longest_pod() {
        // Node fits exactly two pods; the min-scale floor fills it.
        // Two warm admissions saturate capacity, the third arrival
        // must spawn — and the only room is an idle min-scale pod.
        let mut app = app_with(
            vec![inv(5_000, 60_000), inv(5_000, 60_000), inv(5_000, 60_000)],
            1,
            2,
        );
        app.mem_used_mb = 100;
        let cfg = SimConfig {
            spans: Some(femux_obs::span::SpanConfig::all(7)),
            ..cluster_cfg(1, 250)
        };
        let res =
            simulate_app(&app, &mut FixedPolicy(2), 120_000, &cfg);
        let outcome = res.cluster.clone().expect("cluster outcome");
        assert_eq!(outcome.evictions, 1);
        assert_eq!(outcome.saturated_overcommits, 0);
        assert_eq!(res.costs.cold_starts, 1);
        // The victim is the idle-longest pod: min (warm_at, uid), the
        // first min-scale pod (uid 0).
        let evicted_span = res
            .spans
            .iter()
            .find(|s| matches!(s.cause, WaitCause::Evicted { .. }))
            .expect("eviction recorded as a span cause");
        match evicted_span.cause {
            WaitCause::Evicted { node, victim_pod } => {
                assert_eq!(node, 0);
                assert_eq!(victim_pod, 0);
            }
            _ => unreachable!(),
        }
        assert_eq!(evicted_span.cold_wait_ms, 808);
        assert!(outcome.conserved());
    }

    #[test]
    fn saturated_cluster_overcommits_without_a_pod() {
        // One node, one slot. The first request cold-starts onto it and
        // keeps the pod protected; the second finds no room and no
        // evictable victim, so it runs overcommitted at the full cold
        // penalty and the ledger records no second placement.
        let mut app =
            app_with(vec![inv(5_000, 60_000), inv(6_000, 1_000)], 1, 0);
        app.mem_used_mb = 100;
        let cfg = SimConfig {
            spans: Some(femux_obs::span::SpanConfig::all(9)),
            ..cluster_cfg(1, 100)
        };
        let res = simulate_app(&app, &mut ZeroPolicy, 120_000, &cfg);
        let outcome = res.cluster.clone().expect("cluster outcome");
        assert_eq!(outcome.placed, 1);
        assert_eq!(outcome.saturated_overcommits, 1);
        assert_eq!(outcome.evictions, 0);
        assert_eq!(res.costs.cold_starts, 2);
        assert_eq!(res.delays_secs, vec![0.808, 0.808]);
        assert!(res
            .spans
            .iter()
            .any(|s| matches!(s.cause, WaitCause::Saturated)));
        assert!(outcome.conserved());
    }

    #[test]
    fn node_crash_displaces_pods_and_backs_off_while_down() {
        // Two single-slot nodes hold the min-scale floor; a certain
        // node-crash plan with a long recovery takes both down at the
        // first tick. Nothing can restart while the cluster is dark, so
        // the displaced pods stay queued under growing backoff.
        let mut app = app_with(vec![], 1, 2);
        app.mem_used_mb = 100;
        let mut faults = femux_fault::FaultConfig::off(0xC1);
        faults.node_crash_rate = 1.0;
        faults.node_recovery_ticks = 1_000;
        let cfg = SimConfig {
            faults: Some(faults),
            ..cluster_cfg(2, 100)
        };
        let res = simulate_app(&app, &mut FixedPolicy(2), 300_000, &cfg);
        let outcome = res.cluster.clone().expect("cluster outcome");
        // One crash per node, drawn in node order at the 60 s tick.
        assert_eq!(outcome.node_crashes, 2);
        assert_eq!(res.faults.node_crashes, 2);
        assert_eq!(outcome.pods_displaced, 2);
        assert_eq!(outcome.node_restarts, 0);
        assert_eq!(outcome.resident_end, 0);
        assert!(outcome.conserved());
        // The engine's pod vector empties when the fleet is displaced
        // (FixedPolicy keeps asking for 2, but placement is denied).
        assert_eq!(*res.pod_counts.last().unwrap(), 0);
        res.costs.check().expect("finite accounting under node loss");
    }

    #[test]
    fn node_crash_restarts_displaced_pods_after_recovery() {
        // One fragile node crashes once (rate 1.0 would re-crash on
        // recovery, so use a one-tick recovery and watch the crash /
        // recover / re-crash cycle: every recovery instantly re-crashes,
        // but each crash-displaced pod is respawned whenever an up node
        // exists at a respawn round). With recovery_ticks=1 the node is
        // back up at the next tick, crashes again after the respawn
        // ordering check -- so instead pin the cycle with 2 nodes where
        // capacity survives: recovery brings nodes back and restarts
        // land.
        let mut app = app_with(vec![], 1, 2);
        app.mem_used_mb = 100;
        let mut faults = femux_fault::FaultConfig::off(0x9D);
        faults.node_crash_rate = 0.25;
        faults.node_recovery_ticks = 1;
        let cfg = SimConfig {
            faults: Some(faults),
            ..cluster_cfg(2, 100)
        };
        let res =
            simulate_app(&app, &mut FixedPolicy(2), 1_800_000, &cfg);
        let outcome = res.cluster.clone().expect("cluster outcome");
        assert!(outcome.node_crashes > 0, "plan should fire at 25%");
        assert_eq!(res.faults.node_crashes, outcome.node_crashes);
        assert!(outcome.node_restarts > 0, "restarts should land");
        assert!(outcome.conserved());
        // Determinism: the same seed replays the same history.
        let mut faults2 = femux_fault::FaultConfig::off(0x9D);
        faults2.node_crash_rate = 0.25;
        faults2.node_recovery_ticks = 1;
        let cfg2 = SimConfig {
            faults: Some(faults2),
            ..cluster_cfg(2, 100)
        };
        let res2 =
            simulate_app(&app, &mut FixedPolicy(2), 1_800_000, &cfg2);
        assert_eq!(format!("{res:?}"), format!("{res2:?}"));
    }

    #[test]
    fn zero_node_crash_rate_matches_no_fault_layer() {
        // A rate-0 plan over a clustered run must be byte-identical to
        // the same clustered run with no fault layer at all, cluster
        // ledger included.
        let invs: Vec<Invocation> =
            (0..30).map(|k| inv(k * 7_000, 2_500)).collect();
        let mut app = app_with(invs, 1, 1);
        app.mem_used_mb = 100;
        let clean_cfg = cluster_cfg(2, 300);
        let clean = simulate_app(
            &app,
            &mut KnativeDefaultPolicy,
            300_000,
            &clean_cfg,
        );
        let zeroed_cfg = SimConfig {
            faults: Some(femux_fault::FaultConfig::off(0xFA17)),
            ..cluster_cfg(2, 300)
        };
        let zeroed = simulate_app(
            &app,
            &mut KnativeDefaultPolicy,
            300_000,
            &zeroed_cfg,
        );
        assert_eq!(format!("{clean:?}"), format!("{zeroed:?}"));
        assert_eq!(zeroed.faults, FaultStats::default());
    }
}

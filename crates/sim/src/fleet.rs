//! Fleet-level simulation: run a policy over every application of a
//! trace and collect per-application cost records.
//!
//! Policies are stateful per application (forecasters accumulate
//! history), so the caller provides a *factory* that builds one policy
//! instance per app.

use femux_rum::CostRecord;
use femux_trace::types::{AppRecord, Trace};

use crate::engine::{simulate_app, SimConfig, SimResult};
use crate::policy::ScalingPolicy;

/// Per-application outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// One cost record per application, in trace order.
    pub per_app: Vec<CostRecord>,
    /// Fleet-wide totals.
    pub total: CostRecord,
}

impl FleetOutcome {
    /// Fleet cold-start fraction.
    pub fn cold_start_fraction(&self) -> f64 {
        self.total.cold_start_fraction()
    }
}

/// Runs `make_policy(app_index, app)` over every app in the trace.
pub fn run_fleet<F>(
    trace: &Trace,
    cfg: &SimConfig,
    mut make_policy: F,
) -> FleetOutcome
where
    F: FnMut(usize, &AppRecord) -> Box<dyn ScalingPolicy>,
{
    let mut per_app = Vec::with_capacity(trace.apps.len());
    let mut total = CostRecord::default();
    for (i, app) in trace.apps.iter().enumerate() {
        let mut policy = make_policy(i, app);
        let result = simulate_app(app, policy.as_mut(), trace.span_ms, cfg);
        total.merge(&result.costs);
        per_app.push(result.costs);
    }
    FleetOutcome { per_app, total }
}

/// Runs `make_policy` over every app in parallel across `threads`
/// workers (via the `femux-par` substrate). The policy factory must be
/// callable from any worker, so it takes `&Fn` (stateless
/// construction); results are identical to [`run_fleet`] since
/// applications are independent and per-app records are collected in
/// trace order before the (sequential) total merge.
pub fn run_fleet_parallel<F>(
    trace: &Trace,
    cfg: &SimConfig,
    threads: usize,
    make_policy: F,
) -> FleetOutcome
where
    F: Fn(usize, &AppRecord) -> Box<dyn ScalingPolicy> + Sync,
{
    let per_app =
        femux_par::par_map_threads(&trace.apps, threads, |i, app| {
            let mut policy = make_policy(i, app);
            simulate_app(app, policy.as_mut(), trace.span_ms, cfg).costs
        });
    let mut total = CostRecord::default();
    for r in &per_app {
        total.merge(r);
    }
    FleetOutcome { per_app, total }
}

/// [`run_fleet_parallel`] sized by the ambient `femux-par` thread count
/// (`FEMUX_THREADS` or available parallelism) — the entry point the
/// experiment binaries use for fleet sweeps.
pub fn run_fleet_auto<F>(
    trace: &Trace,
    cfg: &SimConfig,
    make_policy: F,
) -> FleetOutcome
where
    F: Fn(usize, &AppRecord) -> Box<dyn ScalingPolicy> + Sync,
{
    run_fleet_parallel(trace, cfg, femux_par::thread_count(), make_policy)
}

/// Runs the fleet but also returns the full [`SimResult`] per app
/// (including delay vectors and concurrency series) — used by the
/// characterization and Knative-comparison experiments.
pub fn run_fleet_detailed<F>(
    trace: &Trace,
    cfg: &SimConfig,
    mut make_policy: F,
) -> Vec<SimResult>
where
    F: FnMut(usize, &AppRecord) -> Box<dyn ScalingPolicy>,
{
    trace
        .apps
        .iter()
        .enumerate()
        .map(|(i, app)| {
            let mut policy = make_policy(i, app);
            simulate_app(app, policy.as_mut(), trace.span_ms, cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{KeepAlivePolicy, ZeroPolicy};
    use femux_trace::synth::ibm::{generate, IbmFleetConfig};

    #[test]
    fn fleet_totals_are_sums() {
        let trace = generate(&IbmFleetConfig::small(11));
        let cfg = SimConfig::default();
        let out = run_fleet(&trace, &cfg, |_, _| Box::new(ZeroPolicy));
        let mut merged = CostRecord::default();
        for r in &out.per_app {
            r.check().expect("per-app record consistent");
            merged.merge(r);
        }
        assert_eq!(merged.invocations, out.total.invocations);
        assert_eq!(
            out.total.invocations,
            trace.total_invocations(),
            "every invocation must be served exactly once"
        );
    }

    #[test]
    fn keep_alive_trades_memory_for_cold_starts() {
        let trace = generate(&IbmFleetConfig::small(12));
        // Disable min-scale so the trade-off is visible.
        let cfg = SimConfig {
            respect_min_scale: false,
            ..SimConfig::default()
        };
        let zero = run_fleet(&trace, &cfg, |_, _| Box::new(ZeroPolicy));
        let ka = run_fleet(&trace, &cfg, |_, _| {
            Box::new(KeepAlivePolicy::ten_minutes())
        });
        assert!(
            ka.total.cold_starts < zero.total.cold_starts,
            "keep-alive should reduce cold starts: {} vs {}",
            ka.total.cold_starts,
            zero.total.cold_starts
        );
        assert!(
            ka.total.wasted_gb_seconds > zero.total.wasted_gb_seconds,
            "keep-alive should waste more memory"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let trace = generate(&IbmFleetConfig::small(14));
        let cfg = SimConfig::default();
        let seq = run_fleet(&trace, &cfg, |_, _| Box::new(ZeroPolicy));
        let par = run_fleet_parallel(&trace, &cfg, 4, |_, _| {
            Box::new(ZeroPolicy)
        });
        assert_eq!(seq.per_app, par.per_app);
        assert_eq!(seq.total, par.total);
    }

    #[test]
    fn min_scale_suppresses_cold_starts_fleetwide() {
        let trace = generate(&IbmFleetConfig::small(13));
        let with = run_fleet(&trace, &SimConfig::default(), |_, _| {
            Box::new(ZeroPolicy)
        });
        let without = run_fleet(
            &trace,
            &SimConfig {
                respect_min_scale: false,
                ..SimConfig::default()
            },
            |_, _| Box::new(ZeroPolicy),
        );
        assert!(with.total.cold_starts < without.total.cold_starts);
        assert!(with.cold_start_fraction() < without.cold_start_fraction());
    }
}

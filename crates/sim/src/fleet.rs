//! Fleet-level simulation: run a policy over every application of a
//! trace and collect per-application cost records.
//!
//! Policies are stateful per application (forecasters accumulate
//! history), so the caller provides a *factory* that builds one policy
//! instance per app.

use std::borrow::Cow;

use femux_fault::FaultStats;
use femux_rum::CostRecord;
use femux_trace::types::{AppId, AppRecord, Trace};

use crate::engine::{simulate_app, SimConfig, SimResult};
use crate::policy::ScalingPolicy;

/// Per-application outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Application ids, aligned with `per_app`.
    pub app_ids: Vec<AppId>,
    /// One cost record per application, in trace order.
    pub per_app: Vec<CostRecord>,
    /// Fleet-wide totals.
    pub total: CostRecord,
    /// Injected-fault totals across the fleet: engine-side injections
    /// (crashes, stragglers, actuation faults, report loss) plus any
    /// policy-side injections reported via
    /// [`ScalingPolicy::fault_stats`]. All zero for fault-free runs.
    pub fault_totals: FaultStats,
}

/// One application's share of the fleet costs (the per-app view of the
/// aggregate the paper reports — cold starts, cold-start seconds, and
/// wasted GB-s per app id).
#[derive(Debug, Clone, PartialEq)]
pub struct AppCostBreakdown {
    /// The application.
    pub app_id: AppId,
    /// Requests served.
    pub invocations: u64,
    /// Cold starts paid.
    pub cold_starts: u64,
    /// Seconds of cold-start latency paid.
    pub cold_start_seconds: f64,
    /// GB-seconds allocated but idle.
    pub wasted_gb_seconds: f64,
}

impl FleetOutcome {
    /// Fleet cold-start fraction.
    pub fn cold_start_fraction(&self) -> f64 {
        self.total.cold_start_fraction()
    }

    /// Per-application cost breakdown, in trace order. Each column sums
    /// exactly to the corresponding `total` field (the per-app records
    /// are what `total` is merged from).
    pub fn per_app_breakdown(&self) -> Vec<AppCostBreakdown> {
        self.app_ids
            .iter()
            .zip(&self.per_app)
            .map(|(&app_id, costs)| AppCostBreakdown {
                app_id,
                invocations: costs.invocations,
                cold_starts: costs.cold_starts,
                cold_start_seconds: costs.cold_start_seconds,
                wasted_gb_seconds: costs.wasted_gb_seconds,
            })
            .collect()
    }
}

/// Namespaces a fleet run's trace events so repeated sweeps over the
/// same applications never reuse a track (each track must be one
/// sequential emission unit), and injects the process-ambient span
/// config (the bench layer's `--span-sample`) into configs that do not
/// already carry one. The epoch is drawn here, in sequential
/// coordination code, so its sequence is deterministic.
fn with_run_epoch(cfg: &SimConfig) -> Cow<'_, SimConfig> {
    let need_prefix =
        femux_obs::events_enabled() && cfg.obs_track_prefix.is_none();
    let ambient_spans = if cfg.spans.is_none() {
        femux_obs::span::ambient()
    } else {
        None
    };
    if need_prefix || ambient_spans.is_some() {
        let mut c = cfg.clone();
        if need_prefix {
            c.obs_track_prefix =
                Some(format!("fleet-{:02}", femux_obs::next_track_epoch()));
        }
        if ambient_spans.is_some() {
            c.spans = ambient_spans;
        }
        Cow::Owned(c)
    } else {
        Cow::Borrowed(cfg)
    }
}

/// Runs `make_policy(app_index, app)` over every app in the trace.
pub fn run_fleet<F>(
    trace: &Trace,
    cfg: &SimConfig,
    mut make_policy: F,
) -> FleetOutcome
where
    F: FnMut(usize, &AppRecord) -> Box<dyn ScalingPolicy>,
{
    let cfg = with_run_epoch(cfg);
    let mut per_app = Vec::with_capacity(trace.apps.len());
    let mut total = CostRecord::default();
    let mut fault_totals = FaultStats::default();
    for (i, app) in trace.apps.iter().enumerate() {
        let mut policy = make_policy(i, app);
        let result = simulate_app(app, policy.as_mut(), trace.span_ms, &cfg);
        total.merge(&result.costs);
        fault_totals.merge(&result.faults);
        fault_totals.merge(&policy.fault_stats());
        per_app.push(result.costs);
    }
    FleetOutcome {
        app_ids: trace.apps.iter().map(|a| a.id).collect(),
        per_app,
        total,
        fault_totals,
    }
}

/// Runs `make_policy` over every app in parallel across `threads`
/// workers (via the `femux-par` substrate). The policy factory must be
/// callable from any worker, so it takes `&Fn` (stateless
/// construction); results are identical to [`run_fleet`] since
/// applications are independent and per-app records are collected in
/// trace order before the (sequential) total merge.
pub fn run_fleet_parallel<F>(
    trace: &Trace,
    cfg: &SimConfig,
    threads: usize,
    make_policy: F,
) -> FleetOutcome
where
    F: Fn(usize, &AppRecord) -> Box<dyn ScalingPolicy> + Sync,
{
    let cfg = with_run_epoch(cfg);
    let cfg = &*cfg;
    let results =
        femux_par::par_map_threads(&trace.apps, threads, |i, app| {
            let mut policy = make_policy(i, app);
            let result =
                simulate_app(app, policy.as_mut(), trace.span_ms, cfg);
            let mut faults = result.faults;
            faults.merge(&policy.fault_stats());
            (result.costs, faults)
        });
    let mut total = CostRecord::default();
    let mut fault_totals = FaultStats::default();
    let mut per_app = Vec::with_capacity(results.len());
    for (costs, faults) in results {
        total.merge(&costs);
        fault_totals.merge(&faults);
        per_app.push(costs);
    }
    FleetOutcome {
        app_ids: trace.apps.iter().map(|a| a.id).collect(),
        per_app,
        total,
        fault_totals,
    }
}

/// [`run_fleet_parallel`] sized by the ambient `femux-par` thread count
/// (`FEMUX_THREADS` or available parallelism) — the entry point the
/// experiment binaries use for fleet sweeps.
pub fn run_fleet_auto<F>(
    trace: &Trace,
    cfg: &SimConfig,
    make_policy: F,
) -> FleetOutcome
where
    F: Fn(usize, &AppRecord) -> Box<dyn ScalingPolicy> + Sync,
{
    run_fleet_parallel(trace, cfg, femux_par::thread_count(), make_policy)
}

/// Runs the fleet but also returns the full [`SimResult`] per app
/// (including delay vectors and concurrency series) — used by the
/// characterization and Knative-comparison experiments.
///
/// Runs across the ambient `femux-par` thread count. Applications are
/// independent and results are collected in trace order, so the output
/// is byte-identical at any thread count (like [`run_fleet_parallel`]
/// vs [`run_fleet`]); the factory must therefore be callable from any
/// worker (`Fn + Sync`).
pub fn run_fleet_detailed<F>(
    trace: &Trace,
    cfg: &SimConfig,
    make_policy: F,
) -> Vec<SimResult>
where
    F: Fn(usize, &AppRecord) -> Box<dyn ScalingPolicy> + Sync,
{
    let cfg = with_run_epoch(cfg);
    let cfg = &*cfg;
    femux_par::par_map_threads(
        &trace.apps,
        femux_par::thread_count(),
        |i, app| {
            let mut policy = make_policy(i, app);
            simulate_app(app, policy.as_mut(), trace.span_ms, cfg)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{KeepAlivePolicy, ZeroPolicy};
    use femux_trace::synth::ibm::{generate, IbmFleetConfig};

    #[test]
    fn fleet_totals_are_sums() {
        let trace = generate(&IbmFleetConfig::small(11));
        let cfg = SimConfig::default();
        let out = run_fleet(&trace, &cfg, |_, _| Box::new(ZeroPolicy));
        let mut merged = CostRecord::default();
        for r in &out.per_app {
            r.check().expect("per-app record consistent");
            merged.merge(r);
        }
        assert_eq!(merged.invocations, out.total.invocations);
        assert_eq!(
            out.total.invocations,
            trace.total_invocations(),
            "every invocation must be served exactly once"
        );
    }

    #[test]
    fn per_app_breakdown_sums_to_aggregate() {
        let trace = generate(&IbmFleetConfig::small(15));
        let cfg = SimConfig::default();
        let out = run_fleet(&trace, &cfg, |_, _| {
            Box::new(KeepAlivePolicy::ten_minutes())
        });
        let breakdown = out.per_app_breakdown();
        assert_eq!(breakdown.len(), trace.apps.len());
        assert_eq!(
            breakdown.iter().map(|b| b.app_id).collect::<Vec<_>>(),
            trace.apps.iter().map(|a| a.id).collect::<Vec<_>>(),
            "breakdown follows trace order"
        );
        let invocations: u64 =
            breakdown.iter().map(|b| b.invocations).sum();
        let cold_starts: u64 =
            breakdown.iter().map(|b| b.cold_starts).sum();
        let cold_secs: f64 =
            breakdown.iter().map(|b| b.cold_start_seconds).sum();
        let wasted: f64 =
            breakdown.iter().map(|b| b.wasted_gb_seconds).sum();
        assert_eq!(invocations, out.total.invocations);
        assert_eq!(cold_starts, out.total.cold_starts);
        // total is merged by summing the same per-app records in the
        // same order, so even the float columns match exactly.
        assert_eq!(cold_secs, out.total.cold_start_seconds);
        assert_eq!(wasted, out.total.wasted_gb_seconds);
    }

    #[test]
    fn keep_alive_trades_memory_for_cold_starts() {
        let trace = generate(&IbmFleetConfig::small(12));
        // Disable min-scale so the trade-off is visible.
        let cfg = SimConfig {
            respect_min_scale: false,
            ..SimConfig::default()
        };
        let zero = run_fleet(&trace, &cfg, |_, _| Box::new(ZeroPolicy));
        let ka = run_fleet(&trace, &cfg, |_, _| {
            Box::new(KeepAlivePolicy::ten_minutes())
        });
        assert!(
            ka.total.cold_starts < zero.total.cold_starts,
            "keep-alive should reduce cold starts: {} vs {}",
            ka.total.cold_starts,
            zero.total.cold_starts
        );
        assert!(
            ka.total.wasted_gb_seconds > zero.total.wasted_gb_seconds,
            "keep-alive should waste more memory"
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let trace = generate(&IbmFleetConfig::small(14));
        let cfg = SimConfig::default();
        let seq = run_fleet(&trace, &cfg, |_, _| Box::new(ZeroPolicy));
        let par = run_fleet_parallel(&trace, &cfg, 4, |_, _| {
            Box::new(ZeroPolicy)
        });
        assert_eq!(seq.per_app, par.per_app);
        assert_eq!(seq.total, par.total);
    }

    #[test]
    fn detailed_results_are_thread_count_invariant() {
        let trace = generate(&IbmFleetConfig::small(16));
        let cfg = SimConfig {
            record_delays: true,
            ..SimConfig::default()
        };
        let one = {
            let _guard = femux_par::override_threads(1);
            run_fleet_detailed(&trace, &cfg, |_, _| {
                Box::new(KeepAlivePolicy::ten_minutes())
            })
        };
        let eight = {
            let _guard = femux_par::override_threads(8);
            run_fleet_detailed(&trace, &cfg, |_, _| {
                Box::new(KeepAlivePolicy::ten_minutes())
            })
        };
        assert_eq!(one.len(), trace.apps.len());
        // Full SimResults — costs, delay vectors, every series — must be
        // byte-identical regardless of worker count.
        assert_eq!(one, eight);
    }

    #[test]
    fn min_scale_suppresses_cold_starts_fleetwide() {
        let trace = generate(&IbmFleetConfig::small(13));
        let with = run_fleet(&trace, &SimConfig::default(), |_, _| {
            Box::new(ZeroPolicy)
        });
        let without = run_fleet(
            &trace,
            &SimConfig {
                respect_min_scale: false,
                ..SimConfig::default()
            },
            |_, _| Box::new(ZeroPolicy),
        );
        assert!(with.total.cold_starts < without.total.cold_starts);
        assert!(with.cold_start_fraction() < without.cold_start_fraction());
    }
}

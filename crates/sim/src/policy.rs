//! Scaling-policy interface and built-in reference policies.
//!
//! A [`ScalingPolicy`] is consulted at every scaling interval with the
//! application's observed traffic history and returns the desired number
//! of warm pods. The simulator applies the paper's override rules on top:
//! pods are never preempted mid-execution, pods provisioned by a cold
//! start live at least to the end of the interval, and the user's
//! minimum-scale floor always holds (§4.3.5).

use femux_trace::types::AppConfig;

/// Everything a policy may inspect when making a scaling decision.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Current simulation time (an interval boundary), ms.
    pub now_ms: u64,
    /// Scaling interval length, ms.
    pub interval_ms: u64,
    /// Average concurrency observed in each completed interval
    /// (Knative's representation; index 0 is the oldest).
    pub avg_concurrency: &'a [f64],
    /// Peak instantaneous concurrency per completed interval.
    pub peak_concurrency: &'a [f64],
    /// Invocation arrivals per completed interval (the representation
    /// used by IceBreaker/Aquatope-style systems).
    pub arrivals: &'a [f64],
    /// The application's configuration.
    pub config: &'a AppConfig,
    /// Pods currently allocated (warm or warming).
    pub current_pods: usize,
    /// Requests currently in flight (queued + executing).
    pub inflight: usize,
}

impl PolicyCtx<'_> {
    /// Converts a concurrency target into a pod count under the app's
    /// per-pod concurrency limit.
    pub fn pods_for_concurrency(&self, concurrency: f64) -> usize {
        if concurrency <= 0.0 {
            0
        } else {
            (concurrency / self.config.concurrency as f64).ceil() as usize
        }
    }
}

/// A quiescent stretch of scaling intervals, handed to
/// [`ScalingPolicy::tick_idle`].
///
/// The engine builds one of these when the application is provably idle
/// for `n` consecutive ticks: nothing is in flight, no arrival occurs
/// before the last tick of the stretch, and no fault plan is installed.
/// The observation series already contain the stretch's samples (the
/// first closes whatever accrued in the current interval; the rest are
/// exact zeros), and [`IdleTicks::ctx`] reconstructs the per-tick view a
/// plain `target_pods` call would have seen.
pub struct IdleTicks<'a> {
    /// Time of the first tick in the stretch (an interval boundary), ms.
    pub start_ms: u64,
    /// Scaling interval length, ms.
    pub interval_ms: u64,
    /// Number of ticks in the stretch.
    pub n: u64,
    /// The application's configuration.
    pub config: &'a AppConfig,
    /// The pod floor the engine applies to every target (0 when
    /// min-scale is not respected). While the app is quiescent no pod is
    /// protected and scale-downs are never rate-limited, so applying a
    /// target `T` that is at most the current pod count leaves exactly
    /// `max(T, min_pods)` pods.
    pub min_pods: usize,
    pub(crate) avg_concurrency: &'a [f64],
    pub(crate) peak_concurrency: &'a [f64],
    pub(crate) arrivals: &'a [f64],
    /// Series length before the stretch's samples were appended.
    pub(crate) base: usize,
}

impl IdleTicks<'_> {
    /// The exact [`PolicyCtx`] a per-tick `target_pods` call would
    /// observe at tick `i` of the stretch (series truncated to the
    /// samples visible at that tick; nothing in flight).
    pub fn ctx(&self, i: u64, current_pods: usize) -> PolicyCtx<'_> {
        let visible = self.base + i as usize + 1;
        PolicyCtx {
            now_ms: self.start_ms + i * self.interval_ms,
            interval_ms: self.interval_ms,
            avg_concurrency: &self.avg_concurrency[..visible],
            peak_concurrency: &self.peak_concurrency[..visible],
            arrivals: &self.arrivals[..visible],
            config: self.config,
            current_pods,
            inflight: 0,
        }
    }
}

/// A policy's answer for (a prefix of) an idle stretch: hold `target`
/// for the next `ticks` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdleRun {
    /// Pod target for every tick of the run.
    pub target: usize,
    /// Number of ticks the target holds (clamped by the engine to
    /// `1..=max_ticks`).
    pub ticks: u64,
}

/// A lifetime-management scaling policy.
pub trait ScalingPolicy: Send {
    /// Human-readable policy name for experiment output.
    fn name(&self) -> String;

    /// Desired number of pods for the next interval.
    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize;

    /// Advances the policy across (a prefix of) a quiescent stretch of
    /// ticks in one call — the idle fast path.
    ///
    /// Returning `IdleRun { target, ticks: k }` asserts that `k`
    /// successive [`Self::target_pods`] calls — at ticks `i..i + k` of
    /// the stretch, each observing the [`PolicyCtx`] that
    /// [`IdleTicks::ctx`] reconstructs — would all have returned
    /// `target`, and leaves the policy in exactly the state those calls
    /// would have left it in (including telemetry). `max_ticks` caps the
    /// run (compositional policies pass tighter caps than the engine
    /// does); the engine clamps `ticks` into `1..=max_ticks` either way.
    ///
    /// Overrides must not predicate their run length or state updates on
    /// `current_pods` unless the implied pod trajectory is immune to the
    /// scale-out rate limit (targets never above the current count):
    /// scale-ups may be rate-limited, in which case the engine applies
    /// the target tick-by-tick but does not re-consult the policy.
    ///
    /// The default implementation takes exactly one per-tick decision,
    /// which is byte-identical to the slow path for any policy.
    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let _ = max_ticks;
        IdleRun {
            target: self.target_pods(&idle.ctx(i, current_pods)),
            ticks: 1,
        }
    }

    /// Fault-injection statistics accumulated inside the policy itself
    /// (e.g. injected forecaster faults), merged into fleet totals by
    /// the fleet runners. Policies without internal fault injection
    /// report nothing.
    fn fault_stats(&self) -> femux_fault::FaultStats {
        femux_fault::FaultStats::default()
    }
}

/// Keep-alive policy: keeps enough pods for the peak concurrency seen in
/// the trailing `window_secs` (the classic "N-minute keep-alive" that
/// AWS/Huawei employ and prior work simulates).
#[derive(Debug, Clone)]
pub struct KeepAlivePolicy {
    window_secs: u64,
}

impl KeepAlivePolicy {
    /// Creates a keep-alive policy with the given window.
    pub fn new(window_secs: u64) -> Self {
        KeepAlivePolicy { window_secs }
    }

    /// AWS-style 5-minute keep-alive.
    pub fn five_minutes() -> Self {
        KeepAlivePolicy::new(300)
    }

    /// The 10-minute keep-alive used as IceBreaker's/Aquatope's
    /// normalization baseline.
    pub fn ten_minutes() -> Self {
        KeepAlivePolicy::new(600)
    }

    /// Huawei/Knative-style 1-minute keep-alive.
    pub fn one_minute() -> Self {
        KeepAlivePolicy::new(60)
    }
}

impl ScalingPolicy for KeepAlivePolicy {
    fn name(&self) -> String {
        format!("keep-alive-{}s", self.window_secs)
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        femux_obs::counter_add("policy.decisions", 1);
        let intervals = ((self.window_secs * 1_000) / ctx.interval_ms)
            .max(1) as usize;
        let start = ctx.peak_concurrency.len().saturating_sub(intervals);
        let peak = ctx.peak_concurrency[start..]
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
            .max(ctx.inflight as f64);
        ctx.pods_for_concurrency(peak)
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        let intervals = ((self.window_secs * 1_000) / ctx.interval_ms)
            .max(1) as usize;
        let start = ctx.peak_concurrency.len().saturating_sub(intervals);
        if ctx.peak_concurrency[start..].iter().all(|&v| v == 0.0) {
            // The trailing window shows no activity and every further
            // tick of the stretch appends another zero: the target is 0
            // for the whole remainder. Stateless, so nothing to advance
            // — except the decision counter, which the per-tick path
            // would have bumped once per skipped tick (the tick_idle
            // telemetry contract).
            femux_obs::counter_add("policy.decisions", max_ticks);
            IdleRun {
                target: 0,
                ticks: max_ticks,
            }
        } else {
            IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            }
        }
    }
}

/// Knative's default reactive policy: the average concurrency over a
/// 60-second stable window, divided by the per-pod target concurrency.
/// Scale-to-zero happens only after the window has been idle.
#[derive(Debug, Clone, Default)]
pub struct KnativeDefaultPolicy;

impl ScalingPolicy for KnativeDefaultPolicy {
    fn name(&self) -> String {
        "knative-default".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        femux_obs::counter_add("policy.decisions", 1);
        let intervals =
            (60_000 / ctx.interval_ms).max(1) as usize;
        let start = ctx.avg_concurrency.len().saturating_sub(intervals);
        let window = &ctx.avg_concurrency[start..];
        if window.is_empty() {
            return ctx.pods_for_concurrency(ctx.inflight as f64);
        }
        let avg = window.iter().sum::<f64>() / window.len() as f64;
        // Knative enters "panic mode" when short-term demand doubles the
        // stable target; model it as taking the max with the immediate
        // need.
        let need_now = ctx.inflight as f64;
        ctx.pods_for_concurrency(avg.max(need_now))
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        let intervals = (60_000 / ctx.interval_ms).max(1) as usize;
        let start = ctx.avg_concurrency.len().saturating_sub(intervals);
        if ctx.avg_concurrency[start..].iter().all(|&v| v == 0.0) {
            // An all-zero (or still empty) stable window with nothing in
            // flight decides 0, at this tick and at every later tick of
            // the stretch. Stateless, so nothing to advance except the
            // per-tick decision counter (tick_idle telemetry contract).
            femux_obs::counter_add("policy.decisions", max_ticks);
            IdleRun {
                target: 0,
                ticks: max_ticks,
            }
        } else {
            IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            }
        }
    }
}

/// A policy driven by any [`femux_forecast::Forecaster`]: forecasts the
/// next interval's average concurrency from the trailing history window
/// and provisions exactly that capacity.
pub struct ForecastPolicy {
    forecaster: Box<dyn femux_forecast::Forecaster>,
    /// Number of past intervals fed to the forecaster (paper: two hours).
    pub history: usize,
    /// Multiplicative headroom on the forecast.
    pub headroom: f64,
    /// Forecast horizon in intervals; the policy provisions for the
    /// *peak* of the horizon. The paper's forecasters predict "the
    /// incoming minute worth of traffic", so a 10-second scaling loop
    /// uses a 6-interval horizon while a 60-second loop uses 1.
    pub horizon: usize,
}

impl ForecastPolicy {
    /// Wraps a forecaster with the paper's two-hour history window and a
    /// one-interval horizon.
    pub fn new(forecaster: Box<dyn femux_forecast::Forecaster>) -> Self {
        ForecastPolicy {
            forecaster,
            history: 120,
            headroom: 1.0,
            horizon: 1,
        }
    }
}

impl ScalingPolicy for ForecastPolicy {
    fn name(&self) -> String {
        format!("forecast-{}", self.forecaster.name())
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        femux_obs::counter_add("policy.decisions", 1);
        let start =
            ctx.avg_concurrency.len().saturating_sub(self.history);
        let window = &ctx.avg_concurrency[start..];
        let pred = if window.is_empty() {
            ctx.inflight as f64
        } else {
            self.forecaster
                .forecast(window, self.horizon.max(1))
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        ctx.pods_for_concurrency(pred * self.headroom)
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        let len = ctx.avg_concurrency.len();
        let window =
            &ctx.avg_concurrency[len.saturating_sub(self.history)..];
        if self.history > 0
            && len >= self.history
            && window.iter().all(|&v| v == 0.0)
        {
            // The history window is saturated and all-zero, so it is
            // byte-identical at every tick of the stretch; forecasters
            // are pure outside `train` (a `femux_forecast::Forecaster`
            // contract), so one forecast decides the whole run. The
            // decision counter advances once per skipped tick (the
            // tick_idle telemetry contract).
            femux_obs::counter_add("policy.decisions", max_ticks);
            let pred = self
                .forecaster
                .forecast(window, self.horizon.max(1))
                .into_iter()
                .fold(0.0f64, f64::max);
            IdleRun {
                target: ctx.pods_for_concurrency(pred * self.headroom),
                ticks: max_ticks,
            }
        } else {
            IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            }
        }
    }
}

/// Always requests a fixed number of pods (useful for tests and as the
/// "provisioned concurrency" reference).
#[derive(Debug, Clone)]
pub struct FixedPolicy(pub usize);

impl ScalingPolicy for FixedPolicy {
    fn name(&self) -> String {
        format!("fixed-{}", self.0)
    }

    fn target_pods(&mut self, _ctx: &PolicyCtx<'_>) -> usize {
        femux_obs::counter_add("policy.decisions", 1);
        self.0
    }

    fn tick_idle(
        &mut self,
        _idle: &IdleTicks<'_>,
        _i: u64,
        _current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        femux_obs::counter_add("policy.decisions", max_ticks);
        IdleRun {
            target: self.0,
            ticks: max_ticks,
        }
    }
}

/// Never provisions anything proactively; every burst pays cold starts.
/// The pessimal-latency / optimal-memory endpoint for tests.
#[derive(Debug, Clone, Default)]
pub struct ZeroPolicy;

impl ScalingPolicy for ZeroPolicy {
    fn name(&self) -> String {
        "zero".into()
    }

    fn target_pods(&mut self, _ctx: &PolicyCtx<'_>) -> usize {
        femux_obs::counter_add("policy.decisions", 1);
        0
    }

    fn tick_idle(
        &mut self,
        _idle: &IdleTicks<'_>,
        _i: u64,
        _current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        femux_obs::counter_add("policy.decisions", max_ticks);
        IdleRun {
            target: 0,
            ticks: max_ticks,
        }
    }
}

//! Scaling-policy interface and built-in reference policies.
//!
//! A [`ScalingPolicy`] is consulted at every scaling interval with the
//! application's observed traffic history and returns the desired number
//! of warm pods. The simulator applies the paper's override rules on top:
//! pods are never preempted mid-execution, pods provisioned by a cold
//! start live at least to the end of the interval, and the user's
//! minimum-scale floor always holds (§4.3.5).

use femux_trace::types::AppConfig;

/// Everything a policy may inspect when making a scaling decision.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Current simulation time (an interval boundary), ms.
    pub now_ms: u64,
    /// Scaling interval length, ms.
    pub interval_ms: u64,
    /// Average concurrency observed in each completed interval
    /// (Knative's representation; index 0 is the oldest).
    pub avg_concurrency: &'a [f64],
    /// Peak instantaneous concurrency per completed interval.
    pub peak_concurrency: &'a [f64],
    /// Invocation arrivals per completed interval (the representation
    /// used by IceBreaker/Aquatope-style systems).
    pub arrivals: &'a [f64],
    /// The application's configuration.
    pub config: &'a AppConfig,
    /// Pods currently allocated (warm or warming).
    pub current_pods: usize,
    /// Requests currently in flight (queued + executing).
    pub inflight: usize,
}

impl PolicyCtx<'_> {
    /// Converts a concurrency target into a pod count under the app's
    /// per-pod concurrency limit.
    pub fn pods_for_concurrency(&self, concurrency: f64) -> usize {
        if concurrency <= 0.0 {
            0
        } else {
            (concurrency / self.config.concurrency as f64).ceil() as usize
        }
    }
}

/// A lifetime-management scaling policy.
pub trait ScalingPolicy: Send {
    /// Human-readable policy name for experiment output.
    fn name(&self) -> String;

    /// Desired number of pods for the next interval.
    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize;

    /// Fault-injection statistics accumulated inside the policy itself
    /// (e.g. injected forecaster faults), merged into fleet totals by
    /// the fleet runners. Policies without internal fault injection
    /// report nothing.
    fn fault_stats(&self) -> femux_fault::FaultStats {
        femux_fault::FaultStats::default()
    }
}

/// Keep-alive policy: keeps enough pods for the peak concurrency seen in
/// the trailing `window_secs` (the classic "N-minute keep-alive" that
/// AWS/Huawei employ and prior work simulates).
#[derive(Debug, Clone)]
pub struct KeepAlivePolicy {
    window_secs: u64,
}

impl KeepAlivePolicy {
    /// Creates a keep-alive policy with the given window.
    pub fn new(window_secs: u64) -> Self {
        KeepAlivePolicy { window_secs }
    }

    /// AWS-style 5-minute keep-alive.
    pub fn five_minutes() -> Self {
        KeepAlivePolicy::new(300)
    }

    /// The 10-minute keep-alive used as IceBreaker's/Aquatope's
    /// normalization baseline.
    pub fn ten_minutes() -> Self {
        KeepAlivePolicy::new(600)
    }

    /// Huawei/Knative-style 1-minute keep-alive.
    pub fn one_minute() -> Self {
        KeepAlivePolicy::new(60)
    }
}

impl ScalingPolicy for KeepAlivePolicy {
    fn name(&self) -> String {
        format!("keep-alive-{}s", self.window_secs)
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        let intervals = ((self.window_secs * 1_000) / ctx.interval_ms)
            .max(1) as usize;
        let start = ctx.peak_concurrency.len().saturating_sub(intervals);
        let peak = ctx.peak_concurrency[start..]
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
            .max(ctx.inflight as f64);
        ctx.pods_for_concurrency(peak)
    }
}

/// Knative's default reactive policy: the average concurrency over a
/// 60-second stable window, divided by the per-pod target concurrency.
/// Scale-to-zero happens only after the window has been idle.
#[derive(Debug, Clone, Default)]
pub struct KnativeDefaultPolicy;

impl ScalingPolicy for KnativeDefaultPolicy {
    fn name(&self) -> String {
        "knative-default".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        let intervals =
            (60_000 / ctx.interval_ms).max(1) as usize;
        let start = ctx.avg_concurrency.len().saturating_sub(intervals);
        let window = &ctx.avg_concurrency[start..];
        if window.is_empty() {
            return ctx.pods_for_concurrency(ctx.inflight as f64);
        }
        let avg = window.iter().sum::<f64>() / window.len() as f64;
        // Knative enters "panic mode" when short-term demand doubles the
        // stable target; model it as taking the max with the immediate
        // need.
        let need_now = ctx.inflight as f64;
        ctx.pods_for_concurrency(avg.max(need_now))
    }
}

/// A policy driven by any [`femux_forecast::Forecaster`]: forecasts the
/// next interval's average concurrency from the trailing history window
/// and provisions exactly that capacity.
pub struct ForecastPolicy {
    forecaster: Box<dyn femux_forecast::Forecaster>,
    /// Number of past intervals fed to the forecaster (paper: two hours).
    pub history: usize,
    /// Multiplicative headroom on the forecast.
    pub headroom: f64,
    /// Forecast horizon in intervals; the policy provisions for the
    /// *peak* of the horizon. The paper's forecasters predict "the
    /// incoming minute worth of traffic", so a 10-second scaling loop
    /// uses a 6-interval horizon while a 60-second loop uses 1.
    pub horizon: usize,
}

impl ForecastPolicy {
    /// Wraps a forecaster with the paper's two-hour history window and a
    /// one-interval horizon.
    pub fn new(forecaster: Box<dyn femux_forecast::Forecaster>) -> Self {
        ForecastPolicy {
            forecaster,
            history: 120,
            headroom: 1.0,
            horizon: 1,
        }
    }
}

impl ScalingPolicy for ForecastPolicy {
    fn name(&self) -> String {
        format!("forecast-{}", self.forecaster.name())
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        let start =
            ctx.avg_concurrency.len().saturating_sub(self.history);
        let window = &ctx.avg_concurrency[start..];
        let pred = if window.is_empty() {
            ctx.inflight as f64
        } else {
            self.forecaster
                .forecast(window, self.horizon.max(1))
                .into_iter()
                .fold(0.0f64, f64::max)
        };
        ctx.pods_for_concurrency(pred * self.headroom)
    }
}

/// Always requests a fixed number of pods (useful for tests and as the
/// "provisioned concurrency" reference).
#[derive(Debug, Clone)]
pub struct FixedPolicy(pub usize);

impl ScalingPolicy for FixedPolicy {
    fn name(&self) -> String {
        format!("fixed-{}", self.0)
    }

    fn target_pods(&mut self, _ctx: &PolicyCtx<'_>) -> usize {
        self.0
    }
}

/// Never provisions anything proactively; every burst pays cold starts.
/// The pessimal-latency / optimal-memory endpoint for tests.
#[derive(Debug, Clone, Default)]
pub struct ZeroPolicy;

impl ScalingPolicy for ZeroPolicy {
    fn name(&self) -> String {
        "zero".into()
    }

    fn target_pods(&mut self, _ctx: &PolicyCtx<'_>) -> usize {
        0
    }
}

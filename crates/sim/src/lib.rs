//! Discrete-event serverless platform simulator.
//!
//! The paper's primary evaluation methodology (§5) is trace-driven
//! simulation of lifetime-management policies at production scale. This
//! crate provides that substrate:
//!
//! - [`engine`]: per-application replay with pods, per-pod concurrency,
//!   cold-start latency, interval-based scaling, the paper's override
//!   rules (no mid-execution preemption; cold-start pods protected to
//!   the interval end), minimum-scale floors, and AWS-style scale-out
//!   rate limits. Produces [`femux_rum::CostRecord`]s.
//! - [`policy`]: the [`policy::ScalingPolicy`] trait plus reference
//!   policies — fixed keep-alive (1/5/10 min), Knative's default
//!   reactive autoscaling, and a generic forecaster-driven policy.
//! - [`fleet`]: running a policy factory over a whole trace.
//! - [`cluster`]: an optional node model (finite core/memory capacity,
//!   pluggable placement, memory-pressure eviction, node fault domains)
//!   enabled via [`SimConfig::cluster`]; `None` keeps the historical
//!   free-floating pod accounting bit-for-bit.
//!
//! Fault injection (pod crashes, cold-start stragglers, actuation
//! delay/drop, report loss) is opt-in via [`SimConfig::faults`] and
//! fully deterministic; see the `femux-fault` crate for the draw-order
//! contract.

pub mod cluster;
pub mod engine;
pub mod equiv;
pub mod fleet;
pub mod policy;
pub mod tickwise;

pub use cluster::{
    BestFit, Cluster, ClusterConfig, ClusterOutcome, NodeConfig,
    PlacementKind, PlacementPolicy, PodRequest, ReleaseReason, RoundRobin,
};
pub use engine::{
    simulate_app, simulate_app_with_stats, EngineStats, ScaleEvent,
    ScaleLimit, SimConfig, SimResult,
};
pub use fleet::{
    run_fleet, run_fleet_auto, run_fleet_detailed, run_fleet_parallel,
    AppCostBreakdown, FleetOutcome,
};
pub use policy::{
    FixedPolicy, ForecastPolicy, IdleRun, IdleTicks, KeepAlivePolicy,
    KnativeDefaultPolicy, PolicyCtx, ScalingPolicy, ZeroPolicy,
};
pub use equiv::assert_tick_idle_equivalence;
pub use tickwise::simulate_app_tickwise;

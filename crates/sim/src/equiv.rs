//! `tick_idle` equivalence harness.
//!
//! [`crate::policy::ScalingPolicy::tick_idle`] lets a policy answer an
//! idle stretch in one call instead of once per tick. Its contract is
//! strict: the fast path must leave the policy in the same state and
//! produce the same decisions as calling `target_pods` every tick —
//! otherwise the event-queue engine and the frozen per-tick reference
//! diverge and every downstream number silently drifts.
//!
//! [`assert_tick_idle_equivalence`] is the machine-checked form of that
//! contract: it replays a battery of idle-heavy scenarios through both
//! engines and asserts the full [`SimResult`] is `Debug`-identical.
//! The `femux-audit` `contract-impl` rule requires every policy that
//! overrides `tick_idle` to be registered in a call to this function
//! (the workspace test lives in `tests/tick_idle_equivalence.rs`), so
//! adding an idle fast path without proving it equivalent fails CI.

use femux_trace::types::{AppId, AppRecord, Invocation, WorkloadKind};

use crate::engine::{simulate_app, SimConfig};
use crate::policy::ScalingPolicy;
use crate::tickwise::simulate_app_tickwise;

/// One synthetic scenario: `(name, app, span_ms)`.
fn scenarios() -> Vec<(&'static str, AppRecord, u64)> {
    const HOUR: u64 = 3_600_000;
    let inv = |start_ms: u64, duration_ms: u32| Invocation {
        start_ms,
        duration_ms,
        delay_ms: 0,
    };
    let mut out = Vec::new();

    // Busy opening, then five-plus idle hours: saturates every
    // policy's history window with zeros so the idle fast path
    // engages, then nothing disturbs it until the span ends.
    let mut app = AppRecord::new(AppId(1), WorkloadKind::Application);
    for k in 0..60 {
        app.invocations.push(inv(k * 30_000, 500));
    }
    out.push(("busy-then-silent", app, 6 * HOUR));

    // Sparse heartbeat: one short request every 20 minutes. The idle
    // fast path starts and stops around each arrival, exercising the
    // re-entry bookkeeping.
    let mut app = AppRecord::new(AppId(2), WorkloadKind::Function);
    app.config.concurrency = 1;
    for k in 0..18 {
        app.invocations.push(inv(k * 20 * 60_000, 200));
    }
    out.push(("sparse-heartbeat", app, 6 * HOUR));

    // Idle bracket: silence, a concurrent burst mid-span, silence.
    // Fast-forwarding must hand control back exactly at the burst.
    let mut app = AppRecord::new(AppId(3), WorkloadKind::Application);
    for k in 0..40 {
        app.invocations.push(inv(3 * HOUR + k * 50, 2_000));
    }
    out.push(("idle-burst-idle", app, 6 * HOUR));

    // Min-scale floor with no traffic at all: the longest possible
    // idle run, held above zero by configuration.
    let mut app = AppRecord::new(AppId(4), WorkloadKind::Application);
    app.config.min_scale = 1;
    out.push(("all-idle-min-scale", app, 6 * HOUR));

    // Empty app, scale-to-zero: the degenerate all-idle run.
    let app = AppRecord::new(AppId(5), WorkloadKind::Function);
    out.push(("all-idle-empty", app, 6 * HOUR));

    out
}

/// Asserts that the policy built by `mk` makes byte-identical
/// decisions through the event-queue engine (idle fast path via
/// `tick_idle`) and the frozen per-tick reference engine, across the
/// idle-heavy scenario battery and both evaluation intervals.
///
/// `mk` is called once per engine per case so each run starts from a
/// fresh policy (policies are stateful).
///
/// # Panics
///
/// Panics with the scenario, interval and first divergence when the
/// fast path is not equivalent.
pub fn assert_tick_idle_equivalence(
    name: &str,
    mk: &mut dyn FnMut() -> Box<dyn ScalingPolicy>,
) {
    for (scenario, app, span_ms) in scenarios() {
        for interval_ms in [60_000, 10_000] {
            let cfg = SimConfig {
                interval_ms,
                record_delays: true,
                ..SimConfig::default()
            };
            let fast = simulate_app(&app, mk().as_mut(), span_ms, &cfg);
            let slow =
                simulate_app_tickwise(&app, mk().as_mut(), span_ms, &cfg);
            assert_eq!(
                format!("{fast:?}"),
                format!("{slow:?}"),
                "policy `{name}`: tick_idle fast path diverges from \
                 per-tick decisions (scenario `{scenario}`, interval \
                 {interval_ms} ms)",
            );
        }
    }
}

//! Workspace symbol table.
//!
//! Phase 1 of the v2 pipeline extracts per-file *function facts* — one
//! [`FnInfo`] per function definition — inside the same
//! `femux_par::par_map` pass that lexes and parses (so the expensive
//! work parallelises and stays byte-stable at any `FEMUX_THREADS`).
//! Phase 2 merges them, in sorted file order, into a
//! [`WorkspaceIndex`]: a flat node table plus the name-resolution maps
//! the call graph needs. All maps are `BTreeMap`/`BTreeSet` so
//! iteration order never depends on hashing or thread count.
//!
//! Shim crates are *not* indexed: they impersonate external crates
//! (`crossbeam`, `criterion`, ...), so drawing call edges into them
//! would make every `Mutex::lock` look like a workspace call. They
//! remain covered by the per-file hygiene rules.

use std::collections::{BTreeMap, BTreeSet};

use crate::findings::{CrateClass, FileKind};
use crate::lexer::{Tok, TokKind};
use crate::parser::{Ast, Expr, Item, ItemKind};

/// Well-known function the equivalence-test registry keys on: a call
/// to it registers every type named in its argument tokens.
pub const EQUIVALENCE_REGISTRAR: &str = "assert_tick_idle_equivalence";

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Path segments for free/path calls; empty for method calls.
    pub path: Vec<String>,
    /// Method name for `.m(..)` calls.
    pub method: Option<String>,
    /// 1-based position of the callee name token.
    pub line: u32,
    /// Column of the callee name token.
    pub col: u32,
    /// True when the call happens inside a closure literal.
    pub in_closure: bool,
}

impl CallRef {
    /// Display text of the callee (`a::b::c` or `.m`).
    pub fn display(&self) -> String {
        match &self.method {
            Some(m) => format!(".{m}"),
            None => self.path.join("::"),
        }
    }
}

/// A closure passed (directly) to a `spawn(..)` call, with everything
/// the worker-flush contract check needs.
#[derive(Debug, Clone)]
pub struct SpawnClosure {
    /// Position of the closure's opening `|`.
    pub line: u32,
    /// Column of the opening `|`.
    pub col: u32,
    /// Calls made anywhere inside the closure body.
    pub calls: Vec<CallRef>,
    /// Identifier texts appearing in the closure body (for drop-guard
    /// detection: instantiating a guard type counts as flushing).
    pub idents: BTreeSet<String>,
}

/// Per-file facts about one function definition.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Implemented type when the fn is an impl/trait method.
    pub self_ty: Option<String>,
    /// Trait name (last path segment) for trait-impl methods, or the
    /// trait a default method body lives in.
    pub trait_name: Option<String>,
    /// True for methods declared inside a `trait { .. }` block (as
    /// opposed to an `impl Trait for Type` block).
    pub in_trait_decl: bool,
    /// Declared with `pub`.
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` / `#[test]` item.
    pub cfg_test: bool,
    /// Position of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Token index range of the body (`{`..`}` inclusive range end).
    pub body: Option<(usize, usize)>,
    /// All calls in the body, in source order.
    pub calls: Vec<CallRef>,
    /// Closures passed to `spawn(..)` calls in the body.
    pub spawn_closures: Vec<SpawnClosure>,
    /// Forbidden wall-clock/entropy identifiers in the body:
    /// `(identifier, line, col)`.
    pub wall: Vec<(String, u32, u32)>,
}

/// Everything extracted from one file for the workspace phase.
#[derive(Debug, Default, Clone)]
pub struct FileFacts {
    /// Function definitions, in source order.
    pub fns: Vec<FnInfo>,
    /// Types registered via [`EQUIVALENCE_REGISTRAR`] calls.
    pub registered: BTreeSet<String>,
}

/// Extracts [`FileFacts`] from a parsed file. Runs inside the
/// parallel per-file pass.
pub fn extract(ast: &Ast, toks: &[Tok]) -> FileFacts {
    let mut facts = FileFacts::default();
    walk_items(&ast.items, None, None, false, false, toks, &mut facts);
    facts
}

fn walk_items(
    items: &[Item],
    self_ty: Option<&str>,
    trait_name: Option<&str>,
    in_trait_decl: bool,
    in_test: bool,
    toks: &[Tok],
    facts: &mut FileFacts,
) {
    for it in items {
        let test = in_test || it.cfg_test;
        match &it.kind {
            ItemKind::Fn(f) => {
                let mut info = FnInfo {
                    name: f.name.clone(),
                    self_ty: self_ty.map(str::to_string),
                    trait_name: trait_name.map(str::to_string),
                    in_trait_decl,
                    is_pub: f.is_pub,
                    cfg_test: test,
                    line: f.line,
                    col: f.col,
                    body: f.body.as_ref().map(|b| (b.start, b.end)),
                    calls: Vec::new(),
                    spawn_closures: Vec::new(),
                    wall: Vec::new(),
                };
                if let Some(body) = &f.body {
                    collect_calls(
                        &body.exprs,
                        false,
                        toks,
                        &mut info.calls,
                        &mut info.spawn_closures,
                        &mut facts.registered,
                    );
                    for t in &toks[body.start..body.end.min(toks.len())] {
                        if t.kind == TokKind::Ident
                            && crate::rules::wallclock::FORBIDDEN
                                .contains(&t.text.as_str())
                        {
                            info.wall.push((t.text.clone(), t.line, t.col));
                        }
                    }
                }
                facts.fns.push(info);
            }
            ItemKind::Impl(ib) => walk_items(
                &ib.items,
                Some(&ib.self_ty),
                ib.trait_path
                    .as_ref()
                    .and_then(|p| p.last())
                    .map(String::as_str),
                false,
                test,
                toks,
                facts,
            ),
            // Default trait methods index as methods of the trait
            // itself, so `.m()` widening reaches their bodies.
            ItemKind::Trait(tb) => walk_items(
                &tb.items,
                Some(&tb.name),
                Some(&tb.name),
                true,
                test,
                toks,
                facts,
            ),
            ItemKind::Mod(m) => {
                walk_items(&m.items, None, None, false, test, toks, facts)
            }
            ItemKind::Other => {}
        }
    }
}

/// Flattens a body's expression tree into [`CallRef`]s, spawn-closure
/// facts and equivalence registrations.
fn collect_calls(
    exprs: &[Expr],
    in_closure: bool,
    toks: &[Tok],
    calls: &mut Vec<CallRef>,
    spawns: &mut Vec<SpawnClosure>,
    registered: &mut BTreeSet<String>,
) {
    for e in exprs {
        match e {
            Expr::Call(c) => {
                calls.push(CallRef {
                    path: c.path.clone(),
                    method: None,
                    line: c.line,
                    col: c.col,
                    in_closure,
                });
                let name = c.path.last().map(String::as_str);
                if name == Some(EQUIVALENCE_REGISTRAR) {
                    register_idents(toks, c.args_start, c.args_end, registered);
                }
                if name == Some("spawn") {
                    note_spawn_closures(&c.args, toks, spawns, registered);
                }
                collect_calls(&c.args, in_closure, toks, calls, spawns, registered);
            }
            Expr::Method(m) => {
                calls.push(CallRef {
                    path: Vec::new(),
                    method: Some(m.method.clone()),
                    line: m.line,
                    col: m.col,
                    in_closure,
                });
                if m.method == "spawn" {
                    note_spawn_closures(&m.args, toks, spawns, registered);
                }
                collect_calls(&m.args, in_closure, toks, calls, spawns, registered);
            }
            Expr::Closure(cl) => {
                collect_calls(
                    &cl.body.exprs,
                    true,
                    toks,
                    calls,
                    spawns,
                    registered,
                );
            }
        }
    }
}

fn note_spawn_closures(
    args: &[Expr],
    toks: &[Tok],
    spawns: &mut Vec<SpawnClosure>,
    registered: &mut BTreeSet<String>,
) {
    for a in args {
        let Expr::Closure(cl) = a else { continue };
        let mut calls = Vec::new();
        let mut inner_spawns = Vec::new();
        collect_calls(
            &cl.body.exprs,
            true,
            toks,
            &mut calls,
            &mut inner_spawns,
            registered,
        );
        let idents = toks[cl.body.start..cl.body.end.min(toks.len())]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        spawns.push(SpawnClosure {
            line: cl.line,
            col: cl.col,
            calls,
            idents,
        });
        spawns.extend(inner_spawns);
    }
}

fn register_idents(
    toks: &[Tok],
    from: usize,
    to: usize,
    registered: &mut BTreeSet<String>,
) {
    for t in &toks[from.min(toks.len())..to.min(toks.len())] {
        if t.kind == TokKind::Ident {
            registered.insert(t.text.clone());
        }
    }
}

/// Classification facts one node carries out of its source file.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the scan order.
    pub file: usize,
    /// Workspace-relative path of the owning file.
    pub rel_path: String,
    /// Crate directory name.
    pub crate_name: String,
    /// Crate classification.
    pub class: CrateClass,
    /// File target kind.
    pub kind: FileKind,
    /// The per-file facts.
    pub info: FnInfo,
}

impl FnNode {
    /// `Type::name` / `name` display form.
    pub fn display(&self) -> String {
        match &self.info.self_ty {
            Some(ty) => format!("{ty}::{}", self.info.name),
            None => self.info.name.clone(),
        }
    }

    /// True when interprocedural traversal may pass through this
    /// node: library/binary production code only.
    pub fn traversable(&self) -> bool {
        !self.info.cfg_test
            && matches!(self.kind, FileKind::Lib | FileKind::Bin)
    }
}

/// A file's view the index needs (filled by the engine).
pub struct IndexedFile<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// Crate directory name.
    pub crate_name: &'a str,
    /// Crate classification.
    pub class: CrateClass,
    /// File target kind.
    pub kind: FileKind,
    /// Code tokens (for token-range checks in workspace rules).
    pub toks: &'a [Tok],
    /// Extracted facts.
    pub facts: &'a FileFacts,
}

/// The merged workspace symbol table.
pub struct WorkspaceIndex<'a> {
    /// The scanned files, in sorted path order.
    pub files: Vec<IndexedFile<'a>>,
    /// All indexed fn nodes (shims excluded), in file order.
    pub nodes: Vec<FnNode>,
    /// Free fns by name.
    pub free_by_name: BTreeMap<String, Vec<usize>>,
    /// Free fns by (crate, name).
    pub free_by_crate: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by name (the conservative widening pool).
    pub methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Methods by (self type, name).
    pub methods_by_ty: BTreeMap<(String, String), Vec<usize>>,
    /// Crate lib-name aliases (`femux_sim` → `sim`, `femux` → `core`).
    pub crate_alias: BTreeMap<String, String>,
    /// Types registered as having a tick_idle equivalence test.
    pub registered: BTreeSet<String>,
}

impl<'a> WorkspaceIndex<'a> {
    /// Builds the index from files already scanned (and sorted by
    /// path). Sequential by design: phase 1 did the parallel work.
    pub fn build(files: Vec<IndexedFile<'a>>) -> Self {
        let mut idx = WorkspaceIndex {
            files,
            nodes: Vec::new(),
            free_by_name: BTreeMap::new(),
            free_by_crate: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            methods_by_ty: BTreeMap::new(),
            crate_alias: BTreeMap::new(),
            registered: BTreeSet::new(),
        };
        idx.crate_alias
            .insert("femux".to_string(), "core".to_string());
        idx.crate_alias
            .insert("femux_repro".to_string(), String::new());
        for (fi, file) in idx.files.iter().enumerate() {
            if file.class == CrateClass::Shim {
                continue;
            }
            if !file.crate_name.is_empty() {
                idx.crate_alias.insert(
                    format!("femux_{}", file.crate_name.replace('-', "_")),
                    file.crate_name.to_string(),
                );
            }
            idx.registered
                .extend(file.facts.registered.iter().cloned());
            for info in &file.facts.fns {
                let id = idx.nodes.len();
                let node = FnNode {
                    file: fi,
                    rel_path: file.rel_path.to_string(),
                    crate_name: file.crate_name.to_string(),
                    class: file.class,
                    kind: file.kind,
                    info: info.clone(),
                };
                match &node.info.self_ty {
                    Some(ty) => {
                        idx.methods_by_name
                            .entry(node.info.name.clone())
                            .or_default()
                            .push(id);
                        idx.methods_by_ty
                            .entry((ty.clone(), node.info.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => {
                        idx.free_by_name
                            .entry(node.info.name.clone())
                            .or_default()
                            .push(id);
                        idx.free_by_crate
                            .entry((
                                node.crate_name.clone(),
                                node.info.name.clone(),
                            ))
                            .or_default()
                            .push(id);
                    }
                }
                idx.nodes.push(node);
            }
        }
        idx
    }

    /// All nodes named `name` with a given self type.
    pub fn methods_of(&self, ty: &str, name: &str) -> &[usize] {
        self.methods_by_ty
            .get(&(ty.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }
}

//! The audit driver: lex → rules → suppression matching → merge.
//!
//! Files are scanned in parallel with `femux_par::par_map` — the same
//! order-preserving substrate the audit guards — so the merged result
//! is identical at every thread count. Suppression matching is
//! per-file and strictly one-to-one: an `audit:allow` annotation
//! suppresses at most one finding of its rule on its target line.

use std::path::Path;

use crate::allow::parse_allows;
use crate::findings::{
    CrateClass, FileKind, Finding, MalformedAllow, Suppressed, UnusedAllow,
};
use crate::lexer::{lex, test_regions};
use crate::rules::{all_rules, FileContext, RuleOutput};
use crate::workspace::{discover, SourceFile};

/// Audit result for one file.
#[derive(Debug, Default)]
pub struct FileAudit {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Findings suppressed by annotations.
    pub allowed: Vec<Suppressed>,
    /// Annotations that suppressed nothing.
    pub unused_allows: Vec<UnusedAllow>,
    /// Annotations that failed to parse.
    pub malformed_allows: Vec<MalformedAllow>,
}

/// Audit result for a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceAudit {
    /// Registered rule ids, in reporting order.
    pub rules: Vec<&'static str>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings, same order.
    pub allowed: Vec<Suppressed>,
    /// Unused annotations.
    pub unused_allows: Vec<UnusedAllow>,
    /// Malformed annotations.
    pub malformed_allows: Vec<MalformedAllow>,
}

/// Audits one Rust source text.
pub fn audit_source(
    rel_path: &str,
    crate_name: &str,
    class: CrateClass,
    kind: FileKind,
    source: &str,
) -> FileAudit {
    let lexed = lex(source);
    let tests = test_regions(&lexed.toks);
    let lines: Vec<&str> = source.lines().collect();
    let cx = FileContext {
        rel_path,
        crate_name,
        class,
        kind,
        toks: &lexed.toks,
        lines: &lines,
        tests: &tests,
    };
    let mut out = RuleOutput::new();
    for rule in all_rules() {
        rule.check_source(&cx, &mut out);
    }
    let findings = out.into_findings(&lines);
    let (allows, bad) = parse_allows(&lexed.comments, &lexed.toks);
    let mut audit = apply_allows(rel_path, findings, allows);
    audit.malformed_allows = bad
        .into_iter()
        .map(|b| MalformedAllow {
            file: rel_path.to_string(),
            line: b.line,
            message: b.message,
        })
        .collect();
    audit
}

/// Audits one `Cargo.toml` text.
pub fn audit_manifest(rel_path: &str, text: &str) -> FileAudit {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = RuleOutput::new();
    for rule in all_rules() {
        rule.check_manifest(rel_path, text, &mut out);
    }
    FileAudit {
        findings: out.into_findings(&lines),
        ..FileAudit::default()
    }
}

/// Matches findings against annotations. Each annotation suppresses
/// at most one finding of its rule on its target line.
fn apply_allows(
    rel_path: &str,
    findings: Vec<Finding>,
    allows: Vec<crate::allow::Allow>,
) -> FileAudit {
    let mut audit = FileAudit::default();
    let mut used = vec![false; allows.len()];
    for f in findings {
        let slot = allows.iter().enumerate().position(|(i, a)| {
            !used[i] && a.rule == f.rule && a.target_line == f.line
        });
        match slot {
            Some(i) => {
                used[i] = true;
                audit.allowed.push(Suppressed {
                    finding: f,
                    reason: allows[i].reason.clone(),
                });
            }
            None => audit.findings.push(f),
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if !used[i] {
            audit.unused_allows.push(UnusedAllow {
                file: rel_path.to_string(),
                line: a.comment_line,
                rule: a.rule.clone(),
            });
        }
    }
    audit
}

/// Audits every file under `root` (a workspace root).
pub fn scan_workspace(root: &Path) -> Result<WorkspaceAudit, String> {
    let files = discover(root)?;
    femux_obs::counter_add("audit.scans", 1);
    femux_obs::counter_add("audit.files_scanned", files.len() as u64);
    let per_file: Vec<Result<FileAudit, String>> =
        femux_par::par_map(&files, |_, file| audit_file(file));
    let mut audit = WorkspaceAudit {
        rules: all_rules().iter().map(|r| r.id()).collect(),
        files_scanned: files.len(),
        ..WorkspaceAudit::default()
    };
    for result in per_file {
        let fa = result?;
        audit.findings.extend(fa.findings);
        audit.allowed.extend(fa.allowed);
        audit.unused_allows.extend(fa.unused_allows);
        audit.malformed_allows.extend(fa.malformed_allows);
    }
    // `discover` returns files sorted by path and each per-file list
    // is position-sorted, so the merge is already ordered; sort again
    // defensively so report stability never rests on walk order.
    audit
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(
            &b.file, b.line, b.col, b.rule,
        )));
    audit.allowed.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, a.finding.col).cmp(&(
            &b.finding.file,
            b.finding.line,
            b.finding.col,
        ))
    });
    Ok(audit)
}

fn audit_file(file: &SourceFile) -> Result<FileAudit, String> {
    let text = std::fs::read_to_string(&file.abs_path)
        .map_err(|e| format!("read {}: {e}", file.rel_path))?;
    Ok(if file.is_manifest {
        audit_manifest(&file.rel_path, &text)
    } else {
        audit_source(
            &file.rel_path,
            &file.crate_name,
            file.class,
            file.kind,
            &text,
        )
    })
}

//! The audit driver: lex → parse → rules → index → interprocedural
//! rules → suppression matching → merge.
//!
//! The v2 pipeline has two analysis tiers:
//!
//! 1. **Per-file (parallel)**: each file is lexed, parsed into the
//!    [`crate::parser`] AST and reduced to [`crate::symbols`] function
//!    facts inside one `femux_par::par_map` pass — the same
//!    order-preserving substrate the audit guards — and the *local*
//!    rules run right there. Output order is positional, so the merge
//!    is identical at every thread count.
//! 2. **Workspace (sequential)**: the per-file facts merge into a
//!    [`crate::symbols::WorkspaceIndex`] and a
//!    [`crate::callgraph::CallGraph`], over which the interprocedural
//!    rules (wallclock reachability, contract-impl completeness) run.
//!    Everything here is `BTreeMap`-ordered; no parallelism, no
//!    nondeterminism.
//!
//! Suppression matching happens *after* both tiers, per file, and is
//! strictly one-to-one: an `audit:allow` annotation suppresses at most
//! one finding of its rule inside its target range.

use std::path::Path;

use crate::allow::{parse_allows, Allow};
use crate::callgraph::CallGraph;
use crate::findings::{
    CrateClass, FileKind, Finding, MalformedAllow, Suppressed, UnusedAllow,
};
use crate::lexer::{lex, test_regions, Tok};
use crate::parser::parse;
use crate::rules::{
    all_rules, workspace_rules, FileContext, RuleOutput, WorkspaceOutput,
};
use crate::symbols::{extract, FileFacts, IndexedFile, WorkspaceIndex};
use crate::workspace::{discover, SourceFile};

/// Audit result for one file.
#[derive(Debug, Default)]
pub struct FileAudit {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Findings suppressed by annotations.
    pub allowed: Vec<Suppressed>,
    /// Annotations that suppressed nothing.
    pub unused_allows: Vec<UnusedAllow>,
    /// Annotations that failed to parse.
    pub malformed_allows: Vec<MalformedAllow>,
}

/// Audit result for a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceAudit {
    /// Registered rule ids, in reporting order (local rules first,
    /// then interprocedural).
    pub rules: Vec<&'static str>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Suppressed findings, same order.
    pub allowed: Vec<Suppressed>,
    /// Unused annotations.
    pub unused_allows: Vec<UnusedAllow>,
    /// Malformed annotations.
    pub malformed_allows: Vec<MalformedAllow>,
}

/// One input to the pipeline: classification plus source text. The
/// in-memory mirror of [`SourceFile`], so fixtures can assemble
/// multi-file corpora without touching disk.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Crate directory name (`""` for the root facade).
    pub crate_name: String,
    /// Crate classification.
    pub class: CrateClass,
    /// Target kind.
    pub kind: FileKind,
    /// True for `Cargo.toml` texts.
    pub is_manifest: bool,
    /// The source text.
    pub text: String,
}

/// Phase-1 output for one file.
struct FileScan {
    spec: SourceSpec,
    toks: Vec<Tok>,
    facts: FileFacts,
    local_findings: Vec<Finding>,
    allows: Vec<Allow>,
    malformed_allows: Vec<MalformedAllow>,
}

/// Lex + parse + local rules for one input. Runs inside `par_map`.
fn scan_file(spec: &SourceSpec) -> FileScan {
    if spec.is_manifest {
        let lines: Vec<&str> = spec.text.lines().collect();
        let mut out = RuleOutput::new();
        for rule in all_rules() {
            rule.check_manifest(&spec.rel_path, &spec.text, &mut out);
        }
        return FileScan {
            spec: spec.clone(),
            toks: Vec::new(),
            facts: FileFacts::default(),
            local_findings: out.into_findings(&lines),
            allows: Vec::new(),
            malformed_allows: Vec::new(),
        };
    }
    let lexed = lex(&spec.text);
    let tests = test_regions(&lexed.toks);
    let ast = parse(&lexed.toks);
    let lines: Vec<&str> = spec.text.lines().collect();
    let cx = FileContext {
        rel_path: &spec.rel_path,
        crate_name: &spec.crate_name,
        class: spec.class,
        kind: spec.kind,
        toks: &lexed.toks,
        lines: &lines,
        tests: &tests,
        ast: &ast,
    };
    let mut out = RuleOutput::new();
    for rule in all_rules() {
        rule.check_source(&cx, &mut out);
    }
    let (allows, bad) = parse_allows(&lexed.comments, &lexed.toks);
    FileScan {
        facts: extract(&ast, &lexed.toks),
        toks: lexed.toks,
        local_findings: out.into_findings(&lines),
        allows,
        malformed_allows: bad
            .into_iter()
            .map(|b| MalformedAllow {
                file: spec.rel_path.clone(),
                line: b.line,
                message: b.message,
            })
            .collect(),
        spec: spec.clone(),
    }
}

/// Audits one Rust source text with the local rules (the per-file
/// tier; interprocedural rules need a corpus — see [`audit_sources`]).
pub fn audit_source(
    rel_path: &str,
    crate_name: &str,
    class: CrateClass,
    kind: FileKind,
    source: &str,
) -> FileAudit {
    let scan = scan_file(&SourceSpec {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        class,
        kind,
        is_manifest: false,
        text: source.to_string(),
    });
    let mut audit =
        apply_allows(rel_path, scan.local_findings, scan.allows);
    audit.malformed_allows = scan.malformed_allows;
    audit
}

/// Audits one `Cargo.toml` text.
pub fn audit_manifest(rel_path: &str, text: &str) -> FileAudit {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = RuleOutput::new();
    for rule in all_rules() {
        rule.check_manifest(rel_path, text, &mut out);
    }
    FileAudit {
        findings: out.into_findings(&lines),
        ..FileAudit::default()
    }
}

/// Matches findings against annotations. Each annotation suppresses
/// at most one finding of its rule inside its target range.
fn apply_allows(
    rel_path: &str,
    findings: Vec<Finding>,
    allows: Vec<Allow>,
) -> FileAudit {
    let mut audit = FileAudit::default();
    let mut used = vec![false; allows.len()];
    for f in findings {
        let slot = allows.iter().enumerate().position(|(i, a)| {
            !used[i] && a.rule == f.rule && a.covers(f.line)
        });
        match slot {
            Some(i) => {
                used[i] = true;
                audit.allowed.push(Suppressed {
                    finding: f,
                    reason: allows[i].reason.clone(),
                });
            }
            None => audit.findings.push(f),
        }
    }
    for (i, a) in allows.iter().enumerate() {
        if !used[i] {
            audit.unused_allows.push(UnusedAllow {
                file: rel_path.to_string(),
                line: a.comment_line,
                rule: a.rule.clone(),
            });
        }
    }
    audit
}

/// Runs the full two-tier pipeline over in-memory sources. Inputs are
/// sorted by path first, mirroring [`scan_workspace`].
pub fn audit_sources(mut specs: Vec<SourceSpec>) -> WorkspaceAudit {
    specs.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    let scans: Vec<FileScan> =
        femux_par::par_map(&specs, |_, spec| scan_file(spec));
    assemble(scans)
}

/// Audits every file under `root` (a workspace root).
pub fn scan_workspace(root: &Path) -> Result<WorkspaceAudit, String> {
    let files = discover(root)?;
    femux_obs::counter_add("audit.scans", 1);
    femux_obs::counter_add("audit.files_scanned", files.len() as u64);
    let scans: Vec<Result<FileScan, String>> =
        femux_par::par_map(&files, |_, file| {
            let spec = load(file)?;
            Ok(scan_file(&spec))
        });
    let scans = scans.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(assemble(scans))
}

fn load(file: &SourceFile) -> Result<SourceSpec, String> {
    let text = std::fs::read_to_string(&file.abs_path)
        .map_err(|e| format!("read {}: {e}", file.rel_path))?;
    Ok(SourceSpec {
        rel_path: file.rel_path.clone(),
        crate_name: file.crate_name.clone(),
        class: file.class,
        kind: file.kind,
        is_manifest: file.is_manifest,
        text,
    })
}

/// Phase 2–4: index, interprocedural rules, suppression, merge.
fn assemble(scans: Vec<FileScan>) -> WorkspaceAudit {
    let views: Vec<IndexedFile> = scans
        .iter()
        .map(|s| IndexedFile {
            rel_path: &s.spec.rel_path,
            crate_name: &s.spec.crate_name,
            class: s.spec.class,
            kind: s.spec.kind,
            toks: &s.toks,
            facts: &s.facts,
        })
        .collect();
    let index = WorkspaceIndex::build(views);
    let graph = CallGraph::build(&index);
    let mut wout = WorkspaceOutput::new(
        scans.iter().map(|s| s.spec.rel_path.clone()).collect(),
    );
    for rule in workspace_rules() {
        rule.check(&index, &graph, &mut wout);
    }
    drop(index);
    let mut audit = WorkspaceAudit {
        rules: all_rules()
            .iter()
            .map(|r| r.id())
            .chain(workspace_rules().iter().map(|r| r.id()))
            .collect(),
        files_scanned: scans.len(),
        ..WorkspaceAudit::default()
    };
    for (scan, out) in scans.into_iter().zip(wout.into_outputs()) {
        let lines: Vec<&str> = scan.spec.text.lines().collect();
        let mut findings = scan.local_findings;
        findings.extend(out.into_findings(&lines));
        findings.sort_by(|a, b| {
            (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule))
        });
        let mut fa =
            apply_allows(&scan.spec.rel_path, findings, scan.allows);
        fa.malformed_allows = scan.malformed_allows;
        audit.findings.extend(fa.findings);
        audit.allowed.extend(fa.allowed);
        audit.unused_allows.extend(fa.unused_allows);
        audit.malformed_allows.extend(fa.malformed_allows);
    }
    // Inputs are path-sorted and each per-file list position-sorted,
    // so the merge is already ordered; sort again defensively so
    // report stability never rests on walk order.
    audit
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(
            &b.file, b.line, b.col, b.rule,
        )));
    audit.allowed.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, a.finding.col).cmp(&(
            &b.finding.file,
            b.finding.line,
            b.finding.col,
        ))
    });
    audit
}

//! `audit:allow` suppression annotations.
//!
//! Grammar (inside any comment):
//!
//! ```text
//! audit:allow(<rule-id>, reason = "<why this site is sound>")
//! ```
//!
//! The reason is mandatory — an unexplained suppression is worth
//! nothing in review. An annotation targets a line *range*:
//!
//! - a *trailing* comment targets its own line only;
//! - an *own-line* comment targets the statement or expression that
//!   starts on the next code line, through its end — the first `;` or
//!   `,` at bracket depth zero, the close of its first brace group, or
//!   the close of the enclosing group, whichever comes first. An
//!   annotation above a call whose arguments span five lines therefore
//!   binds to all five, not just the first token's line.
//!
//! Each annotation suppresses **at most one** finding of its rule in
//! the target range. Two violations need two annotations; this keeps
//! suppressions auditable one-for-one. Annotations that suppress
//! nothing are reported as *unused* so stale ones cannot accumulate
//! silently.

use crate::lexer::{Comment, Tok, TokKind};

/// One parsed `audit:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// First line whose findings this annotation may suppress.
    pub target_line: u32,
    /// Last line of the target range (== `target_line` for trailing
    /// comments and single-line statements).
    pub target_end: u32,
    /// Line the annotation itself is written on.
    pub comment_line: u32,
}

impl Allow {
    /// True when the annotation's range covers `line`.
    pub fn covers(&self, line: u32) -> bool {
        line >= self.target_line && line <= self.target_end
    }
}

/// A malformed annotation (reported, never silently dropped).
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// Line of the malformed annotation.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Parses all annotations in `comments`, resolving own-line comments
/// to the next code line using `toks`.
pub fn parse_allows(
    comments: &[Comment],
    toks: &[Tok],
) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("audit:allow") else {
            continue;
        };
        let rest = &c.text[pos + "audit:allow".len()..];
        // Prose that merely *mentions* the marker — docs, this very
        // module — is not an annotation: a real one opens a
        // parenthesis immediately and names a kebab-case rule id;
        // grammar examples with `<rule-id>` placeholders fall out via
        // the charset check.
        if !rest.trim_start().starts_with('(') {
            continue;
        }
        if !rule_id_follows(rest) {
            continue;
        }
        match parse_one(rest) {
            Ok((rule, reason)) => {
                let (target_line, target_end) = if c.own_line {
                    let start = toks
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line);
                    (start, statement_end(toks, start))
                } else {
                    (c.line, c.line)
                };
                allows.push(Allow {
                    rule,
                    reason,
                    target_line,
                    target_end,
                    comment_line: c.line,
                });
            }
            Err(message) => bad.push(BadAllow {
                line: c.line,
                message,
            }),
        }
    }
    (allows, bad)
}

/// Last line of the statement/expression starting at `start_line`:
/// walks tokens from that line tracking bracket depth and stops at
/// the first `;`/`,` at depth zero, at the `}` closing the first
/// brace group, or just before a delimiter that closes the enclosing
/// group (annotations inside argument lists stop at their own
/// argument).
fn statement_end(toks: &[Tok], start_line: u32) -> u32 {
    let Some(first) = toks.iter().position(|t| t.line >= start_line) else {
        return start_line;
    };
    let mut depth = 0i32;
    let mut last_line = start_line;
    for t in &toks[first..] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        return last_line;
                    }
                }
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return t.line;
                    }
                    if depth < 0 {
                        return last_line;
                    }
                }
                ";" | "," if depth == 0 => return t.line,
                _ => {}
            }
        }
        last_line = t.line;
    }
    last_line
}

/// True when the text after `audit:allow` opens with a parenthesized
/// kebab-case rule id (`[a-z0-9-]+` up to `,` or `)`).
fn rule_id_follows(rest: &str) -> bool {
    let Some(body) = rest.trim_start().strip_prefix('(') else {
        return false;
    };
    let candidate = body
        .split([',', ')'])
        .next()
        .unwrap_or("")
        .trim();
    !candidate.is_empty()
        && candidate
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Parses `(<rule>, reason = "<text>")` after the marker head. The
/// reason is delimited by its quotes, so it may freely contain
/// parentheses and commas.
fn parse_one(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("expected `(` after the marker".to_string());
    };
    let Some((rule, reason_part)) = body.split_once(',') else {
        return Err(
            "missing `, reason = \"...\"` — suppressions must be justified"
                .to_string(),
        );
    };
    let rule = rule.trim().to_string();
    if rule.is_empty() {
        return Err("empty rule id".to_string());
    }
    let reason_part = reason_part.trim();
    let Some(value) = reason_part.strip_prefix("reason") else {
        return Err("expected `reason = \"...\"`".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('"') else {
        return Err("reason must be a quoted string".to_string());
    };
    let Some(end) = value.find('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = &value[..end];
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    if !value[end + 1..].trim_start().starts_with(')') {
        return Err("expected `)` after the reason".to_string());
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_annotation_targets_its_own_line() {
        let src = "let t = now(); // audit:allow(no-wallclock-entropy, reason = \"diagnostics only\")\n";
        let lexed = lex(src);
        let (allows, bad) = parse_allows(&lexed.comments, &lexed.toks);
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no-wallclock-entropy");
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[0].reason, "diagnostics only");
    }

    #[test]
    fn own_line_annotation_targets_next_code_line() {
        let src = "\n// audit:allow(panic-path, reason = \"documented API contract\")\n// another comment\nlet x = 1;\n";
        let lexed = lex(src);
        let (allows, _) = parse_allows(&lexed.comments, &lexed.toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 4);
        assert_eq!(allows[0].target_end, 4);
    }

    #[test]
    fn own_line_annotation_covers_a_multiline_expression() {
        let src = "\
// audit:allow(lossy-cast, reason = \"bounded by construction\")
let plan = build(
    alpha,
    beta as u32,
);
let next = 1;
";
        let lexed = lex(src);
        let (allows, _) = parse_allows(&lexed.comments, &lexed.toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 2);
        assert_eq!(allows[0].target_end, 5);
        assert!(allows[0].covers(4), "mid-expression line is covered");
        assert!(!allows[0].covers(6), "the next statement is not");
    }

    #[test]
    fn own_line_annotation_inside_an_argument_list_stays_on_its_argument() {
        let src = "\
let r = reduce(
    first,
    // audit:allow(sequential-fp-reduce, reason = \"integer sum\")
    second + third,
    fourth,
);
";
        let lexed = lex(src);
        let (allows, _) = parse_allows(&lexed.comments, &lexed.toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 4);
        assert_eq!(allows[0].target_end, 4);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let src = "// audit:allow(panic-path)\nlet x = 1;\n";
        let lexed = lex(src);
        let (allows, bad) = parse_allows(&lexed.comments, &lexed.toks);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("justified"));
    }

    #[test]
    fn empty_reason_is_malformed() {
        let src = "// audit:allow(panic-path, reason = \"  \")\n";
        let lexed = lex(src);
        let (_, bad) = parse_allows(&lexed.comments, &lexed.toks);
        assert_eq!(bad.len(), 1);
    }
}

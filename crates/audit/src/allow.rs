//! `audit:allow` suppression annotations.
//!
//! Grammar (inside any comment):
//!
//! ```text
//! audit:allow(<rule-id>, reason = "<why this site is sound>")
//! ```
//!
//! The reason is mandatory — an unexplained suppression is worth
//! nothing in review. An annotation targets exactly one line:
//!
//! - a *trailing* comment targets its own line;
//! - an *own-line* comment targets the next line that has code.
//!
//! Each annotation suppresses **at most one** finding of its rule on
//! the target line. Two violations on one line need two annotations;
//! this keeps suppressions auditable one-for-one. Annotations that
//! suppress nothing are reported as *unused* so stale ones cannot
//! accumulate silently.

use crate::lexer::{Comment, Tok};

/// One parsed `audit:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule id being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Line whose findings this annotation may suppress.
    pub target_line: u32,
    /// Line the annotation itself is written on.
    pub comment_line: u32,
}

/// A malformed annotation (reported, never silently dropped).
#[derive(Debug, Clone)]
pub struct BadAllow {
    /// Line of the malformed annotation.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Parses all annotations in `comments`, resolving own-line comments
/// to the next code line using `toks`.
pub fn parse_allows(
    comments: &[Comment],
    toks: &[Tok],
) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("audit:allow") else {
            continue;
        };
        let rest = &c.text[pos + "audit:allow".len()..];
        // Prose that merely *mentions* the marker — docs, this very
        // module — is not an annotation: a real one opens a
        // parenthesis immediately and names a kebab-case rule id;
        // grammar examples with `<rule-id>` placeholders fall out via
        // the charset check.
        if !rest.trim_start().starts_with('(') {
            continue;
        }
        if !rule_id_follows(rest) {
            continue;
        }
        match parse_one(rest) {
            Ok((rule, reason)) => {
                let target_line = if c.own_line {
                    toks.iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line)
                } else {
                    c.line
                };
                allows.push(Allow {
                    rule,
                    reason,
                    target_line,
                    comment_line: c.line,
                });
            }
            Err(message) => bad.push(BadAllow {
                line: c.line,
                message,
            }),
        }
    }
    (allows, bad)
}

/// True when the text after `audit:allow` opens with a parenthesized
/// kebab-case rule id (`[a-z0-9-]+` up to `,` or `)`).
fn rule_id_follows(rest: &str) -> bool {
    let Some(body) = rest.trim_start().strip_prefix('(') else {
        return false;
    };
    let candidate = body
        .split([',', ')'])
        .next()
        .unwrap_or("")
        .trim();
    !candidate.is_empty()
        && candidate
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Parses `(<rule>, reason = "<text>")` after the marker head. The
/// reason is delimited by its quotes, so it may freely contain
/// parentheses and commas.
fn parse_one(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim_start();
    let Some(body) = rest.strip_prefix('(') else {
        return Err("expected `(` after the marker".to_string());
    };
    let Some((rule, reason_part)) = body.split_once(',') else {
        return Err(
            "missing `, reason = \"...\"` — suppressions must be justified"
                .to_string(),
        );
    };
    let rule = rule.trim().to_string();
    if rule.is_empty() {
        return Err("empty rule id".to_string());
    }
    let reason_part = reason_part.trim();
    let Some(value) = reason_part.strip_prefix("reason") else {
        return Err("expected `reason = \"...\"`".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('=') else {
        return Err("expected `=` after `reason`".to_string());
    };
    let value = value.trim_start();
    let Some(value) = value.strip_prefix('"') else {
        return Err("reason must be a quoted string".to_string());
    };
    let Some(end) = value.find('"') else {
        return Err("unterminated reason string".to_string());
    };
    let reason = &value[..end];
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    if !value[end + 1..].trim_start().starts_with(')') {
        return Err("expected `)` after the reason".to_string());
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_annotation_targets_its_own_line() {
        let src = "let t = now(); // audit:allow(no-wallclock-entropy, reason = \"diagnostics only\")\n";
        let lexed = lex(src);
        let (allows, bad) = parse_allows(&lexed.comments, &lexed.toks);
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "no-wallclock-entropy");
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[0].reason, "diagnostics only");
    }

    #[test]
    fn own_line_annotation_targets_next_code_line() {
        let src = "\n// audit:allow(panic-path, reason = \"documented API contract\")\n// another comment\nlet x = 1;\n";
        let lexed = lex(src);
        let (allows, _) = parse_allows(&lexed.comments, &lexed.toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].target_line, 4);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let src = "// audit:allow(panic-path)\nlet x = 1;\n";
        let lexed = lex(src);
        let (allows, bad) = parse_allows(&lexed.comments, &lexed.toks);
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("justified"));
    }

    #[test]
    fn empty_reason_is_malformed() {
        let src = "// audit:allow(panic-path, reason = \"  \")\n";
        let lexed = lex(src);
        let (_, bad) = parse_allows(&lexed.comments, &lexed.toks);
        assert_eq!(bad.len(), 1);
    }
}

//! Approximate workspace call graph.
//!
//! Edges come from name resolution over the [`crate::symbols`] table.
//! The approximation is deliberately two-tier (documented in
//! `DESIGN.md` § Static analysis v2):
//!
//! - **Resolved** (`widened == false`): path calls. `foo(..)` binds to
//!   free fns of the same file, else the same crate; `femux_x::f(..)`
//!   binds through the crate alias; `Type::m(..)` and `Self::m(..)`
//!   bind to methods of that type; `crate::f(..)` binds within the
//!   calling crate. Unresolvable paths (std, external) get no edge.
//! - **Conservatively widened** (`widened == true`): method calls
//!   `.m(..)`. Rust method dispatch needs types we do not have, so a
//!   method call binds to *every* workspace method named `m` — unless
//!   the calling crate defines methods named `m`, in which case the
//!   same-crate candidates win (nearest-scope heuristic). Rules that
//!   report *crossings* may require resolved edges to keep precision.
//!
//! Everything is index-based and `BTreeSet`-ordered: the graph, every
//! traversal, and every reported path are byte-stable at any thread
//! count.

use std::collections::BTreeSet;

use crate::symbols::{CallRef, WorkspaceIndex};

/// One call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Callee node id.
    pub callee: usize,
    /// Call-site line.
    pub line: u32,
    /// Call-site column.
    pub col: u32,
    /// Display text of the call (`a::b` / `.m`).
    pub via: String,
    /// True when the call happens inside a closure literal.
    pub in_closure: bool,
    /// True when the edge comes from method-name widening.
    pub widened: bool,
}

/// The call graph over a [`WorkspaceIndex`]'s nodes.
pub struct CallGraph {
    /// Outgoing edges per node, in call-site order.
    pub edges: Vec<Vec<Edge>>,
    /// Incoming edges per node (callee → callers), sorted, deduped.
    pub redges: Vec<Vec<usize>>,
}

/// Resolves one call to candidate node ids (sorted, deduped).
/// `caller` provides scope: file, crate and `Self` type.
pub fn resolve(
    index: &WorkspaceIndex,
    caller: usize,
    call: &CallRef,
) -> (Vec<usize>, bool) {
    let node = &index.nodes[caller];
    if let Some(m) = &call.method {
        // Widened: any method with this name; same-crate names win.
        let all = index
            .methods_by_name
            .get(m)
            .map_or(&[][..], Vec::as_slice);
        let same_crate: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&c| index.nodes[c].crate_name == node.crate_name)
            .collect();
        let picked = if same_crate.is_empty() {
            all.to_vec()
        } else {
            same_crate
        };
        return (dedup(picked), true);
    }
    // Path call. Strip `crate` / `self` / `super` prefixes: all three
    // stay within the calling crate for our purposes.
    let mut segs: Vec<&str> = call.path.iter().map(String::as_str).collect();
    while segs.len() > 1
        && matches!(segs[0], "crate" | "self" | "super")
    {
        segs.remove(0);
    }
    let Some((&last, qual)) = segs.split_last() else {
        return (Vec::new(), false);
    };
    if qual.is_empty() {
        // Plain `foo(..)`: same file first, then same crate.
        let in_crate = index
            .free_by_crate
            .get(&(node.crate_name.clone(), last.to_string()))
            .map_or(&[][..], Vec::as_slice);
        let in_file: Vec<usize> = in_crate
            .iter()
            .copied()
            .filter(|&c| index.nodes[c].file == node.file)
            .collect();
        let picked = if in_file.is_empty() {
            in_crate.to_vec()
        } else {
            in_file
        };
        return (dedup(picked), false);
    }
    let pen = *qual.last().expect("non-empty qualifier");
    // `Self::m(..)`.
    if pen == "Self" {
        if let Some(ty) = &node.info.self_ty {
            return (dedup(index.methods_of(ty, last).to_vec()), false);
        }
        return (Vec::new(), false);
    }
    // `Type::assoc(..)` — types are UpperCamelCase by convention.
    if pen.starts_with(|c: char| c.is_ascii_uppercase()) {
        return (dedup(index.methods_of(pen, last).to_vec()), false);
    }
    // `femux_x::f(..)` (possibly `femux_x::module::f(..)`).
    if let Some(krate) = index.crate_alias.get(segs[0]) {
        let frees = index
            .free_by_crate
            .get(&(krate.clone(), last.to_string()))
            .map_or(&[][..], Vec::as_slice);
        return (dedup(frees.to_vec()), false);
    }
    // `module::f(..)` without a crate prefix: same crate.
    let frees = index
        .free_by_crate
        .get(&(node.crate_name.clone(), last.to_string()))
        .map_or(&[][..], Vec::as_slice);
    (dedup(frees.to_vec()), false)
}

fn dedup(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v.dedup();
    v
}

impl CallGraph {
    /// Builds the graph. Sequential and deterministic: nodes are in
    /// sorted file order, calls in source order, candidates sorted.
    pub fn build(index: &WorkspaceIndex) -> Self {
        let n = index.nodes.len();
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut redges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (caller, node) in index.nodes.iter().enumerate() {
            for call in &node.info.calls {
                let (callees, widened) = resolve(index, caller, call);
                for callee in callees {
                    edges[caller].push(Edge {
                        callee,
                        line: call.line,
                        col: call.col,
                        via: call.display(),
                        in_closure: call.in_closure,
                        widened,
                    });
                    redges[callee].push(caller);
                }
            }
        }
        for r in &mut redges {
            r.sort_unstable();
            r.dedup();
        }
        CallGraph { edges, redges }
    }

    /// Forward reachability from `starts`, traversing only through
    /// nodes accepted by `allow` (start nodes are always included).
    pub fn reachable(
        &self,
        starts: impl IntoIterator<Item = usize>,
        allow: impl Fn(usize) -> bool,
    ) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = starts.into_iter().collect();
        let mut frontier: Vec<usize> = seen.iter().copied().collect();
        while let Some(at) = frontier.pop() {
            for e in &self.edges[at] {
                if allow(e.callee) && seen.insert(e.callee) {
                    frontier.push(e.callee);
                }
            }
        }
        seen
    }

    /// Reverse reachability: every node that can reach one of `sinks`
    /// through `allow`ed intermediate nodes.
    pub fn reaches(
        &self,
        sinks: impl IntoIterator<Item = usize>,
        allow: impl Fn(usize) -> bool,
    ) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = sinks.into_iter().collect();
        let mut frontier: Vec<usize> = seen.iter().copied().collect();
        while let Some(at) = frontier.pop() {
            for &caller in &self.redges[at] {
                if allow(caller) && seen.insert(caller) {
                    frontier.push(caller);
                }
            }
        }
        seen
    }

    /// Shortest call path from `from` to any node in `targets`
    /// (inclusive of both ends), deterministic under ties: BFS visits
    /// callees in edge order, which is source order.
    pub fn path_to(
        &self,
        from: usize,
        targets: &BTreeSet<usize>,
        allow: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if targets.contains(&from) {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.edges.len()];
        let mut seen = vec![false; self.edges.len()];
        seen[from] = true;
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(at) = queue.pop_front() {
            for e in &self.edges[at] {
                if seen[e.callee] || !allow(e.callee) {
                    continue;
                }
                seen[e.callee] = true;
                prev[e.callee] = Some(at);
                if targets.contains(&e.callee) {
                    let mut path = vec![e.callee];
                    let mut cur = at;
                    loop {
                        path.push(cur);
                        match prev[cur] {
                            Some(p) => cur = p,
                            None => break,
                        }
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(e.callee);
            }
        }
        None
    }
}

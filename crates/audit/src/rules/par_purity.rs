//! `par-closure-purity`: closures handed to `femux_par` must be pure
//! functions of `(index, item)`.
//!
//! The companion rule `sequential-fp-reduce` catches shared-state
//! *types* (`Mutex`, `RefCell`, atomics) smuggled into a `par_map`
//! argument list. This rule closes the other half of the contract: a
//! closure that **captures a mutable accumulator** breaks determinism
//! with no shared-state type in sight —
//!
//! ```text
//! let mut total = 0.0;
//! par_map(&items, |_, x| { total += weigh(x); 0 });   // UB-free, wrong
//! out.push(..)  // ditto: captured Vec mutated in completion order
//! ```
//!
//! Float addition is not associative, so even a data-race-free
//! accumulation (per-chunk borrows, `par_map_chunked`) changes bytes
//! with scheduling. The AST gives us closure parameter lists and body
//! ranges, so the check is structural: inside a closure passed
//! directly to `par_map`/`par_map_chunked`/`par_map_threads`, flag
//!
//! - assignments (`=`, `+=`, ...) whose target's base identifier is
//!   not bound inside the closure (param, `let`, `for`, or a nested
//!   closure's param), and
//! - calls of mutating container methods (`push`, `insert`,
//!   `extend`, ...) on an unbound base identifier.
//!
//! Combine results from the returned, index-ordered `Vec` instead —
//! that reduction is sequential on the caller's thread by
//! construction.

use std::collections::BTreeSet;

use super::{FileContext, Rule, RuleOutput};
use crate::findings::FileKind;
use crate::lexer::{Tok, TokKind};
use crate::parser::{ClosureExpr, Expr};

const PAR_CALLS: &[&str] = &["par_map", "par_map_chunked", "par_map_threads"];

/// Container methods that require `&mut self`.
const MUT_METHODS: &[&str] = &[
    "push", "push_str", "insert", "remove", "extend", "append", "clear",
    "truncate", "drain", "retain", "sort", "sort_by", "sort_unstable",
    "sort_unstable_by", "sort_by_key", "set", "get_mut", "iter_mut",
];

/// See module docs.
pub struct ParClosurePurity;

impl Rule for ParClosurePurity {
    fn id(&self) -> &'static str {
        "par-closure-purity"
    }

    fn describe(&self) -> &'static str {
        "par_map closures must not capture mutable accumulators; \
         combine results sequentially from the returned Vec"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if cx.kind == FileKind::Test {
            return;
        }
        cx.ast.for_each_fn(&mut |func, in_test| {
            if in_test {
                return;
            }
            let Some(body) = &func.body else { return };
            body.for_each_expr(&mut |e| {
                let (name, line, args) = match e {
                    Expr::Call(c) => (
                        c.path.last().map(String::as_str),
                        c.line,
                        &c.args,
                    ),
                    Expr::Method(m) => {
                        (Some(m.method.as_str()), m.line, &m.args)
                    }
                    Expr::Closure(_) => return,
                };
                let Some(name) = name else { return };
                if !PAR_CALLS.contains(&name) || cx.is_test_line(line) {
                    return;
                }
                for arg in args {
                    if let Expr::Closure(cl) = arg {
                        check_closure(self.id(), cx, name, cl, out);
                    }
                }
            });
        });
    }
}

fn check_closure(
    rule: &'static str,
    cx: &FileContext,
    par_call: &str,
    cl: &ClosureExpr,
    out: &mut RuleOutput,
) {
    let bound = bound_names(cx.toks, cl);
    // (a) assignments to captured bases.
    let from = cl.body.start;
    let to = cl.body.end.min(cx.toks.len());
    for i in from..to {
        let Some((base_idx, compound)) = assignment_at(cx.toks, i, from)
        else {
            continue;
        };
        let base = &cx.toks[base_idx];
        if bound.contains(base.text.as_str()) || cx.is_test_line(base.line) {
            continue;
        }
        out.push(
            rule,
            cx.rel_path,
            base.line,
            base.col,
            format!(
                "closure passed to `{par_call}` {} captured `{}`: \
                 workers complete in scheduling order, so accumulating \
                 across items breaks byte-stable output — return a \
                 value per item and combine from the result Vec",
                if compound { "accumulates into" } else { "assigns to" },
                base.text,
            ),
        );
    }
    // (b) mutating container methods on captured bases.
    cl.body.for_each_expr(&mut |e| {
        let Expr::Method(m) = e else { return };
        if !MUT_METHODS.contains(&m.method.as_str()) {
            return;
        }
        let Some(base) = &m.recv_base else { return };
        if bound.contains(base.as_str()) || cx.is_test_line(m.line) {
            return;
        }
        out.push(
            rule,
            cx.rel_path,
            m.line,
            m.col,
            format!(
                "closure passed to `{par_call}` mutates captured \
                 `{base}` via `.{}()`: side effects land in worker \
                 completion order — return a value per item and \
                 combine from the result Vec",
                m.method,
            ),
        );
    });
}

/// Names bound inside the closure: its params, nested closure params,
/// and (lexically) `let` / `for` bindings in the body token range.
fn bound_names(toks: &[Tok], cl: &ClosureExpr) -> BTreeSet<String> {
    let mut bound: BTreeSet<String> = cl.params.iter().cloned().collect();
    cl.body.for_each_expr(&mut |e| {
        if let Expr::Closure(inner) = e {
            bound.extend(inner.params.iter().cloned());
        }
    });
    let to = cl.body.end.min(toks.len());
    let mut i = cl.body.start;
    while i < to {
        let t = &toks[i];
        if t.kind == TokKind::Ident && (t.text == "let" || t.text == "for") {
            let stop_ident = if t.text == "for" { "in" } else { "" };
            let mut j = i + 1;
            while j < to {
                let u = &toks[j];
                match u.kind {
                    TokKind::Ident if u.text == stop_ident => break,
                    TokKind::Ident => {
                        bound.insert(u.text.clone());
                    }
                    TokKind::Punct
                        if u.text == "=" || u.text == ";" =>
                    {
                        break
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    bound
}

/// When `toks[i]` is an assignment operator (simple or compound),
/// returns the index of the target's base identifier and whether the
/// assignment is compound. `from` bounds the backward walk.
fn assignment_at(
    toks: &[Tok],
    i: usize,
    from: usize,
) -> Option<(usize, bool)> {
    let t = &toks[i];
    if t.kind != TokKind::Punct || t.text != "=" {
        return None;
    }
    let adj = |a: usize, b: usize| {
        toks[a].line == toks[b].line && toks[a].col + 1 == toks[b].col
    };
    // `==` (either half), `=>`: not assignments.
    if i + 1 < toks.len()
        && toks[i + 1].kind == TokKind::Punct
        && (toks[i + 1].text == "=" || toks[i + 1].text == ">")
        && adj(i, i + 1)
    {
        return None;
    }
    let mut p = i.checked_sub(1)?;
    let mut compound = false;
    if toks[p].kind == TokKind::Punct && adj(p, i) {
        match toks[p].text.as_str() {
            // Comparison / pattern / range contexts.
            "=" | "<" | ">" | "!" | "." => return None,
            "+" | "-" | "*" | "/" | "%" | "^" => {
                compound = true;
                p = p.checked_sub(1)?;
            }
            "&" | "|" => {
                // `&=`/`|=`, also `&&=`-style doubled forms.
                compound = true;
                p = p.checked_sub(1)?;
                if toks[p].kind == TokKind::Punct
                    && toks[p].text == toks[p + 1].text
                    && adj(p, p + 1)
                {
                    p = p.checked_sub(1)?;
                }
            }
            _ => return None,
        }
    }
    // Shifts: `<<=` / `>>=` (the `<`/`>` pair sits before `p`).
    if compound { /* p already points before the operator */ }
    let base = assign_base(toks, p, from)?;
    // `let x = ..` / `let mut x = ..` bind rather than assign.
    let before = base.checked_sub(1);
    let is_kw = |k: Option<usize>, s: &str| {
        k.and_then(|k| toks.get(k)).is_some_and(|t| {
            t.kind == TokKind::Ident && t.text == s
        })
    };
    if is_kw(before, "let")
        || (is_kw(before, "mut")
            && is_kw(before.and_then(|b| b.checked_sub(1)), "let"))
    {
        return None;
    }
    Some((base, compound))
}

/// Walks back from `p` over `.field` / `[index]` projections to the
/// base identifier of an assignment target.
fn assign_base(toks: &[Tok], mut p: usize, from: usize) -> Option<usize> {
    loop {
        if p < from {
            return None;
        }
        let t = &toks[p];
        if t.kind == TokKind::Punct && t.text == "]" {
            // Backward-match the bracket group.
            let mut depth = 0i32;
            loop {
                let u = &toks[p];
                if u.kind == TokKind::Punct {
                    match u.text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                p = p.checked_sub(1)?;
                if p < from {
                    return None;
                }
            }
            p = p.checked_sub(1)?;
            continue;
        }
        if t.kind == TokKind::Ident {
            if EXPR_STOP.contains(&t.text.as_str()) {
                return None;
            }
            match toks.get(p.wrapping_sub(1)) {
                Some(prev)
                    if p > from
                        && prev.kind == TokKind::Punct
                        && prev.text == "." =>
                {
                    p = p.checked_sub(2)?;
                    continue;
                }
                _ => return Some(p),
            }
        }
        return None;
    }
}

/// Keywords that terminate the backward walk without a base.
const EXPR_STOP: &[&str] = &["if", "else", "match", "return", "in"];

//! `panic-path`: library code must not take undocumented panic paths.
//!
//! A serverless control loop that dies on an edge case is worse than
//! one that returns an error: the paper's platform restarts pods, but
//! our offline pipeline just loses hours of labelling. In library
//! (non-test) code the rule flags:
//!
//! - bare `.unwrap()` — replace with `?`, a default, or
//!   `.expect("invariant: …")` naming *why* the value must exist;
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!` — allowed
//!   only with an `audit:allow` naming the documented contract.
//!
//! `.expect("…")` with a message is deliberately *not* flagged: it is
//! the sanctioned self-annotating form — the message is the invariant.
//! `assert!`-family macros are also exempt: they are explicit, named
//! invariant checks. Binaries, benches, examples and shims are exempt
//! (CLI input validation may panic; shims mimic external crates).

use super::{is_punct, FileContext, Rule, RuleOutput};
use crate::findings::{CrateClass, FileKind};
use crate::lexer::TokKind;

const PANIC_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented"];

/// See module docs.
pub struct PanicPath;

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }

    fn describe(&self) -> &'static str {
        "library code must not use bare unwrap() or panic-family \
         macros outside tests without an annotation"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if cx.kind != FileKind::Lib || cx.class == CrateClass::Shim {
            return;
        }
        let toks = cx.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || cx.is_test_line(t.line) {
                continue;
            }
            if t.text == "unwrap"
                && is_punct(toks, i.wrapping_sub(1), '.')
                && is_punct(toks, i + 1, '(')
                && is_punct(toks, i + 2, ')')
            {
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    "bare `.unwrap()` in library code: propagate the \
                     error or use `.expect(\"invariant: …\")` naming why \
                     the value must exist"
                        .to_string(),
                );
            }
            if PANIC_MACROS.contains(&t.text.as_str())
                && is_punct(toks, i + 1, '!')
            {
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    format!(
                        "`{}!` in library code: return an error, or \
                         annotate the documented panic contract",
                        t.text
                    ),
                );
            }
        }
    }
}

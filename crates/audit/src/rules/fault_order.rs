//! `fault-draw-order`: per-tick fault draws advance one shared RNG
//! stream and must run in the documented order.
//!
//! `femux_fault::AppFaults` performs exactly one uniform draw per
//! method call so the stream advances identically whether or not a
//! fault fires; the sim engine's determinism contract is that each
//! tick draws `crash_pod` → `lose_report` → `crash_node` →
//! `actuation_fate` in that fixed order (`straggle` is drawn per
//! cold-start, outside the tick sequence; `crash_node` draws from its
//! own per-node streams, but its *placement* in the tick still decides
//! which pods each later draw can see, so it carries an ordinal like
//! the shared-stream draws). Two ways code silently breaks replay
//! equivalence:
//!
//! - **reordering the draws** — swapping `lose_report` before
//!   `crash_pod` hands each draw a different `u64` from the stream, so
//!   a config byte-identical to the oracle's injects different faults;
//! - **branching on accumulated fault state mid-sequence** — reading
//!   `faults.stats` between the first and last draw lets an early
//!   injection skip or duplicate a later draw, desynchronising the
//!   stream from that tick onward.
//!
//! The check is per function body in deterministic crates: collect the
//! tick-sequence draw calls in source order and flag any ordinal
//! inversion, plus any `.stats` read on a draw receiver between the
//! first and last draw.

use super::{FileContext, Rule, RuleOutput};
use crate::findings::{CrateClass, FileKind};
use crate::lexer::TokKind;
use crate::parser::Expr;

/// Per-tick draw methods, index = required ordinal.
const TICK_DRAWS: &[&str] =
    &["crash_pod", "lose_report", "crash_node", "actuation_fate"];

/// See module docs.
pub struct FaultDrawOrder;

impl Rule for FaultDrawOrder {
    fn id(&self) -> &'static str {
        "fault-draw-order"
    }

    fn describe(&self) -> &'static str {
        "per-tick fault draws must run crash_pod -> lose_report -> \
         crash_node -> actuation_fate with no mid-sequence fault-state \
         reads"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if cx.class != CrateClass::Deterministic
            || !matches!(cx.kind, FileKind::Lib | FileKind::Bin)
        {
            return;
        }
        cx.ast.for_each_fn(&mut |func, in_test| {
            if in_test {
                return;
            }
            let Some(body) = &func.body else { return };
            // Draw sites in this body: (line, col, ordinal, recv base).
            let mut draws: Vec<(u32, u32, usize, Option<String>)> =
                Vec::new();
            body.for_each_expr(&mut |e| {
                let Expr::Method(m) = e else { return };
                let Some(ord) =
                    TICK_DRAWS.iter().position(|d| *d == m.method)
                else {
                    return;
                };
                if cx.is_test_line(m.line) {
                    return;
                }
                draws.push((m.line, m.col, ord, m.recv_base.clone()));
            });
            if draws.len() < 2 {
                return;
            }
            draws.sort();
            for w in draws.windows(2) {
                let (pl, _, prev, _) = &w[0];
                let (line, col, cur, _) = &w[1];
                if cur < prev {
                    out.push(
                        self.id(),
                        cx.rel_path,
                        *line,
                        *col,
                        format!(
                            "`{}` drawn after `{}` (line {pl}): per-tick \
                             fault draws must run {} so the RNG stream \
                             stays aligned with the oracle's",
                            TICK_DRAWS[*cur],
                            TICK_DRAWS[*prev],
                            TICK_DRAWS.join(" -> "),
                        ),
                    );
                }
            }
            // `.stats` reads on a draw receiver between the first and
            // last draw of the sequence.
            let first = (draws[0].0, draws[0].1);
            let last = (draws[draws.len() - 1].0, draws[draws.len() - 1].1);
            let bases: Vec<&str> = draws
                .iter()
                .filter_map(|d| d.3.as_deref())
                .collect();
            for (i, t) in cx.toks.iter().enumerate() {
                if t.kind != TokKind::Ident || t.text != "stats" || i < 2 {
                    continue;
                }
                let pos = (t.line, t.col);
                if pos <= first || pos >= last || cx.is_test_line(t.line) {
                    continue;
                }
                let dot = &cx.toks[i - 1];
                let base = &cx.toks[i - 2];
                if dot.kind != TokKind::Punct
                    || dot.text != "."
                    || base.kind != TokKind::Ident
                    || !bases.contains(&base.text.as_str())
                {
                    continue;
                }
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    format!(
                        "`{}.stats` read between fault draws (lines \
                         {}..{}): branching on accumulated fault state \
                         mid-sequence can skip or duplicate a later \
                         draw and desynchronise the RNG stream",
                        base.text, first.0, last.0,
                    ),
                );
            }
        });
    }
}

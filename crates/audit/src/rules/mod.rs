//! The rule engine.
//!
//! Rules come in two tiers. A *local* [`Rule`] is a pure function
//! over a [`FileContext`] (lexed + parsed source with crate/file
//! classification) or a manifest text. A [`WorkspaceRule`] runs after
//! every file is scanned, over the merged
//! [`crate::symbols::WorkspaceIndex`] and
//! [`crate::callgraph::CallGraph`], and may attribute findings to any
//! file. Neither tier sees the suppression layer: rules emit every
//! violation and [`crate::engine`] matches findings against
//! `audit:allow` annotations afterwards, so the "one annotation
//! suppresses one finding" semantics live in one place.
//!
//! Adding a rule: create a module here, implement [`Rule`] (register
//! in [`all_rules`]) or [`WorkspaceRule`] (register in
//! [`workspace_rules`]), add a fixture under `tests/fixtures/`
//! pinning its ids, and describe it in `DESIGN.md`.

pub mod contract_impl;
pub mod env_read;
pub mod fault_order;
pub mod fp_reduce;
pub mod lossy_cast;
pub mod offline_deps;
pub mod panic_path;
pub mod par_purity;
pub mod unordered;
pub mod wallclock;
pub mod wallclock_reach;

use crate::callgraph::CallGraph;
use crate::findings::{finding_id, CrateClass, FileKind, Finding};
use crate::lexer::{Tok, TokKind, TestRegions};
use crate::parser::Ast;
use crate::symbols::WorkspaceIndex;

/// Everything a source rule may look at for one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with forward slashes.
    pub rel_path: &'a str,
    /// Crate directory name (`"sim"`, `"core"`, ... or `""` for the
    /// root facade).
    pub crate_name: &'a str,
    /// Crate classification.
    pub class: CrateClass,
    /// Target kind.
    pub kind: FileKind,
    /// Code tokens.
    pub toks: &'a [Tok],
    /// Source lines (for finding ids).
    pub lines: &'a [&'a str],
    /// `#[cfg(test)]` line ranges (lexer brace-matcher).
    pub tests: &'a TestRegions,
    /// The parsed file.
    pub ast: &'a Ast,
}

impl FileContext<'_> {
    /// True when `line` is inside a test item. Test attribution is
    /// structural (AST), with the lexer's brace-matcher kept as a
    /// belt-and-braces fallback for code outside the parser subset;
    /// the union can only *exempt* more, never add findings.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.tests.contains(line) || self.ast.in_test(line)
    }

    /// Trimmed text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or("")
    }
}

/// One audit rule.
pub trait Rule: Sync {
    /// Stable rule id (kebab-case, used in annotations and finding
    /// ids).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Checks one Rust source file.
    fn check_source(&self, _cx: &FileContext, _out: &mut RuleOutput) {}
    /// Checks one `Cargo.toml`.
    fn check_manifest(
        &self,
        _rel_path: &str,
        _text: &str,
        _out: &mut RuleOutput,
    ) {
    }
}

/// Accumulates findings for one file, assigning stable ids.
pub struct RuleOutput {
    findings: Vec<Finding>,
}

impl RuleOutput {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RuleOutput {
            findings: Vec::new(),
        }
    }

    /// Records a finding; the id is assigned at the end of the file
    /// pass (occurrence ordinals need the full list).
    pub fn push(
        &mut self,
        rule: &'static str,
        file: &str,
        line: u32,
        col: u32,
        message: String,
    ) {
        self.findings.push(Finding {
            id: String::new(),
            rule,
            file: file.to_string(),
            line,
            col,
            message,
        });
    }

    /// Finalizes ids and returns the findings sorted by position.
    pub fn into_findings(mut self, lines: &[&str]) -> Vec<Finding> {
        self.findings
            .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
        let mut seen: Vec<(String, u32)> = Vec::new();
        for f in &mut self.findings {
            let text = lines
                .get(f.line as usize - 1)
                .copied()
                .unwrap_or("")
                .trim()
                .to_string();
            let key = format!("{}\u{0}{}\u{0}{}", f.rule, f.file, text);
            let occurrence = seen.iter().filter(|(k, _)| *k == key).count();
            seen.push((key.clone(), f.line));
            f.id = finding_id(f.rule, &f.file, &text, occurrence);
        }
        self.findings
    }
}

impl Default for RuleOutput {
    fn default() -> Self {
        RuleOutput::new()
    }
}

/// An interprocedural rule over the whole workspace.
pub trait WorkspaceRule: Sync {
    /// Stable rule id (kebab-case, used in annotations and finding
    /// ids).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    /// Checks the merged workspace.
    fn check(
        &self,
        index: &WorkspaceIndex,
        graph: &CallGraph,
        out: &mut WorkspaceOutput,
    );
}

/// Accumulates workspace-rule findings, routed per file so occurrence
/// ordinals and ids finalize exactly like local findings.
pub struct WorkspaceOutput {
    paths: Vec<String>,
    outs: Vec<RuleOutput>,
}

impl WorkspaceOutput {
    /// One slot per scanned file, in scan order.
    pub fn new(paths: Vec<String>) -> Self {
        let outs = paths.iter().map(|_| RuleOutput::new()).collect();
        WorkspaceOutput { paths, outs }
    }

    /// Records a finding against file index `file`.
    pub fn push(
        &mut self,
        file: usize,
        rule: &'static str,
        line: u32,
        col: u32,
        message: String,
    ) {
        let path = self.paths[file].clone();
        self.outs[file].push(rule, &path, line, col, message);
    }

    /// Per-file accumulators, in scan order.
    pub fn into_outputs(self) -> Vec<RuleOutput> {
        self.outs
    }
}

/// The registered local rule set, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wallclock::NoWallclockEntropy),
        Box::new(unordered::NoUnorderedEmit),
        Box::new(fp_reduce::SequentialFpReduce),
        Box::new(panic_path::PanicPath),
        Box::new(lossy_cast::LossyCast),
        Box::new(offline_deps::OfflineDeps),
        Box::new(env_read::NoEnvRead),
        Box::new(par_purity::ParClosurePurity),
        Box::new(fault_order::FaultDrawOrder),
    ]
}

/// The registered workspace rule set, in reporting order.
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(wallclock_reach::WallclockReachability),
        Box::new(contract_impl::ContractImpl),
    ]
}

/// True when `toks[i]` is an identifier with the given text.
pub(crate) fn is_ident(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

/// True when `toks[i]` is the given punctuation character.
pub(crate) fn is_punct(toks: &[Tok], i: usize, ch: char) -> bool {
    toks.get(i).is_some_and(|t| {
        t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
    })
}

/// Given `toks[open]` == `(`, returns the index of the matching `)`.
pub(crate) fn match_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

//! `lossy-cast`: truncating `as` casts in the accumulation crates.
//!
//! `rum` and `sim` accumulate cost and capacity numbers (GB-seconds,
//! cold-start seconds, pod counts) across millions of invocations; a
//! narrowing `as` cast in those paths truncates silently — `as u32`
//! wraps integers above 2³², `as f32` rounds away precision that the
//! RUM comparisons in the paper's figures are sensitive to. The rule
//! flags `as` casts to any type that can silently lose value range or
//! precision from the workspace's working types (`f64`, `u64`,
//! `usize`): `u8`, `u16`, `u32`, `i8`, `i16`, `i32`, `f32`. Use the
//! full-width type, a checked `try_into()`, or annotate the site with
//! the range invariant that makes the cast exact.
//!
//! Widening casts and float→int casts through an explicit
//! `.ceil()`/`.floor()`/`.round()` remain allowed — the rounding call
//! documents the intent, and Rust float→int `as` casts saturate
//! rather than wrap.

use super::{FileContext, Rule, RuleOutput};
use crate::findings::FileKind;
use crate::lexer::TokKind;

/// Crates whose accumulation paths this rule guards.
const SCOPED_CRATES: &[&str] = &["rum", "sim"];

const NARROW_TARGETS: &[&str] =
    &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

/// See module docs.
pub struct LossyCast;

impl Rule for LossyCast {
    fn id(&self) -> &'static str {
        "lossy-cast"
    }

    fn describe(&self) -> &'static str {
        "no truncating `as` casts in rum/sim accumulation paths"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if !SCOPED_CRATES.contains(&cx.crate_name)
            || cx.kind != FileKind::Lib
        {
            return;
        }
        let toks = cx.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || t.text != "as"
                || cx.is_test_line(t.line)
            {
                continue;
            }
            let Some(target) = toks.get(i + 1) else { continue };
            if target.kind == TokKind::Ident
                && NARROW_TARGETS.contains(&target.text.as_str())
            {
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    format!(
                        "`as {}` can truncate in an accumulation path: \
                         keep the full-width type, use try_into(), or \
                         annotate the range invariant",
                        target.text
                    ),
                );
            }
        }
    }
}

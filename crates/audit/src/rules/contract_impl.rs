//! `contract-impl`: trait impls must complete the workspace's semantic
//! contracts, not just typecheck against the trait.
//!
//! Four contracts, each checked over the call graph:
//!
//! 1. **Forecaster sanitation** — `Forecaster::forecast` returns
//!    "clamped, exactly `horizon` entries" per the trait docs, and the
//!    one function enforcing that postcondition is
//!    `femux_forecast::sanitize_forecast`. Every `impl Forecaster`
//!    must reach it from its `forecast` body; an impl that skips it
//!    can hand NaN/negative targets to the sim engine.
//! 2. **`tick_idle` equivalence tests** — the idle fast path
//!    ([`ScalingPolicy::tick_idle`]) asserts batched ticks are
//!    byte-identical to per-tick decisions. Any policy overriding it
//!    must appear in a `assert_tick_idle_equivalence("Type", ..)` call
//!    somewhere in the workspace's tests (the registrar records every
//!    identifier in its argument tokens, so passing the constructor
//!    registers the type).
//! 3. **Worker telemetry flush** — `femux_obs` counters are
//!    thread-local and die with the thread unless
//!    `femux_obs::flush_thread()` runs. A closure handed to
//!    `spawn(..)` in the parallel substrate (`crates/par`) or a
//!    deterministic crate must reach `flush_thread`, either by calling
//!    into it or by instantiating a guard type whose `Drop` impl does
//!    (e.g. `FlushOnExit`).
//! 4. **Span guard discipline** — `femux_obs::span` exposes the raw
//!    [`open_span`]/[`close_span`] pair only so the `SpanGuard` Drop
//!    guard can be built on top of it. A deterministic crate that
//!    calls the raw pair directly can leak an open span on an early
//!    return or panic, corrupting the trace's begin/end pairing; every
//!    span-opening site outside `femux_obs` must go through
//!    `SpanGuard`, whose `Drop` closes the span on every path.
//!
//! Contracts 1, 3, and 4 anchor on concrete functions; when the corpus
//! does not define those functions (reduced fixtures, partial scans)
//! the sub-check stands down rather than flagging the whole corpus.

use std::collections::BTreeSet;

use super::{WorkspaceOutput, WorkspaceRule};
use crate::callgraph::{resolve, CallGraph};
use crate::findings::CrateClass;
use crate::symbols::{WorkspaceIndex, EQUIVALENCE_REGISTRAR};

/// See module docs.
pub struct ContractImpl;

impl WorkspaceRule for ContractImpl {
    fn id(&self) -> &'static str {
        "contract-impl"
    }

    fn describe(&self) -> &'static str {
        "trait impls must complete their semantic contract: forecast \
         sanitation, tick_idle equivalence tests, worker flush, span \
         guard discipline"
    }

    fn check(
        &self,
        index: &WorkspaceIndex,
        graph: &CallGraph,
        out: &mut WorkspaceOutput,
    ) {
        check_forecast_sanitation(self.id(), index, graph, out);
        check_tick_idle_registry(self.id(), index, out);
        check_worker_flush(self.id(), index, graph, out);
        check_span_guard(self.id(), index, out);
    }
}

/// Free fns named `name` defined in crate `krate`.
fn anchors(index: &WorkspaceIndex, krate: &str, name: &str) -> BTreeSet<usize> {
    index
        .free_by_crate
        .get(&(krate.to_string(), name.to_string()))
        .map_or(&[][..], Vec::as_slice)
        .iter()
        .copied()
        .collect()
}

fn check_forecast_sanitation(
    rule: &'static str,
    index: &WorkspaceIndex,
    graph: &CallGraph,
    out: &mut WorkspaceOutput,
) {
    let sanitize = anchors(index, "forecast", "sanitize_forecast");
    if sanitize.is_empty() {
        return;
    }
    for (i, node) in index.nodes.iter().enumerate() {
        if node.info.trait_name.as_deref() != Some("Forecaster")
            || node.info.name != "forecast"
            || node.info.in_trait_decl
            || !node.traversable()
        {
            continue;
        }
        let reach = graph.reachable([i], |c| index.nodes[c].traversable());
        if reach.intersection(&sanitize).next().is_some() {
            continue;
        }
        out.push(
            node.file,
            rule,
            node.info.line,
            node.info.col,
            format!(
                "`{}` implements `Forecaster::forecast` without \
                 reaching `sanitize_forecast`: the forecast contract \
                 (non-negative, exactly `horizon` entries) is enforced \
                 nowhere on this path",
                node.display(),
            ),
        );
    }
}

fn check_tick_idle_registry(
    rule: &'static str,
    index: &WorkspaceIndex,
    out: &mut WorkspaceOutput,
) {
    for node in &index.nodes {
        if node.info.trait_name.as_deref() != Some("ScalingPolicy")
            || node.info.name != "tick_idle"
            || node.info.in_trait_decl
            || node.info.cfg_test
        {
            continue;
        }
        let Some(ty) = &node.info.self_ty else { continue };
        if index.registered.contains(ty) {
            continue;
        }
        out.push(
            node.file,
            rule,
            node.info.line,
            node.info.col,
            format!(
                "`{ty}` overrides `ScalingPolicy::tick_idle` but no \
                 test registers it: add \
                 `{EQUIVALENCE_REGISTRAR}(\"{ty}\", ..)` proving the \
                 idle fast path matches per-tick decisions",
            ),
        );
    }
}

fn check_worker_flush(
    rule: &'static str,
    index: &WorkspaceIndex,
    graph: &CallGraph,
    out: &mut WorkspaceOutput,
) {
    let flush = anchors(index, "obs", "flush_thread");
    if flush.is_empty() {
        return;
    }
    let reaches_flush = graph
        .reaches(flush.iter().copied(), |c| index.nodes[c].traversable());
    // Guard types: a `Drop` impl whose `drop` reaches `flush_thread`.
    let guards: BTreeSet<&str> = index
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, n)| {
            n.info.trait_name.as_deref() == Some("Drop")
                && n.info.name == "drop"
                && reaches_flush.contains(i)
        })
        .filter_map(|(_, n)| n.info.self_ty.as_deref())
        .collect();
    for (i, node) in index.nodes.iter().enumerate() {
        let in_scope = node.crate_name == "par"
            || node.class == CrateClass::Deterministic;
        if !in_scope || !node.traversable() {
            continue;
        }
        for cl in &node.info.spawn_closures {
            let flushes = cl.calls.iter().any(|call| {
                call.path.last().map(String::as_str)
                    == Some("flush_thread")
                    || resolve(index, i, call)
                        .0
                        .iter()
                        .any(|c| reaches_flush.contains(c))
            }) || cl.idents.iter().any(|id| guards.contains(id.as_str()));
            if flushes {
                continue;
            }
            out.push(
                node.file,
                rule,
                cl.line,
                cl.col,
                format!(
                    "spawned worker closure in `{}` never reaches \
                     `femux_obs::flush_thread`: thread-local counters \
                     die with the worker — call it before exit or \
                     hold a flush guard",
                    node.display(),
                ),
            );
        }
    }
}

fn check_span_guard(
    rule: &'static str,
    index: &WorkspaceIndex,
    out: &mut WorkspaceOutput,
) {
    let mut raw = anchors(index, "obs", "open_span");
    raw.extend(anchors(index, "obs", "close_span"));
    if raw.is_empty() {
        return;
    }
    for (i, node) in index.nodes.iter().enumerate() {
        // `femux_obs` itself builds `SpanGuard` from the raw pair; the
        // contract binds everyone else in the deterministic tier.
        if node.class != CrateClass::Deterministic
            || node.crate_name == "obs"
            || !node.traversable()
        {
            continue;
        }
        for call in &node.info.calls {
            let last = call.path.last().map(String::as_str);
            let hit = matches!(last, Some("open_span" | "close_span"))
                || resolve(index, i, call)
                    .0
                    .iter()
                    .any(|c| raw.contains(c));
            if !hit {
                continue;
            }
            out.push(
                node.file,
                rule,
                call.line,
                call.col,
                format!(
                    "`{}` calls the raw span primitive `{}` from a \
                     deterministic crate: an early return or panic \
                     leaks the open span — hold a \
                     `femux_obs::span::SpanGuard` instead (its `Drop` \
                     closes the span on every path)",
                    node.display(),
                    last.unwrap_or("open_span"),
                ),
            );
        }
    }
}

//! `no-wallclock-entropy`: the deterministic crates must not read the
//! clock or an entropy source.
//!
//! The offline pipeline's contract is byte-identical output at any
//! thread count on any machine; `Instant::now()` / `SystemTime::now()`
//! and OS randomness (`RandomState`, `OsRng`, `thread_rng`,
//! `from_entropy`, `getrandom`) all smuggle the environment into the
//! computation. Runtime crates (`knative`, `bench`, `baselines`) are
//! exempt — measuring wall-clock is their job. Sites that only record
//! diagnostics (e.g. training wall-clock in `TrainStats`) carry an
//! `audit:allow` with the invariant spelled out.

use super::{FileContext, Rule, RuleOutput};
use crate::findings::{CrateClass, FileKind};
use crate::lexer::TokKind;

/// Identifiers that read the clock or an entropy source. Shared with
/// the interprocedural `wallclock-reachability` rule, whose sinks are
/// functions containing these tokens.
pub const FORBIDDEN: &[&str] = &[
    "Instant",
    "SystemTime",
    "RandomState",
    "OsRng",
    "ThreadRng",
    "thread_rng",
    "from_entropy",
    "getrandom",
];

/// See module docs.
pub struct NoWallclockEntropy;

impl Rule for NoWallclockEntropy {
    fn id(&self) -> &'static str {
        "no-wallclock-entropy"
    }

    fn describe(&self) -> &'static str {
        "deterministic crates must not read wall-clock time or entropy"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if cx.class != CrateClass::Deterministic
            || !matches!(cx.kind, FileKind::Lib | FileKind::Bin)
        {
            return;
        }
        // The telemetry crate's wall-clock module is the single
        // sanctioned timing site in the workspace: it is feature-gated,
        // runtime-gated behind `femux_obs::profiling()`, and records
        // only into `wall.*` metrics whose determinism is explicitly
        // waived. Everything else in `crates/obs` remains subject to
        // this rule.
        if cx.rel_path == "crates/obs/src/walltime.rs" {
            return;
        }
        for t in cx.toks {
            if t.kind != TokKind::Ident || cx.is_test_line(t.line) {
                continue;
            }
            if FORBIDDEN.contains(&t.text.as_str()) {
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    format!(
                        "`{}` in deterministic crate `{}`: wall-clock and \
                         entropy are forbidden here (use the seeded \
                         `femux_stats::rng::Rng`, or annotate a \
                         diagnostics-only site)",
                        t.text, cx.crate_name
                    ),
                );
            }
        }
    }
}

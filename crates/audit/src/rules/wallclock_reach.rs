//! `wallclock-reachability`: no call path from a deterministic crate's
//! public API into wall-clock or entropy reads.
//!
//! The local `no-wallclock-entropy` rule bans the forbidden
//! identifiers *textually inside* deterministic crates — it cannot see
//! a deterministic fn that stays token-clean and launders the clock
//! through a helper in a runtime crate:
//!
//! ```text
//! // crates/sim (deterministic, token-clean)
//! pub fn tick(..) { femux_knative::now_ms() }
//! // crates/knative (runtime, exempt from the local rule)
//! pub fn now_ms() -> u64 { Instant::now()... }
//! ```
//!
//! This rule closes that hole over the call graph. **Sinks** are
//! non-test production fns in *non-deterministic* crates whose bodies
//! contain a forbidden identifier (deterministic-crate bodies are the
//! local rule's jurisdiction; `crates/obs/src/walltime.rs` is the one
//! sanctioned timing site). **Entries** are `pub` fns of deterministic
//! crates. The finding is attributed to the first deterministic →
//! non-deterministic call edge on the offending path, which is where
//! the fix belongs.
//!
//! Precision: sink reachability and the crossing edge itself use only
//! *resolved* edges (path calls). Method-name widening would make any
//! `.run()` in a deterministic crate "reach" every runtime method
//! named `run`; widened edges are still used to over-approximate which
//! deterministic fns are publicly reachable, where over-approximation
//! only widens coverage, never invents a sink.

use std::collections::BTreeSet;

use super::{WorkspaceOutput, WorkspaceRule};
use crate::callgraph::CallGraph;
use crate::findings::CrateClass;
use crate::symbols::WorkspaceIndex;

/// The sanctioned wall-clock module (feature- and runtime-gated; its
/// determinism waiver is documented in `crates/obs`).
const SANCTIONED: &str = "crates/obs/src/walltime.rs";

/// See module docs.
pub struct WallclockReachability;

impl WorkspaceRule for WallclockReachability {
    fn id(&self) -> &'static str {
        "wallclock-reachability"
    }

    fn describe(&self) -> &'static str {
        "no call path from deterministic public fns to wall-clock or \
         entropy reads in runtime crates"
    }

    fn check(
        &self,
        index: &WorkspaceIndex,
        graph: &CallGraph,
        out: &mut WorkspaceOutput,
    ) {
        let n = index.nodes.len();
        let det = |i: usize| {
            index.nodes[i].class == CrateClass::Deterministic
        };
        // Sinks: non-deterministic production fns touching a forbidden
        // identifier.
        let sinks: BTreeSet<usize> = (0..n)
            .filter(|&i| {
                let node = &index.nodes[i];
                !det(i)
                    && node.traversable()
                    && !node.info.wall.is_empty()
                    && node.rel_path != SANCTIONED
            })
            .collect();
        if sinks.is_empty() {
            return;
        }
        // Reverse reachability to a sink over resolved edges only.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for caller in 0..n {
            if !index.nodes[caller].traversable() {
                continue;
            }
            for e in &graph.edges[caller] {
                if !e.widened && index.nodes[e.callee].traversable() {
                    rev[e.callee].push(caller);
                }
            }
        }
        let mut reaches_sink = vec![false; n];
        let mut frontier: Vec<usize> = sinks.iter().copied().collect();
        for &s in &frontier {
            reaches_sink[s] = true;
        }
        while let Some(at) = frontier.pop() {
            for &caller in &rev[at] {
                if !reaches_sink[caller] {
                    reaches_sink[caller] = true;
                    frontier.push(caller);
                }
            }
        }
        // Deterministic fns reachable from a deterministic public API
        // (widened edges allowed: over-approximates coverage only).
        let entries = (0..n).filter(|&i| {
            det(i) && index.nodes[i].info.is_pub
                && index.nodes[i].traversable()
        });
        let covered =
            graph.reachable(entries, |c| det(c) && index.nodes[c].traversable());
        // Report each deterministic -> non-deterministic resolved edge
        // whose callee reaches a sink.
        for &caller in &covered {
            if !det(caller) || !index.nodes[caller].traversable() {
                continue;
            }
            let mut seen_here: BTreeSet<(u32, u32, usize)> = BTreeSet::new();
            for e in &graph.edges[caller] {
                if e.widened
                    || det(e.callee)
                    || !index.nodes[e.callee].traversable()
                    || !reaches_sink[e.callee]
                    || !seen_here.insert((e.line, e.col, e.callee))
                {
                    continue;
                }
                let node = &index.nodes[caller];
                let chain = resolved_path(index, graph, e.callee, &sinks);
                out.push(
                    node.file,
                    self.id(),
                    e.line,
                    e.col,
                    format!(
                        "deterministic `{}` (crate `{}`) calls `{}`, \
                         which reaches wall-clock/entropy: {} — route \
                         timing through `femux_obs::walltime` or drop \
                         the dependency",
                        node.display(),
                        node.crate_name,
                        e.via,
                        chain,
                    ),
                );
            }
        }
    }
}

/// Renders the shortest resolved-edge path from `from` to a sink,
/// ending with the forbidden identifier and its location.
fn resolved_path(
    index: &WorkspaceIndex,
    graph: &CallGraph,
    from: usize,
    sinks: &BTreeSet<usize>,
) -> String {
    let n = index.nodes.len();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut queue = std::collections::VecDeque::from([from]);
    let mut hit = if sinks.contains(&from) { Some(from) } else { None };
    while hit.is_none() {
        let Some(at) = queue.pop_front() else { break };
        for e in &graph.edges[at] {
            if e.widened
                || seen[e.callee]
                || !index.nodes[e.callee].traversable()
            {
                continue;
            }
            seen[e.callee] = true;
            prev[e.callee] = Some(at);
            if sinks.contains(&e.callee) {
                hit = Some(e.callee);
                break;
            }
            queue.push_back(e.callee);
        }
    }
    let Some(end) = hit else {
        // Unreachable in practice: callers check reachability first.
        return "(path elided)".to_string();
    };
    let mut path = vec![end];
    let mut cur = end;
    while let Some(p) = prev[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    let names: Vec<String> = path
        .iter()
        .map(|&i| index.nodes[i].display())
        .collect();
    let sink = &index.nodes[end];
    let (ident, line, _) = &sink.info.wall[0];
    format!(
        "{} -> `{}` ({}:{})",
        names.join(" -> "),
        ident,
        sink.rel_path,
        line,
    )
}

//! `no-unordered-emit`: hash-ordered collections must not reach
//! deterministic output.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState` and on
//! insertion history, so any iteration that feeds an output file, a
//! report, or a floating-point accumulation is a reproducibility bug
//! waiting for a rehash. The rule has two tiers:
//!
//! 1. In **deterministic** crates, *any* use of `HashMap`/`HashSet` in
//!    non-test code is flagged — switch to `BTreeMap`/`BTreeSet` (same
//!    API surface here, ordered iteration) or annotate why hashing is
//!    required and iteration order provably never escapes.
//! 2. In **runtime** crates, declaring one is fine but *iterating* one
//!    is flagged: the rule tracks identifiers bound to a
//!    `HashMap`/`HashSet` (let-bindings and struct fields in the same
//!    file) and fires on `.iter()`, `.keys()`, `.values()`,
//!    `.drain()`, `.into_iter()`, `.into_keys()`, `.into_values()`,
//!    `.retain()` and `for … in [&[mut]] <name>` over them.
//!
//! This is a file-local, lexical approximation of a type analysis —
//! deliberately so: it catches the patterns that actually occur, and
//! the deterministic-crate tier is airtight where it matters most.

use super::{is_ident, is_punct, FileContext, Rule, RuleOutput};
use crate::findings::{CrateClass, FileKind};
use crate::lexer::TokKind;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// See module docs.
pub struct NoUnorderedEmit;

impl Rule for NoUnorderedEmit {
    fn id(&self) -> &'static str {
        "no-unordered-emit"
    }

    fn describe(&self) -> &'static str {
        "hash-ordered collections must not be used in deterministic \
         crates nor iterated in runtime library code"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if cx.class == CrateClass::Shim
            || !matches!(cx.kind, FileKind::Lib | FileKind::Bin)
        {
            return;
        }
        let toks = cx.toks;
        let mut bound: Vec<String> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || (t.text != "HashMap" && t.text != "HashSet")
            {
                continue;
            }
            if cx.class == CrateClass::Deterministic
                && !cx.is_test_line(t.line)
            {
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    format!(
                        "`{}` in deterministic crate `{}`: iteration order \
                         is nondeterministic — use BTreeMap/BTreeSet, or \
                         annotate why order can never reach output",
                        t.text, cx.crate_name
                    ),
                );
            }
            // Track what this map/set is bound to, for the iteration
            // tier. Walk back to the start of the statement looking
            // for `let [mut] <name>` or a struct-field `<name>:`.
            if let Some(name) = bound_name(toks, i) {
                if !bound.contains(&name) {
                    bound.push(name);
                }
            }
        }
        if cx.class == CrateClass::Deterministic || bound.is_empty() {
            return;
        }
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || cx.is_test_line(t.line) {
                continue;
            }
            // `<name>.method(` where method is an iteration method.
            if bound.contains(&t.text)
                && is_punct(toks, i + 1, '.')
                && toks.get(i + 2).is_some_and(|m| {
                    m.kind == TokKind::Ident
                        && ITER_METHODS.contains(&m.text.as_str())
                })
                && is_punct(toks, i + 3, '(')
            {
                let m = &toks[i + 2];
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    format!(
                        "iterating hash-ordered `{}` via `.{}()`: order is \
                         nondeterministic — sort first, switch to a BTree \
                         collection, or annotate why order is immaterial",
                        t.text, m.text
                    ),
                );
            }
            // `for <pat> in [&[mut]] <name> {`.
            if t.text == "in" {
                let mut j = i + 1;
                while is_punct(toks, j, '&') || is_ident(toks, j, "mut") {
                    j += 1;
                }
                if let Some(name_tok) = toks.get(j) {
                    if name_tok.kind == TokKind::Ident
                        && bound.contains(&name_tok.text)
                        && is_punct(toks, j + 1, '{')
                    {
                        out.push(
                            self.id(),
                            cx.rel_path,
                            name_tok.line,
                            name_tok.col,
                            format!(
                                "`for … in {}` iterates a hash-ordered \
                                 collection: order is nondeterministic",
                                name_tok.text
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Finds the identifier a `HashMap`/`HashSet` at `toks[at]` is bound
/// to, if the binding is visible lexically: `let [mut] name … = …` or
/// a struct field / parameter `name: …HashMap…`.
fn bound_name(
    toks: &[crate::lexer::Tok],
    at: usize,
) -> Option<String> {
    // Walk back to the statement/field start.
    let mut i = at;
    let mut steps = 0;
    while i > 0 && steps < 40 {
        let t = &toks[i - 1];
        if t.kind == TokKind::Punct
            && matches!(t.text.as_str(), ";" | "{" | "}" | ",")
        {
            break;
        }
        if t.kind == TokKind::Ident && t.text == "let" {
            // `let [mut] <name>`.
            let mut j = i;
            if is_ident(toks, j, "mut") {
                j += 1;
            }
            let name = toks.get(j)?;
            if name.kind == TokKind::Ident {
                return Some(name.text.clone());
            }
            return None;
        }
        i -= 1;
        steps += 1;
    }
    // Field/param form: `<name> : … HashMap`. After walking back, the
    // statement starts at `i`; accept `ident :` right there (possibly
    // after `pub`).
    let mut j = i;
    if is_ident(toks, j, "pub") {
        j += 1;
    }
    let name = toks.get(j)?;
    if name.kind == TokKind::Ident
        && is_punct(toks, j + 1, ':')
        && !is_punct(toks, j + 2, ':')
    {
        return Some(name.text.clone());
    }
    None
}

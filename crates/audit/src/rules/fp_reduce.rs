//! `sequential-fp-reduce`: parallel map closures must be pure.
//!
//! `femux_par::par_map`/`par_map_chunked`/`par_map_threads` guarantee
//! byte-identical output at any thread count *because* the closure is
//! a pure function of `(index, item)` and all combining happens on the
//! returned, index-ordered `Vec` — sequentially, on the caller's
//! thread. The one way to break that without touching `femux-par` is
//! to smuggle shared mutable state into the closure and accumulate in
//! completion order: a `Mutex<f64>` running sum, an atomic counter
//! that feeds output, a `RefCell` scratch buffer. Float addition is
//! not associative, so even a "harmless" shared sum changes results
//! with scheduling.
//!
//! The rule scans the argument list of every `par_map*` call and flags
//! shared-state and interior-mutability tokens inside it: `Mutex`,
//! `RwLock`, `RefCell`, `Cell`, `Atomic*`, `static`, `unsafe`, and
//! `.lock()` / `.borrow_mut()` calls. Combine results after the call
//! returns instead — iteration over the returned `Vec` is already
//! sequential and index-ordered.

use super::{is_punct, match_paren, FileContext, Rule, RuleOutput};
use crate::findings::FileKind;
use crate::lexer::TokKind;

const PAR_CALLS: &[&str] = &["par_map", "par_map_chunked", "par_map_threads"];

const SHARED_STATE: &[&str] =
    &["Mutex", "RwLock", "RefCell", "Cell", "static", "unsafe"];

const SHARED_METHODS: &[&str] = &["lock", "borrow_mut"];

/// See module docs.
pub struct SequentialFpReduce;

impl Rule for SequentialFpReduce {
    fn id(&self) -> &'static str {
        "sequential-fp-reduce"
    }

    fn describe(&self) -> &'static str {
        "par_map closures must not accumulate through shared mutable \
         state; combine results sequentially from the returned Vec"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if cx.kind == FileKind::Test {
            return;
        }
        let toks = cx.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || !PAR_CALLS.contains(&t.text.as_str())
                || !is_punct(toks, i + 1, '(')
                || cx.is_test_line(t.line)
            {
                continue;
            }
            let Some(close) = match_paren(toks, i + 1) else {
                continue;
            };
            for j in (i + 2)..close {
                let u = &toks[j];
                if u.kind != TokKind::Ident || cx.is_test_line(u.line) {
                    continue;
                }
                let shared = SHARED_STATE.contains(&u.text.as_str())
                    || u.text.starts_with("Atomic");
                let method = SHARED_METHODS.contains(&u.text.as_str())
                    && is_punct(toks, j.wrapping_sub(1), '.')
                    && is_punct(toks, j + 1, '(');
                if shared || method {
                    out.push(
                        self.id(),
                        cx.rel_path,
                        u.line,
                        u.col,
                        format!(
                            "`{}` inside a `{}` argument list: shared \
                             mutable state makes float accumulation \
                             depend on scheduling order — combine results \
                             sequentially from the returned Vec",
                            u.text, t.text
                        ),
                    );
                }
            }
        }
    }
}

//! `offline-deps`: every dependency must resolve inside the tree.
//!
//! PR 1 made the workspace fully self-contained — registry and git
//! dependencies cannot be fetched in the build environment, so a
//! version-only or git dependency is a build break waiting for a cold
//! cache. The rule parses every `Cargo.toml` (a minimal line-oriented
//! TOML walk; the manifests here are plain) and requires each entry in
//! a `*dependencies*` section to be a `path` dependency or
//! `workspace = true` (which resolves against the root
//! `[workspace.dependencies]`, itself audited the same way).

use super::{Rule, RuleOutput};

/// See module docs.
pub struct OfflineDeps;

impl Rule for OfflineDeps {
    fn id(&self) -> &'static str {
        "offline-deps"
    }

    fn describe(&self) -> &'static str {
        "every Cargo.toml dependency must be a path or workspace \
         dependency (offline build)"
    }

    fn check_manifest(
        &self,
        rel_path: &str,
        text: &str,
        out: &mut RuleOutput,
    ) {
        let mut section = String::new();
        // For `[dependencies.<name>]`-style tables: the header line
        // and whether a path/workspace key has been seen.
        let mut open_table: Option<(u32, String, bool)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.starts_with('[') {
                flush_table(self.id(), rel_path, &mut open_table, out);
                section = line
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .to_string();
                if let Some((head, name)) = section.rsplit_once('.') {
                    if head.ends_with("dependencies") {
                        open_table =
                            Some((lineno, name.to_string(), false));
                    }
                }
                continue;
            }
            if let Some((_, _, ok)) = open_table.as_mut() {
                let key = line.split('=').next().unwrap_or("").trim();
                if key == "path" || key == "workspace" {
                    *ok = true;
                }
                if key == "git" || key == "registry" {
                    *ok = false;
                }
                continue;
            }
            if !section.ends_with("dependencies") {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                continue;
            };
            let (name, value) = (name.trim(), value.trim());
            // Dotted-key form: `femux-stats.workspace = true`,
            // `foo.path = "…"` are offline; `foo.version = "1"` is not.
            if let Some((_, key)) = name.rsplit_once('.') {
                if key == "workspace" || key == "path" {
                    continue;
                }
            }
            let offline = if value.starts_with('{') {
                (value.contains("path") || value.contains("workspace"))
                    && !value.contains("git")
            } else {
                // `name = "1.0"` — a bare registry version.
                false
            };
            if !offline {
                out.push(
                    self.id(),
                    rel_path,
                    lineno,
                    1,
                    format!(
                        "dependency `{name}` in [{section}] is not a \
                         path/workspace dependency: the build must stay \
                         offline-resolvable"
                    ),
                );
            }
        }
        flush_table(self.id(), rel_path, &mut open_table, out);
    }
}

fn flush_table(
    rule: &'static str,
    rel_path: &str,
    open_table: &mut Option<(u32, String, bool)>,
    out: &mut RuleOutput,
) {
    if let Some((line, name, ok)) = open_table.take() {
        if !ok {
            out.push(
                rule,
                rel_path,
                line,
                1,
                format!(
                    "dependency table `{name}` has no path/workspace \
                     key: the build must stay offline-resolvable"
                ),
            );
        }
    }
}

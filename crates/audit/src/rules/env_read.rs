//! `no-env-read`: deterministic crates must not branch on the
//! process environment.
//!
//! `FEMUX_THREADS` is read in exactly one place — `femux-par`, whose
//! whole contract is that the value only changes *speed*. Any other
//! environment read inside the deterministic crates would let two
//! machines produce different pipelines from the same inputs, which
//! is how "works in CI, differs in prod" reproductions are born. The
//! rule flags `env::var`, `env::var_os`, `env::vars` and
//! `env::vars_os` in non-test code of deterministic crates.
//! (`std::env::args` is CLI input, not ambient state, and stays
//! allowed; compile-time `env!` is burned into the binary and is
//! deterministic per build.)

use super::{is_punct, FileContext, Rule, RuleOutput};
use crate::findings::{CrateClass, FileKind};
use crate::lexer::TokKind;

const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// See module docs.
pub struct NoEnvRead;

impl Rule for NoEnvRead {
    fn id(&self) -> &'static str {
        "no-env-read"
    }

    fn describe(&self) -> &'static str {
        "deterministic crates must not read environment variables"
    }

    fn check_source(&self, cx: &FileContext, out: &mut RuleOutput) {
        if cx.class != CrateClass::Deterministic
            || !matches!(cx.kind, FileKind::Lib | FileKind::Bin)
        {
            return;
        }
        let toks = cx.toks;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident
                || t.text != "env"
                || cx.is_test_line(t.line)
            {
                continue;
            }
            if is_punct(toks, i + 1, ':')
                && is_punct(toks, i + 2, ':')
                && toks.get(i + 3).is_some_and(|m| {
                    m.kind == TokKind::Ident
                        && ENV_READS.contains(&m.text.as_str())
                })
            {
                let m = &toks[i + 3];
                out.push(
                    self.id(),
                    cx.rel_path,
                    t.line,
                    t.col,
                    format!(
                        "`env::{}` in deterministic crate `{}`: ambient \
                         environment must not influence pipeline output",
                        m.text, cx.crate_name
                    ),
                );
            }
        }
    }
}

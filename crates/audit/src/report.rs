//! Report rendering: human-readable text and byte-stable JSON.
//!
//! The JSON writer is hand-rolled (the workspace is offline; no
//! serde) and deliberately boring: objects with a fixed key order,
//! inputs pre-sorted by the engine, no timestamps, no absolute paths.
//! Two runs over the same tree — at any `FEMUX_THREADS` — must
//! produce byte-identical output, because CI diffs it against a
//! committed baseline to detect finding drift.

use crate::engine::WorkspaceAudit;
use crate::findings::Finding;

/// Escapes a string for JSON.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"id\":\"{}\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\
         \"col\":{},\"message\":\"{}\"}}",
        esc(&f.id),
        esc(f.rule),
        esc(&f.file),
        f.line,
        f.col,
        esc(&f.message)
    )
}

/// Renders the audit as deterministic JSON.
pub fn render_json(audit: &WorkspaceAudit) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"femux_audit\": 2,\n  \"rules\": [");
    for (i, r) in audit.rules.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", esc(r)));
    }
    out.push_str("],\n  \"findings\": [");
    for (i, f) in audit.findings.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&finding_json(f));
    }
    if !audit.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"allowed\": [");
    for (i, s) in audit.allowed.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\
             \"reason\":\"{}\"}}",
            esc(&s.finding.id),
            esc(s.finding.rule),
            esc(&s.finding.file),
            s.finding.line,
            esc(&s.reason)
        ));
    }
    if !audit.allowed.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"unused_allows\": [");
    for (i, u) in audit.unused_allows.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\"}}",
            esc(&u.file),
            u.line,
            esc(&u.rule)
        ));
    }
    if !audit.unused_allows.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"malformed_allows\": [");
    for (i, m) in audit.malformed_allows.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(&m.file),
            m.line,
            esc(&m.message)
        ));
    }
    if !audit.malformed_allows.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"summary\": {{\"files_scanned\": {}, \"findings\": {}, \
         \"allowed\": {}, \"unused_allows\": {}, \"malformed_allows\": {}}}\n}}\n",
        audit.files_scanned,
        audit.findings.len(),
        audit.allowed.len(),
        audit.unused_allows.len(),
        audit.malformed_allows.len()
    ));
    out
}

/// Renders the audit for humans: `file:line:col: [rule] message`.
pub fn render_text(audit: &WorkspaceAudit) -> String {
    let mut out = String::new();
    for f in &audit.findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {} (id {})\n",
            f.file, f.line, f.col, f.rule, f.message, f.id
        ));
    }
    for u in &audit.unused_allows {
        out.push_str(&format!(
            "{}:{}: warning: unused audit:allow({}) — remove it\n",
            u.file, u.line, u.rule
        ));
    }
    for m in &audit.malformed_allows {
        out.push_str(&format!(
            "{}:{}: warning: malformed audit:allow — {}\n",
            m.file, m.line, m.message
        ));
    }
    out.push_str(&format!(
        "audit: {} file(s) scanned, {} finding(s), {} allowed, \
         {} unused allow(s), {} malformed allow(s)\n",
        audit.files_scanned,
        audit.findings.len(),
        audit.allowed.len(),
        audit.unused_allows.len(),
        audit.malformed_allows.len()
    ));
    out
}

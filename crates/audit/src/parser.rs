//! A recursive-descent parser for the Rust subset the audit needs.
//!
//! The workspace builds fully offline, so `syn` is unavailable; this
//! module parses the [`crate::lexer`] token stream directly into a
//! lightweight AST. It is *not* a general Rust parser — it recognises
//! exactly the shapes the rules reason about and skips everything
//! else structurally:
//!
//! - items: `fn`, `impl` (inherent and trait), `mod`, `trait` (for
//!   default method bodies), everything else as opaque [`ItemKind::Other`];
//! - fn signatures: name, `pub`-ness, parameter binding names, the
//!   body's token index range;
//! - expressions *inside* bodies, as a flat-per-nesting-level event
//!   list: free/path calls (`foo(..)`, `a::b::c(..)`), method calls
//!   (`.m(..)`, turbofish included), and closures (`|x| ..`,
//!   `move || ..`) with their parameter names and body ranges;
//! - `#[cfg(test)]` / `#[test]` attribution, inherited through
//!   enclosing items, so interprocedural rules can skip test code
//!   structurally.
//!
//! Like the lexer, the parser never fails: unrecognised constructs are
//! skipped token-by-token, and an unbalanced file simply yields fewer
//! items. Rules must therefore treat the AST as an *under*-
//! approximation of the source and keep token-level fallbacks where
//! soundness matters (see `DESIGN.md` § Static analysis v2).

use crate::lexer::{Tok, TokKind};

/// Parsed file: top-level items plus the token count (for range
/// sanity checks).
#[derive(Debug, Default)]
pub struct Ast {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// One item, with test attribution resolved.
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// 1-based line of the item's first token (after attributes).
    pub line: u32,
    /// 1-based line of the item's last token.
    pub end_line: u32,
    /// True when the item (or an enclosing item) is `#[cfg(test)]` /
    /// `#[test]`.
    pub cfg_test: bool,
}

/// Item payload.
#[derive(Debug)]
pub enum ItemKind {
    /// A function definition (free or method — methods live inside
    /// [`ItemKind::Impl`] / [`ItemKind::Trait`] items).
    Fn(Func),
    /// An `impl` block.
    Impl(ImplBlock),
    /// An inline `mod name { .. }`.
    Mod(Module),
    /// A `trait` declaration (kept for default method bodies).
    Trait(TraitBlock),
    /// Anything else (`struct`, `enum`, `use`, `const`, ...).
    Other,
}

/// A function definition.
#[derive(Debug)]
pub struct Func {
    /// Function name.
    pub name: String,
    /// True when declared with any `pub` visibility.
    pub is_pub: bool,
    /// Parameter binding names (`self` included when present).
    pub params: Vec<String>,
    /// 1-based line / column of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Body, when the fn has one (`None` for trait method signatures).
    pub body: Option<Block>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplBlock {
    /// Trait path segments when this is a trait impl (`impl A for B`).
    pub trait_path: Option<Vec<String>>,
    /// Last path segment of the implemented type.
    pub self_ty: String,
    /// Contained items (methods, consts).
    pub items: Vec<Item>,
}

/// An inline module.
#[derive(Debug)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Contained items.
    pub items: Vec<Item>,
}

/// A trait declaration.
#[derive(Debug)]
pub struct TraitBlock {
    /// Trait name.
    pub name: String,
    /// Contained items (default method bodies parse like fns).
    pub items: Vec<Item>,
}

/// A brace-delimited body (or single-expression closure body): the
/// covered token index range plus the interesting expressions found
/// at any nesting depth *outside* nested closures.
#[derive(Debug, Default)]
pub struct Block {
    /// Index of the first covered token (the `{` for braced bodies).
    pub start: usize,
    /// Index one past the last covered token.
    pub end: usize,
    /// Calls, method calls and closures, in source order.
    pub exprs: Vec<Expr>,
}

impl Block {
    /// Pre-order visit of every expression in the block, descending
    /// into call arguments and closure bodies.
    pub fn for_each_expr(&self, f: &mut impl FnMut(&Expr)) {
        fn walk(exprs: &[Expr], f: &mut impl FnMut(&Expr)) {
            for e in exprs {
                f(e);
                match e {
                    Expr::Call(c) => walk(&c.args, f),
                    Expr::Method(m) => walk(&m.args, f),
                    Expr::Closure(c) => walk(&c.body.exprs, f),
                }
            }
        }
        walk(&self.exprs, f);
    }
}

/// One interesting expression.
#[derive(Debug)]
pub enum Expr {
    /// `foo(..)` / `a::b::foo(..)` / `Type::assoc(..)`.
    Call(CallExpr),
    /// `.m(..)`.
    Method(MethodCallExpr),
    /// `|x| ..` / `move || ..`.
    Closure(ClosureExpr),
}

/// A free or path call.
#[derive(Debug)]
pub struct CallExpr {
    /// Path segments (`["femux_obs", "flush_thread"]`, `["helper"]`).
    pub path: Vec<String>,
    /// Position of the *last* path segment.
    pub line: u32,
    /// Column of the last path segment.
    pub col: u32,
    /// Token index of the opening `(`.
    pub args_start: usize,
    /// Token index of the matching `)`.
    pub args_end: usize,
    /// Interesting expressions inside the argument list.
    pub args: Vec<Expr>,
}

/// A method call.
#[derive(Debug)]
pub struct MethodCallExpr {
    /// Method name.
    pub method: String,
    /// Leftmost identifier of the receiver chain (`a` in
    /// `a.b.m(..)`), when the chain is a plain field path.
    pub recv_base: Option<String>,
    /// Position of the method name token.
    pub line: u32,
    /// Column of the method name token.
    pub col: u32,
    /// Token index of the opening `(`.
    pub args_start: usize,
    /// Token index of the matching `)`.
    pub args_end: usize,
    /// Interesting expressions inside the argument list.
    pub args: Vec<Expr>,
}

/// A closure literal.
#[derive(Debug)]
pub struct ClosureExpr {
    /// Parameter binding names.
    pub params: Vec<String>,
    /// Position of the opening `|`.
    pub line: u32,
    /// Column of the opening `|`.
    pub col: u32,
    /// Body range and nested expressions.
    pub body: Block,
}

impl Ast {
    /// Visits every fn in the file (at any item nesting) with its
    /// inherited test attribution.
    pub fn for_each_fn(&self, f: &mut impl FnMut(&Func, bool)) {
        fn walk(items: &[Item], in_test: bool, f: &mut impl FnMut(&Func, bool)) {
            for it in items {
                let test = in_test || it.cfg_test;
                match &it.kind {
                    ItemKind::Fn(func) => f(func, test),
                    ItemKind::Mod(m) => walk(&m.items, test, f),
                    ItemKind::Impl(i) => walk(&i.items, test, f),
                    ItemKind::Trait(t) => walk(&t.items, test, f),
                    ItemKind::Other => {}
                }
            }
        }
        walk(&self.items, false, f);
    }

    /// True when `line` falls inside a `#[cfg(test)]` / `#[test]`
    /// item per the structural attribution.
    pub fn in_test(&self, line: u32) -> bool {
        fn walk(items: &[Item], line: u32) -> bool {
            items.iter().any(|it| {
                if it.cfg_test && line >= it.line && line <= it.end_line {
                    return true;
                }
                match &it.kind {
                    ItemKind::Mod(m) => walk(&m.items, line),
                    ItemKind::Impl(i) => walk(&i.items, line),
                    ItemKind::Trait(t) => walk(&t.items, line),
                    _ => false,
                }
            })
        }
        walk(&self.items, line)
    }
}

/// Parses a token stream. Never fails; see module docs.
pub fn parse(toks: &[Tok]) -> Ast {
    let mut p = Parser { t: toks, i: 0 };
    Ast {
        items: p.items(false),
    }
}

struct Parser<'a> {
    t: &'a [Tok],
    i: usize,
}

/// Keywords that can never start a call even when followed by `(`.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break",
    "continue", "in", "as", "let", "mut", "ref", "move", "unsafe",
    "where", "dyn", "impl", "fn", "pub", "use", "mod", "struct", "enum",
    "trait", "type", "const", "static", "await", "async", "yield",
];

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&'a Tok> {
        self.t.get(i)
    }

    fn is_p(&self, i: usize, ch: char) -> bool {
        self.tok(i).is_some_and(|t| {
            t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(ch)
        })
    }

    fn is_kw(&self, i: usize, kw: &str) -> bool {
        self.tok(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == kw)
    }

    fn ident(&self, i: usize) -> Option<&'a str> {
        self.tok(i).and_then(|t| {
            (t.kind == TokKind::Ident).then_some(t.text.as_str())
        })
    }

    /// True when `toks[i]` and `toks[i+1]` are adjacent puncts (no
    /// whitespace), so `- >` is not mistaken for `->`.
    fn adjacent(&self, i: usize) -> bool {
        match (self.tok(i), self.tok(i + 1)) {
            (Some(a), Some(b)) => a.line == b.line && a.col + 1 == b.col,
            _ => false,
        }
    }

    /// Index just past the group opened at `open` (`(`/`[`/`{`),
    /// treating the three bracket kinds as one balanced alphabet.
    fn skip_group(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while let Some(t) = self.tok(i) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth <= 0 {
                            return i + 1;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        self.t.len()
    }

    /// Index just past a generic argument list opened at `open`
    /// (`<`). `->` and `=>` arrows do not close it.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while let Some(t) = self.tok(i) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        // `->` / `=>`: the `>` belongs to an arrow.
                        let arrow = i > 0
                            && self.adjacent(i - 1)
                            && self.tok(i - 1).is_some_and(|p| {
                                p.kind == TokKind::Punct
                                    && (p.text == "-" || p.text == "=")
                            });
                        if !arrow {
                            depth -= 1;
                            if depth <= 0 {
                                return i + 1;
                            }
                        }
                    }
                    "(" | "[" | "{" => {
                        i = self.skip_group(i);
                        continue;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        self.t.len()
    }

    /// Parses items until end of input, or until the next `}` when
    /// `in_braces` (the `}` is not consumed).
    fn items(&mut self, in_braces: bool) -> Vec<Item> {
        let mut out = Vec::new();
        loop {
            if self.i >= self.t.len() {
                break;
            }
            if in_braces && self.is_p(self.i, '}') {
                break;
            }
            match self.item() {
                Some(item) => out.push(item),
                None => self.i += 1,
            }
        }
        out
    }

    /// Attempts to parse one item at the cursor. Returns `None` when
    /// the cursor does not sit at anything item-shaped (caller skips
    /// one token).
    fn item(&mut self) -> Option<Item> {
        let cfg_test = self.attrs();
        let start = self.i;
        let mut i = self.i;
        let mut is_pub = false;
        if self.is_kw(i, "pub") {
            is_pub = true;
            i += 1;
            if self.is_p(i, '(') {
                i = self.skip_group(i);
            }
        }
        // Fn qualifiers, in any sane order.
        let mut j = i;
        while self.is_kw(j, "const")
            || self.is_kw(j, "async")
            || self.is_kw(j, "unsafe")
            || (self.is_kw(j, "extern")
                && self
                    .tok(j + 1)
                    .is_some_and(|t| t.kind == TokKind::Str))
        {
            j += if self.is_kw(j, "extern") { 2 } else { 1 };
        }
        if self.is_kw(j, "fn") {
            self.i = j + 1;
            return Some(self.func(is_pub, cfg_test, start));
        }
        if self.is_kw(i, "impl") {
            self.i = i + 1;
            return Some(self.impl_block(cfg_test, start));
        }
        if self.is_kw(i, "mod") && self.ident(i + 1).is_some() {
            let name = self.ident(i + 1).unwrap_or("").to_string();
            if self.is_p(i + 2, '{') {
                self.i = i + 3;
                let items = self.items(true);
                let end = self.i.min(self.t.len().saturating_sub(1));
                self.i += 1; // consume `}`
                return Some(self.mk_item(
                    ItemKind::Mod(Module { name, items }),
                    start,
                    end,
                    cfg_test,
                ));
            }
            if self.is_p(i + 2, ';') {
                self.i = i + 3;
                return Some(self.mk_item(ItemKind::Other, start, i + 2, cfg_test));
            }
        }
        if self.is_kw(i, "trait")
            || (self.is_kw(i, "unsafe") && self.is_kw(i + 1, "trait"))
        {
            let at = if self.is_kw(i, "trait") { i } else { i + 1 };
            let name = self.ident(at + 1).unwrap_or("").to_string();
            // Skip generics / supertrait bounds / where clause.
            let mut k = at + 2;
            while k < self.t.len() && !self.is_p(k, '{') && !self.is_p(k, ';') {
                if self.is_p(k, '<') {
                    k = self.skip_angles(k);
                } else {
                    k += 1;
                }
            }
            if self.is_p(k, '{') {
                self.i = k + 1;
                let items = self.items(true);
                let end = self.i.min(self.t.len().saturating_sub(1));
                self.i += 1;
                return Some(self.mk_item(
                    ItemKind::Trait(TraitBlock { name, items }),
                    start,
                    end,
                    cfg_test,
                ));
            }
            self.i = (k + 1).min(self.t.len());
            return Some(self.mk_item(ItemKind::Other, start, k, cfg_test));
        }
        // Opaque items: skip to `;` at depth 0 or past one brace group.
        const OPAQUE: &[&str] = &[
            "use", "type", "static", "const", "struct", "enum", "union",
            "extern", "macro_rules", "macro",
        ];
        if OPAQUE.iter().any(|k| self.is_kw(i, k)) {
            let mut k = i;
            while k < self.t.len() {
                if self.is_p(k, ';') {
                    k += 1;
                    break;
                }
                if self.is_p(k, '{') {
                    k = self.skip_group(k);
                    // `struct S { .. }` ends at the brace; tuple
                    // structs continue to `;`, handled above.
                    if !self.is_p(k, ';') {
                        break;
                    }
                    k += 1;
                    break;
                }
                // `(`/`[` groups may contain `;` (`[u8; 4]`); `<` is
                // deliberately *not* angle-skipped here — a shift in a
                // const initializer must not swallow the file.
                if self.is_p(k, '(') || self.is_p(k, '[') {
                    k = self.skip_group(k);
                    continue;
                }
                k += 1;
            }
            let end = k.saturating_sub(1).max(start);
            self.i = k;
            return Some(self.mk_item(ItemKind::Other, start, end, cfg_test));
        }
        // `pub` consumed but nothing recognised after it: restore.
        self.i = start;
        None
    }

    fn mk_item(
        &self,
        kind: ItemKind,
        start: usize,
        end: usize,
        cfg_test: bool,
    ) -> Item {
        let line = self.t.get(start).map_or(0, |t| t.line);
        let end_line = self
            .t
            .get(end.min(self.t.len().saturating_sub(1)))
            .map_or(line, |t| t.line);
        Item {
            kind,
            line,
            end_line: end_line.max(line),
            cfg_test,
        }
    }

    /// Consumes leading `#[..]` / `#![..]` attribute groups; true when
    /// any marks a test item (contains `test`, without `not`).
    fn attrs(&mut self) -> bool {
        let mut cfg_test = false;
        while self.is_p(self.i, '#') {
            let mut j = self.i + 1;
            if self.is_p(j, '!') {
                j += 1;
            }
            if !self.is_p(j, '[') {
                break;
            }
            let end = self.skip_group(j);
            let mut has_test = false;
            let mut has_not = false;
            for k in j..end {
                if let Some(id) = self.ident(k) {
                    has_test |= id == "test";
                    has_not |= id == "not";
                }
            }
            cfg_test |= has_test && !has_not;
            self.i = end;
        }
        cfg_test
    }

    /// Parses a fn whose `fn` keyword is already consumed.
    fn func(&mut self, is_pub: bool, cfg_test: bool, start: usize) -> Item {
        let (name, line, col) = match self.tok(self.i) {
            Some(t) if t.kind == TokKind::Ident => {
                (t.text.clone(), t.line, t.col)
            }
            _ => (String::new(), 0, 0),
        };
        self.i += 1;
        if self.is_p(self.i, '<') {
            self.i = self.skip_angles(self.i);
        }
        let mut params = Vec::new();
        if self.is_p(self.i, '(') {
            let close = self.skip_group(self.i);
            params = self.param_names(self.i + 1, close.saturating_sub(1));
            self.i = close;
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        while self.i < self.t.len()
            && !self.is_p(self.i, '{')
            && !self.is_p(self.i, ';')
        {
            if self.is_p(self.i, '<') {
                self.i = self.skip_angles(self.i);
            } else {
                self.i += 1;
            }
        }
        let body = if self.is_p(self.i, '{') {
            Some(self.block())
        } else {
            self.i = (self.i + 1).min(self.t.len());
            None
        };
        let end = self.i.saturating_sub(1).max(start);
        self.mk_item(
            ItemKind::Fn(Func {
                name,
                is_pub,
                params,
                line,
                col,
                body,
            }),
            start,
            end,
            cfg_test,
        )
    }

    /// Extracts binding names from a parameter list token range: for
    /// each comma-separated segment, the identifiers before the first
    /// top-level `:` (so `mut name: T` and `(a, b): T` both work), or
    /// `self` for receiver shorthand.
    fn param_names(&self, from: usize, to: usize) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i32;
        let mut seen_colon = false;
        for k in from..to.min(self.t.len()) {
            let t = &self.t[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "<" | "{" => depth += 1,
                    ")" | "]" | ">" | "}" => depth -= 1,
                    ":" if depth == 0 => {
                        // `::` in a default-type path would be two
                        // colons; both set the flag, harmlessly.
                        seen_colon = true;
                    }
                    "," if depth <= 0 => seen_colon = false,
                    _ => {}
                }
                continue;
            }
            if t.kind == TokKind::Ident && !seen_colon && t.text != "mut" {
                names.push(t.text.clone());
            }
        }
        names
    }

    /// Parses an `impl` block whose `impl` keyword is consumed.
    fn impl_block(&mut self, cfg_test: bool, start: usize) -> Item {
        if self.is_p(self.i, '<') {
            self.i = self.skip_angles(self.i);
        }
        let first = self.type_path();
        let (trait_path, self_ty) = if self.is_kw(self.i, "for") {
            self.i += 1;
            let ty = self.type_path();
            (Some(first), ty.last().cloned().unwrap_or_default())
        } else {
            (None, first.last().cloned().unwrap_or_default())
        };
        // where clause / nothing, then the body.
        while self.i < self.t.len() && !self.is_p(self.i, '{') {
            if self.is_p(self.i, '<') {
                self.i = self.skip_angles(self.i);
            } else {
                self.i += 1;
            }
        }
        let mut items = Vec::new();
        if self.is_p(self.i, '{') {
            self.i += 1;
            items = self.items(true);
            self.i += 1; // `}`
        }
        let end = self.i.saturating_sub(1).max(start);
        self.mk_item(
            ItemKind::Impl(ImplBlock {
                trait_path,
                self_ty,
                items,
            }),
            start,
            end,
            cfg_test,
        )
    }

    /// Parses a type path at the cursor (`a::b::C<..>`, `&mut C`,
    /// `dyn C`), returning its identifier segments.
    fn type_path(&mut self) -> Vec<String> {
        let mut segs = Vec::new();
        loop {
            match self.tok(self.i) {
                Some(t) if t.kind == TokKind::Ident => {
                    if t.text == "for" || t.text == "where" {
                        break;
                    }
                    if t.text != "dyn" && t.text != "mut" {
                        segs.push(t.text.clone());
                    }
                    self.i += 1;
                }
                Some(t)
                    if t.kind == TokKind::Punct
                        && (t.text == "&" || t.text == ":") =>
                {
                    self.i += 1;
                }
                Some(t) if t.kind == TokKind::Punct && t.text == "<" => {
                    self.i = self.skip_angles(self.i);
                }
                Some(t) if t.kind == TokKind::Lifetime => {
                    self.i += 1;
                }
                _ => break,
            }
        }
        segs
    }

    /// Parses a braced block starting at the current `{`; returns its
    /// expression events and advances past the matching `}`.
    fn block(&mut self) -> Block {
        let start = self.i;
        let end = self.skip_group(start);
        let exprs = self.scan_exprs(start + 1, end.saturating_sub(1));
        self.i = end;
        Block { start, end, exprs }
    }

    /// Scans `[from, to)` for calls, method calls and closures.
    /// Nested groups are scanned inline except closure bodies and call
    /// argument lists, which own their sub-expressions.
    fn scan_exprs(&self, from: usize, to: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut k = from;
        let to = to.min(self.t.len());
        while k < to {
            let t = &self.t[k];
            // Attribute groups inside bodies (`#[cfg(..)] stmt`).
            if t.kind == TokKind::Punct && t.text == "#" && self.is_p(k + 1, '[')
            {
                k = self.skip_group(k + 1);
                continue;
            }
            // Closure?
            if t.kind == TokKind::Punct && t.text == "|" && self.closure_at(k) {
                let (expr, next) = self.closure(k, to);
                out.push(Expr::Closure(expr));
                k = next;
                continue;
            }
            // Path or free call?
            if t.kind == TokKind::Ident
                && !EXPR_KEYWORDS.contains(&t.text.as_str())
            {
                if let Some((expr, next)) = self.call(k, to) {
                    out.push(Expr::Call(expr));
                    k = next;
                    continue;
                }
            }
            // Method call?
            if t.kind == TokKind::Punct && t.text == "." {
                if let Some((expr, next)) = self.method(k, to) {
                    out.push(Expr::Method(expr));
                    k = next;
                    continue;
                }
            }
            k += 1;
        }
        out
    }

    /// True when the `|` at `k` starts a closure rather than a binary
    /// or-expression: the previous token cannot end an operand.
    fn closure_at(&self, k: usize) -> bool {
        // `a || b` lexes as two adjacent pipes: the first follows an
        // operand (not a closure start), and the second must not be
        // re-tested on its own — a pipe after a pipe is either an
        // or-expression or the tail of `||` params, never a new
        // closure.
        match self.tok(k.wrapping_sub(1)) {
            None => true,
            Some(p) => match p.kind {
                TokKind::Ident => {
                    matches!(p.text.as_str(), "move" | "return" | "else"
                        | "in" | "if" | "match" | "while")
                }
                TokKind::Int | TokKind::Float | TokKind::Str
                | TokKind::Char | TokKind::Lifetime => false,
                TokKind::Punct => {
                    !matches!(p.text.as_str(), ")" | "]" | "?" | "|")
                }
            },
        }
    }

    /// Parses the closure whose opening `|` sits at `k`; `limit` caps
    /// a braceless body. Returns the expression and the index to
    /// resume scanning at.
    fn closure(&self, k: usize, limit: usize) -> (ClosureExpr, usize) {
        let (line, col) = (self.t[k].line, self.t[k].col);
        // `||` (empty parameter list): two adjacent pipes.
        let (params, body_at) = if self.is_p(k + 1, '|') && self.adjacent(k) {
            (Vec::new(), k + 2)
        } else {
            let mut close = k + 1;
            let mut depth = 0i32;
            while close < self.t.len() {
                let t = &self.t[close];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" | ">" => depth -= 1,
                        "|" if depth <= 0 => break,
                        _ => {}
                    }
                }
                close += 1;
            }
            (self.param_names(k + 1, close), close + 1)
        };
        let (body, next) = if self.is_p(body_at, '{') {
            let end = self.skip_group(body_at);
            let exprs = self.scan_exprs(body_at + 1, end.saturating_sub(1));
            (
                Block {
                    start: body_at,
                    end,
                    exprs,
                },
                end,
            )
        } else {
            // Braceless body: runs to the next `,`/`;` at depth 0, a
            // closing delimiter, or `limit`.
            let mut end = body_at;
            let mut depth = 0i32;
            while end < limit {
                let t = &self.t[end];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "," | ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                end += 1;
            }
            let exprs = self.scan_exprs(body_at, end);
            (
                Block {
                    start: body_at,
                    end,
                    exprs,
                },
                end,
            )
        };
        (
            ClosureExpr {
                params,
                line,
                col,
                body,
            },
            next,
        )
    }

    /// Parses a call whose first path segment sits at `k`. Returns
    /// `None` when no `(` follows the path (e.g. a plain expression
    /// identifier or a macro invocation).
    fn call(&self, k: usize, limit: usize) -> Option<(CallExpr, usize)> {
        // A path segment preceded by `.` belongs to a method chain.
        if self
            .tok(k.wrapping_sub(1))
            .is_some_and(|p| p.kind == TokKind::Punct && p.text == ".")
        {
            return None;
        }
        let mut path = vec![self.t[k].text.clone()];
        let (mut line, mut col) = (self.t[k].line, self.t[k].col);
        let mut j = k + 1;
        loop {
            if self.is_p(j, ':') && self.is_p(j + 1, ':') && self.adjacent(j) {
                // Turbofish: `path::<T>(..)`.
                if self.is_p(j + 2, '<') {
                    j = self.skip_angles(j + 2);
                    break;
                }
                match self.ident(j + 2) {
                    Some(seg) => {
                        path.push(seg.to_string());
                        line = self.t[j + 2].line;
                        col = self.t[j + 2].col;
                        j += 3;
                    }
                    None => return None,
                }
            } else {
                break;
            }
        }
        if !self.is_p(j, '(') || j >= limit {
            return None;
        }
        let args_end = self.skip_group(j).saturating_sub(1);
        let args = self.scan_exprs(j + 1, args_end);
        Some((
            CallExpr {
                path,
                line,
                col,
                args_start: j,
                args_end,
                args,
            },
            args_end + 1,
        ))
    }

    /// Parses a method call whose `.` sits at `k`.
    fn method(&self, k: usize, limit: usize) -> Option<(MethodCallExpr, usize)> {
        let name = self.ident(k + 1)?;
        let mut j = k + 2;
        // Turbofish between name and argument list.
        if self.is_p(j, ':') && self.is_p(j + 1, ':') && self.is_p(j + 2, '<') {
            j = self.skip_angles(j + 2);
        }
        if !self.is_p(j, '(') || j >= limit {
            return None;
        }
        // Receiver chain: walk back over `ident(.ident)*`.
        let mut recv_base = None;
        let mut b = k;
        while b >= 2
            && self
                .tok(b - 1)
                .is_some_and(|t| t.kind == TokKind::Ident)
        {
            let prev = self.tok(b - 2);
            recv_base = Some(self.t[b - 1].text.clone());
            match prev {
                Some(p) if p.kind == TokKind::Punct && p.text == "." => {
                    b -= 2;
                }
                _ => break,
            }
        }
        if b == 1 && self.tok(0).is_some_and(|t| t.kind == TokKind::Ident) {
            recv_base = Some(self.t[0].text.clone());
        }
        let args_end = self.skip_group(j).saturating_sub(1);
        let args = self.scan_exprs(j + 1, args_end);
        Some((
            MethodCallExpr {
                method: name.to_string(),
                recv_base,
                line: self.t[k + 1].line,
                col: self.t[k + 1].col,
                args_start: j,
                args_end,
                args,
            },
            args_end + 1,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast(src: &str) -> Ast {
        parse(&lex(src).toks)
    }

    fn fns(items: &[Item]) -> Vec<&Func> {
        let mut out = Vec::new();
        fn walk<'a>(items: &'a [Item], out: &mut Vec<&'a Func>) {
            for it in items {
                match &it.kind {
                    ItemKind::Fn(f) => out.push(f),
                    ItemKind::Mod(m) => walk(&m.items, out),
                    ItemKind::Impl(i) => walk(&i.items, out),
                    ItemKind::Trait(t) => walk(&t.items, out),
                    ItemKind::Other => {}
                }
            }
        }
        walk(items, &mut out);
        out
    }

    #[test]
    fn parses_fn_signature_and_calls() {
        let a = ast("pub fn run(n: usize, mut out: Vec<u64>) -> usize {\n\
                     let x = helper(n);\n    x.finish()\n}");
        let f = &fns(&a.items)[0];
        assert_eq!(f.name, "run");
        assert!(f.is_pub);
        assert_eq!(f.params, vec!["n", "out"]);
        let body = f.body.as_ref().expect("body");
        assert_eq!(body.exprs.len(), 2);
        match (&body.exprs[0], &body.exprs[1]) {
            (Expr::Call(c), Expr::Method(m)) => {
                assert_eq!(c.path, vec!["helper"]);
                assert_eq!(m.method, "finish");
                assert_eq!(m.recv_base.as_deref(), Some("x"));
            }
            other => panic!("unexpected exprs: {other:?}"),
        }
    }

    #[test]
    fn parses_trait_impl_with_methods() {
        let a = ast(
            "impl femux_sim::ScalingPolicy for KeepAlivePolicy {\n\
             fn target_pods(&mut self) -> usize { self.n }\n}",
        );
        match &a.items[0].kind {
            ItemKind::Impl(ib) => {
                assert_eq!(
                    ib.trait_path.as_deref(),
                    Some(&["femux_sim".to_string(), "ScalingPolicy".into()][..])
                );
                assert_eq!(ib.self_ty, "KeepAlivePolicy");
                assert_eq!(fns(&ib.items)[0].name, "target_pods");
            }
            other => panic!("expected impl, got {other:?}"),
        }
    }

    #[test]
    fn closures_and_path_calls_nest_inside_args() {
        let a = ast(
            "fn go(items: &[u64]) -> Vec<u64> {\n\
             femux_par::par_map(items, |i, x| helper(i) + *x)\n}",
        );
        let f = &fns(&a.items)[0];
        let body = f.body.as_ref().unwrap();
        let Expr::Call(c) = &body.exprs[0] else {
            panic!("expected call");
        };
        assert_eq!(c.path, vec!["femux_par", "par_map"]);
        let Expr::Closure(cl) = &c.args[0] else {
            panic!("expected closure arg, got {:?}", c.args);
        };
        assert_eq!(cl.params, vec!["i", "x"]);
        match &cl.body.exprs[0] {
            Expr::Call(inner) => assert_eq!(inner.path, vec!["helper"]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipes_after_operands_are_not_closures() {
        let a = ast("fn f(a: bool, b: bool) -> bool { a | b }");
        let f = &fns(&a.items)[0];
        assert!(f.body.as_ref().unwrap().exprs.is_empty());
    }

    #[test]
    fn cfg_test_items_attribute_their_lines() {
        let a = ast(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        );
        assert!(!a.in_test(1));
        assert!(a.in_test(4));
    }

    #[test]
    fn turbofish_and_method_chains_parse() {
        let a = ast(
            "fn f(v: Vec<f64>) -> f64 {\n\
             v.iter().copied().sum::<f64>()\n}",
        );
        let f = &fns(&a.items)[0];
        let methods: Vec<&str> = f
            .body
            .as_ref()
            .unwrap()
            .exprs
            .iter()
            .filter_map(|e| match e {
                Expr::Method(m) => Some(m.method.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(methods, vec!["iter", "copied", "sum"]);
    }

    #[test]
    fn default_trait_methods_keep_their_bodies() {
        let a = ast(
            "pub trait Policy {\n    fn target(&mut self) -> usize;\n\
             fn tick_idle(&mut self) -> usize { self.target() }\n}",
        );
        let all = fns(&a.items);
        assert_eq!(all.len(), 2);
        assert!(all[0].body.is_none());
        assert!(all[1].body.is_some());
    }
}

//! `femux-audit` — in-tree determinism & correctness static analysis.
//!
//! PR 1 gave the offline pipeline a hard guarantee: byte-identical
//! output at any thread count. This crate turns that guarantee (and
//! the workspace's offline-build and no-panic hygiene) from reviewer
//! vigilance into a machine-checked gate. It is a dependency-free
//! static-analysis pipeline: a hand-rolled Rust [`lexer`], a
//! recursive-descent [`parser`] producing a lightweight AST, per-file
//! function facts ([`symbols`]) merged into a workspace symbol table,
//! an approximate [`callgraph`], and a two-tier [`rules`] engine
//! (local per-file rules in parallel, interprocedural rules over the
//! merged graph) with stable finding ids, per-site
//! `// audit:allow(<rule>, reason = "…")` suppressions ([`allow`]),
//! and human/JSON reporters ([`report`]).
//!
//! Shipped local rules:
//!
//! | id | invariant |
//! |---|---|
//! | `no-wallclock-entropy` | deterministic crates never read clock/entropy |
//! | `no-unordered-emit` | hash-ordered collections never reach output |
//! | `sequential-fp-reduce` | `par_map` arguments carry no shared state |
//! | `panic-path` | library code has no undocumented panic paths |
//! | `lossy-cast` | no truncating casts in rum/sim accumulation |
//! | `offline-deps` | every dependency is a path/workspace dependency |
//! | `no-env-read` | deterministic crates never read the environment |
//! | `par-closure-purity` | `par_map` closures capture no mutable accumulators |
//! | `fault-draw-order` | per-tick fault draws keep the documented order |
//!
//! Interprocedural rules (over the workspace call graph):
//!
//! | id | invariant |
//! |---|---|
//! | `wallclock-reachability` | no call path from deterministic public fns to clock/entropy |
//! | `contract-impl` | trait impls complete their semantic contract (forecast sanitation, `tick_idle` equivalence tests, worker flush) |
//!
//! The pass runs three ways: the `femux-audit` binary, the tier-1
//! integration test `tests/audit_clean.rs` (zero unannotated findings
//! over the workspace, byte-identical report at any `FEMUX_THREADS`),
//! and the CI `audit` job (which also diffs the JSON report against
//! `crates/audit/workspace-baseline.json` so annotation drift is an
//! explicit review event).

pub mod allow;
pub mod callgraph;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod workspace;

pub use engine::{
    audit_manifest, audit_source, audit_sources, scan_workspace, FileAudit,
    SourceSpec, WorkspaceAudit,
};
pub use findings::{finding_id, CrateClass, FileKind, Finding};
pub use report::{render_json, render_text};
pub use workspace::{find_workspace_root, DETERMINISTIC_CRATES};

//! `femux-audit` — in-tree determinism & correctness static analysis.
//!
//! PR 1 gave the offline pipeline a hard guarantee: byte-identical
//! output at any thread count. This crate turns that guarantee (and
//! the workspace's offline-build and no-panic hygiene) from reviewer
//! vigilance into a machine-checked gate. It is a dependency-free
//! static-analysis pass — a hand-rolled Rust [`lexer`] feeding a
//! [`rules`] engine with stable finding ids, per-site
//! `// audit:allow(<rule>, reason = "…")` suppressions ([`allow`]),
//! and human/JSON reporters ([`report`]).
//!
//! Shipped rules:
//!
//! | id | invariant |
//! |---|---|
//! | `no-wallclock-entropy` | deterministic crates never read clock/entropy |
//! | `no-unordered-emit` | hash-ordered collections never reach output |
//! | `sequential-fp-reduce` | `par_map` closures stay pure; combining is sequential |
//! | `panic-path` | library code has no undocumented panic paths |
//! | `lossy-cast` | no truncating casts in rum/sim accumulation |
//! | `offline-deps` | every dependency is a path/workspace dependency |
//! | `no-env-read` | deterministic crates never read the environment |
//!
//! The pass runs three ways: the `femux-audit` binary, the tier-1
//! integration test `tests/audit_clean.rs` (zero unannotated findings
//! over the workspace), and the CI `audit` job (which also diffs the
//! JSON report against `crates/audit/workspace-baseline.json` so
//! annotation drift is an explicit review event).

pub mod allow;
pub mod engine;
pub mod findings;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod workspace;

pub use engine::{
    audit_manifest, audit_source, scan_workspace, FileAudit, WorkspaceAudit,
};
pub use findings::{finding_id, CrateClass, FileKind, Finding};
pub use report::{render_json, render_text};
pub use workspace::{find_workspace_root, DETERMINISTIC_CRATES};

//! A hand-rolled Rust lexer, just deep enough for auditing.
//!
//! The workspace builds fully offline, so we cannot lean on `syn` or
//! `proc-macro2`; instead this module tokenizes Rust source directly.
//! The rules only need a faithful *token* stream — they never parse
//! expressions — but faithful tokenization is non-negotiable: a rule
//! must not fire on `"Instant"` inside a string literal or on
//! `.unwrap()` quoted in a doc comment. The lexer therefore handles
//! every literal form that can hide rule-relevant text:
//!
//! - line comments (`//`, `///`, `//!`) and *nested* block comments,
//!   kept separately so [`crate::allow`] can read annotations;
//! - string, raw-string (`r#"…"#` with any `#` depth), byte-string and
//!   byte-raw-string literals;
//! - char literals vs. lifetimes (`'a'` vs `'a`), including escapes;
//! - numeric literals with underscores, exponents and type suffixes;
//! - raw identifiers (`r#type`).
//!
//! Everything else becomes single-character [`TokKind::Punct`] tokens —
//! rules that need `::` or `#[…]` match consecutive puncts.
//!
//! The lexer never fails: unterminated literals simply run to the end
//! of input, which is the most useful behaviour for an auditor that
//! must keep scanning the rest of the workspace.

/// What a code token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `as`, `HashMap`, `r#type`).
    Ident,
    /// Integer literal.
    Int,
    /// Float literal.
    Float,
    /// String literal of any form (escaped, raw, byte).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`), without the quote in `text`.
    Lifetime,
    /// Any single punctuation character.
    Punct,
}

/// One code token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is the *content* with the
    /// delimiters stripped (escapes left as written); for raw
    /// identifiers the `r#` prefix is stripped so rules compare names.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
}

/// One comment with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without delimiters (`//`, `/* */`).
    pub text: String,
    /// 1-based line of the comment start.
    pub line: u32,
    /// True when only whitespace precedes the comment on its line, so
    /// an `audit:allow` in it targets the *next* code line rather than
    /// its own.
    pub own_line: bool,
}

/// Lexer output: code tokens and comments, in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Comments (line and block).
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    /// Lookahead buffer (we need at most 3 chars of lookahead).
    peeked: Vec<char>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars(),
            peeked: Vec::new(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self, n: usize) -> Option<char> {
        while self.peeked.len() <= n {
            self.peeked.push(self.chars.next()?);
        }
        self.peeked.get(n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = if self.peeked.is_empty() {
            self.chars.next()?
        } else {
            self.peeked.remove(0)
        };
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`. Never fails; see module docs for the guarantees.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    // Tracks whether any code token has been seen on the current line,
    // to classify comments as own-line or trailing.
    let mut code_on_line: Option<u32> = None;
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let code_seen_here = code_on_line == Some(line);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                line,
                own_line: !code_seen_here,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        if depth > 0 {
                            text.push_str("*/");
                        }
                        cur.bump();
                        cur.bump();
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                text,
                line,
                own_line: !code_seen_here,
            });
            continue;
        }
        code_on_line = Some(line);
        // Raw strings / raw identifiers / byte strings.
        if c == 'r' || c == 'b' {
            if let Some(tok) = lex_prefixed(&mut cur, line, col) {
                out.toks.push(tok);
                continue;
            }
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if !is_ident_continue(ch) {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            out.toks.push(lex_number(&mut cur, line, col));
            continue;
        }
        if c == '"' {
            cur.bump();
            let text = lex_escaped_until(&mut cur, '"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            out.toks.push(lex_quote(&mut cur, line, col));
            continue;
        }
        cur.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    out
}

/// Lexes tokens that start with `r` or `b`: raw strings, raw idents,
/// byte strings, byte chars. Returns `None` when the prefix turns out
/// to start a plain identifier (caller lexes it).
fn lex_prefixed(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let first = cur.peek(0)?;
    match (first, cur.peek(1), cur.peek(2)) {
        // r"..." or r#"..."# (any hash depth) — raw string.
        ('r', Some('"'), _) | ('r', Some('#'), _) => {
            // r#ident is a raw identifier, not a raw string: the char
            // after the hashes must be a quote for a string.
            let mut hashes = 0usize;
            while cur.peek(1 + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(1 + hashes) != Some('"') {
                if hashes == 1 && cur.peek(2).is_some_and(is_ident_start) {
                    cur.bump(); // r
                    cur.bump(); // #
                    let mut text = String::new();
                    while let Some(ch) = cur.peek(0) {
                        if !is_ident_continue(ch) {
                            break;
                        }
                        text.push(ch);
                        cur.bump();
                    }
                    return Some(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                        col,
                    });
                }
                return None;
            }
            cur.bump(); // r
            for _ in 0..hashes {
                cur.bump();
            }
            cur.bump(); // opening quote
            let text = lex_raw_until(cur, hashes);
            Some(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            })
        }
        // b"..."  byte string.
        ('b', Some('"'), _) => {
            cur.bump();
            cur.bump();
            let text = lex_escaped_until(cur, '"');
            Some(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            })
        }
        // br"..." / br#"..."# byte raw string.
        ('b', Some('r'), Some('"')) | ('b', Some('r'), Some('#')) => {
            cur.bump(); // b
            let mut hashes = 0usize;
            while cur.peek(1 + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(1 + hashes) != Some('"') {
                return None;
            }
            cur.bump(); // r
            for _ in 0..hashes {
                cur.bump();
            }
            cur.bump(); // opening quote
            let text = lex_raw_until(cur, hashes);
            Some(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            })
        }
        // b'x' byte char.
        ('b', Some('\''), _) => {
            cur.bump();
            Some(lex_quote(cur, line, col))
        }
        _ => None,
    }
}

/// Consumes an escaped literal up to an unescaped `delim`; the opening
/// delimiter is already consumed. Returns the content.
fn lex_escaped_until(cur: &mut Cursor, delim: char) -> String {
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.peek(0) {
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        cur.bump();
        if ch == delim {
            break;
        }
        text.push(ch);
    }
    text
}

/// Consumes a raw-string body up to `"` followed by `hashes` hashes.
fn lex_raw_until(cur: &mut Cursor, hashes: usize) -> String {
    let mut text = String::new();
    'outer: while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            let mut ok = true;
            for i in 0..hashes {
                if cur.peek(1 + i) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for _ in 0..=hashes {
                    cur.bump();
                }
                break 'outer;
            }
        }
        text.push(ch);
        cur.bump();
    }
    text
}

/// Lexes `'…` as either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    cur.bump(); // opening quote
    // '\...' is always a char literal.
    if cur.peek(0) == Some('\\') {
        let text = lex_escaped_until(cur, '\'');
        return Tok {
            kind: TokKind::Char,
            text,
            line,
            col,
        };
    }
    // 'x' (quote two ahead) is a char literal; otherwise a lifetime.
    if cur.peek(1) == Some('\'') {
        let text = lex_escaped_until(cur, '\'');
        return Tok {
            kind: TokKind::Char,
            text,
            line,
            col,
        };
    }
    let mut text = String::new();
    while let Some(ch) = cur.peek(0) {
        if !is_ident_continue(ch) {
            break;
        }
        text.push(ch);
        cur.bump();
    }
    Tok {
        kind: TokKind::Lifetime,
        text,
        line,
        col,
    }
}

fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut kind = TokKind::Int;
    // Integer part (also covers 0x/0b/0o digits and suffixes).
    while let Some(ch) = cur.peek(0) {
        if ch.is_alphanumeric() || ch == '_' {
            if ch == 'e' || ch == 'E' {
                // Exponent only applies once a '.' or decimal context
                // is seen; hex digits also include 'e'. Treat as part
                // of the literal either way.
            }
            text.push(ch);
            cur.bump();
            continue;
        }
        break;
    }
    // Fractional part: '.' followed by a digit (not `..` or a method).
    if cur.peek(0) == Some('.')
        && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
    {
        kind = TokKind::Float;
        text.push('.');
        cur.bump();
        while let Some(ch) = cur.peek(0) {
            if ch.is_alphanumeric() || ch == '_' {
                text.push(ch);
                cur.bump();
                // Exponent sign.
                if (ch == 'e' || ch == 'E')
                    && matches!(cur.peek(0), Some('+') | Some('-'))
                {
                    text.push(cur.bump().expect("peeked"));
                }
                continue;
            }
            break;
        }
    } else if cur.peek(0) == Some('.')
        && cur.peek(1).is_none_or(|c| !is_ident_start(c) && c != '.')
    {
        // `1.` style float (rare; e.g. `2.`).
        kind = TokKind::Float;
        text.push('.');
        cur.bump();
    }
    Tok {
        kind,
        text,
        line,
        col,
    }
}

/// Line ranges belonging to `#[cfg(test)]` / `#[test]` items.
#[derive(Debug, Default)]
pub struct TestRegions {
    /// Inclusive (start, end) line ranges.
    ranges: Vec<(u32, u32)>,
}

impl TestRegions {
    /// True when `line` falls inside any test item.
    pub fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(s, e)| line >= s && line <= e)
    }
}

/// Finds the line ranges of items annotated `#[cfg(test)]` or
/// `#[test]` (a `not(test)` guard does not count). The item body is
/// delimited by its matching braces, or by `;` for brace-less items.
pub fn test_regions(toks: &[Tok]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        let Some(open) = toks.get(i + 1) else { break };
        if !(open.kind == TokKind::Punct && open.text == "[") {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket group.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            } else if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "test" => has_test = true,
                    "not" => has_not = true,
                    _ => {}
                }
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j + 1;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes, then find the item body: the
        // first `{` (brace-matched) or a `;` before it.
        let mut k = j + 1;
        while k + 1 < toks.len()
            && toks[k].kind == TokKind::Punct
            && toks[k].text == "#"
            && toks[k + 1].text == "["
        {
            let mut d = 0i32;
            while k < toks.len() {
                if toks[k].kind == TokKind::Punct {
                    match toks[k].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut end_line = start_line;
        let mut braces = 0i32;
        let mut entered = false;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        braces += 1;
                        entered = true;
                    }
                    "}" => {
                        braces -= 1;
                        if entered && braces == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    ";" if !entered => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            k += 1;
        }
        regions.ranges.push((start_line, end_line));
        i = k + 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_content() {
        let src = r##"
            // Instant::now() in a comment
            /* HashMap in /* a nested */ block */
            let s = "Instant::now()";
            let r = r#"HashMap"#;
            let b = b"unwrap()";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = lex("let c = 'x'; fn f<'a>(v: &'a str) {} let n = '\\n';");
        let kinds: Vec<(TokKind, String)> = toks
            .toks
            .iter()
            .filter(|t| {
                matches!(t.kind, TokKind::Char | TokKind::Lifetime)
            })
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (TokKind::Char, "x".to_string()),
                (TokKind::Lifetime, "a".to_string()),
                (TokKind::Lifetime, "a".to_string()),
                (TokKind::Char, "\\n".to_string()),
            ]
        );
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numbers_including_floats_and_methods() {
        let toks = lex("1.max(2) + 1.5e-3 + 0xFF_u32 + x.0");
        let nums: Vec<(TokKind, String)> = toks
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text.clone()))
            .collect();
        assert_eq!(nums[0], (TokKind::Int, "1".to_string()));
        assert_eq!(nums[1], (TokKind::Int, "2".to_string()));
        assert_eq!(nums[2], (TokKind::Float, "1.5e-3".to_string()));
        assert_eq!(nums[3], (TokKind::Int, "0xFF_u32".to_string()));
        assert_eq!(nums[4], (TokKind::Int, "0".to_string()));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bb").toks;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_region_covers_module() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn inner() { let x = 1; }\n\
                   }\n\
                   fn after() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        assert!(!regions.contains(1));
        assert!(regions.contains(2));
        assert!(regions.contains(4));
        assert!(regions.contains(5));
        assert!(!regions.contains(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod live { fn f() {} }\n";
        let lexed = lex(src);
        assert!(!test_regions(&lexed.toks).contains(2));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() {}\n";
        let lexed = lex(src);
        let regions = test_regions(&lexed.toks);
        assert!(regions.contains(2));
        assert!(!regions.contains(3));
    }

    #[test]
    fn trailing_vs_own_line_comments() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let comments = lex(src).comments;
        assert!(!comments[0].own_line);
        assert!(comments[1].own_line);
    }
}

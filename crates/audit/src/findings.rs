//! Findings and their stable identifiers.
//!
//! A finding's id must survive unrelated edits: CI diffs the JSON
//! finding list against a committed baseline, and an id that shifts
//! whenever a line number moves would make every refactor look like
//! drift. Ids are therefore content-addressed: an FNV-1a hash over the
//! rule id, the file's workspace-relative path, the *trimmed text* of
//! the offending line, and the ordinal of this finding among findings
//! of the same rule with identical (path, line-text). Renumbering
//! lines leaves ids untouched; changing the offending code changes
//! them — which is exactly when a human should re-look.

/// How the audit classifies the crate a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Offline-pipeline crates with a byte-reproducibility contract
    /// (`trace`, `sim`, `forecast`, `classify`, `features`, `rum`,
    /// `stats`, `core`, `audit`).
    Deterministic,
    /// Runtime/measurement crates where wall-clock is the point
    /// (`knative`, `bench`, `baselines`, `par`).
    Runtime,
    /// Vendored stand-ins under `shims/`; audited only for offline
    /// hygiene, their internals mimic external crates.
    Shim,
    /// The root facade package (`src/`, `tests/`, `examples/`).
    Facade,
}

/// What kind of target a source file is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — the strictest tier.
    Lib,
    /// A binary (`src/bin/*`, `src/main.rs`) — panics on bad CLI input
    /// are acceptable.
    Bin,
    /// Criterion benches.
    Bench,
    /// Integration tests (and fixture files under `tests/`).
    Test,
    /// Examples.
    Example,
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable content-addressed id (`<rule>-<fnv32 hex>`).
    pub id: String,
    /// Rule id.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// A finding suppressed by an `audit:allow` annotation.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The finding that was suppressed.
    pub finding: Finding,
    /// The annotation's justification.
    pub reason: String,
}

/// An annotation that matched no finding.
#[derive(Debug, Clone)]
pub struct UnusedAllow {
    /// Workspace-relative path.
    pub file: String,
    /// Line the annotation is written on.
    pub line: u32,
    /// Rule the annotation names.
    pub rule: String,
}

/// A malformed annotation.
#[derive(Debug, Clone)]
pub struct MalformedAllow {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the malformed annotation.
    pub line: u32,
    /// Parse error.
    pub message: String,
}

/// 32-bit FNV-1a over `data`.
fn fnv1a32(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in data {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Computes the stable id for a finding. `occurrence` is the 0-based
/// ordinal among same-rule findings with identical (file, line_text).
pub fn finding_id(
    rule: &str,
    file: &str,
    line_text: &str,
    occurrence: usize,
) -> String {
    let mut buf = Vec::new();
    buf.extend_from_slice(rule.as_bytes());
    buf.push(0);
    buf.extend_from_slice(file.as_bytes());
    buf.push(0);
    buf.extend_from_slice(line_text.trim().as_bytes());
    buf.push(0);
    buf.extend_from_slice(occurrence.to_string().as_bytes());
    format!("{rule}-{:08x}", fnv1a32(&buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ignores_indentation_and_line_number() {
        let a = finding_id("panic-path", "a.rs", "  x.unwrap();", 0);
        let b = finding_id("panic-path", "a.rs", "x.unwrap();", 0);
        assert_eq!(a, b);
    }

    #[test]
    fn id_distinguishes_rule_file_text_occurrence() {
        let base = finding_id("panic-path", "a.rs", "x.unwrap();", 0);
        assert_ne!(base, finding_id("lossy-cast", "a.rs", "x.unwrap();", 0));
        assert_ne!(base, finding_id("panic-path", "b.rs", "x.unwrap();", 0));
        assert_ne!(base, finding_id("panic-path", "a.rs", "y.unwrap();", 0));
        assert_ne!(base, finding_id("panic-path", "a.rs", "x.unwrap();", 1));
    }
}

//! The `femux-audit` CLI.
//!
//! ```text
//! femux-audit [--root <dir>] [--json] [--deny-unannotated]
//!             [--rule <id>]... [--list-rules]
//! ```
//!
//! Default output is the human report; `--json` emits the byte-stable
//! JSON document CI diffs against the committed baseline.
//! `--deny-unannotated` exits non-zero when any unsuppressed finding
//! (or malformed annotation) exists — the CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

use femux_audit::{
    find_workspace_root, render_json, render_text, scan_workspace,
};

struct Args {
    root: Option<PathBuf>,
    json: bool,
    deny: bool,
    list_rules: bool,
    rule_filter: Vec<String>,
}

fn usage() -> &'static str {
    "usage: femux-audit [--root <dir>] [--json] [--deny-unannotated] \
     [--rule <id>]... [--list-rules]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: false,
        deny: false,
        list_rules: false,
        rule_filter: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--root needs a value".to_string())?;
                args.root = Some(PathBuf::from(v));
            }
            "--json" => args.json = true,
            "--deny-unannotated" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--rule" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--rule needs a value".to_string())?;
                args.rule_filter.push(v);
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in femux_audit::rules::all_rules() {
            println!("{:<24} {}", rule.id(), rule.describe());
        }
        for rule in femux_audit::rules::workspace_rules() {
            println!("{:<24} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let mut audit = match scan_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("audit failed: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.rule_filter.is_empty() {
        audit
            .findings
            .retain(|f| args.rule_filter.iter().any(|r| r == f.rule));
        audit
            .allowed
            .retain(|s| args.rule_filter.iter().any(|r| r == s.finding.rule));
    }
    if args.json {
        print!("{}", render_json(&audit));
    } else {
        print!("{}", render_text(&audit));
    }
    let dirty =
        !audit.findings.is_empty() || !audit.malformed_allows.is_empty();
    if args.deny && dirty {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

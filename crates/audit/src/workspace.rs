//! Workspace discovery and file classification.
//!
//! The walk is fully deterministic: directory entries are sorted
//! before recursion, paths are stored workspace-relative with forward
//! slashes, and generated directories (`target/`, `.git/`, `results/`)
//! and fixture corpora (`fixtures/`) are skipped. Classification is by
//! path shape:
//!
//! - `crates/<name>/…` → that crate; `shims/<name>/…` → a shim; the
//!   root `src/`, `tests/`, `examples/` → the facade package.
//! - a `tests/` or `benches/` segment → test/bench target; `bin/` or
//!   `main.rs` → binary; `examples/` → example; otherwise library.

use std::path::{Path, PathBuf};

use crate::findings::{CrateClass, FileKind};

/// Crate directory names with the deterministic-output contract.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "trace", "sim", "forecast", "classify", "features", "rum", "stats",
    "core", "audit", "obs", "fault", "oracle", "serve",
];

/// One file selected for auditing.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Crate directory name (`""` for the root facade).
    pub crate_name: String,
    /// Crate classification.
    pub class: CrateClass,
    /// Target kind.
    pub kind: FileKind,
    /// True for `Cargo.toml`, false for `.rs`.
    pub is_manifest: bool,
}

/// Walks `root` and returns every auditable file, sorted by relative
/// path.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn walk(
    root: &Path,
    dir: &Path,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read_dir {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if path.is_dir() {
            // `fixtures/` holds deliberately-bad corpora for the
            // audit's own tests; they are scanned by those tests with
            // explicit classification, never by the workspace pass.
            if matches!(
                name.as_str(),
                "target" | ".git" | "results" | "fixtures"
            ) || name.starts_with('.')
            {
                continue;
            }
            walk(root, &path, out)?;
            continue;
        }
        let is_manifest = name == "Cargo.toml";
        let is_rust = name.ends_with(".rs");
        if !is_manifest && !is_rust {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        // Lockfile-adjacent and doc files are already excluded by the
        // extension filter; classify the rest.
        let (crate_name, class) = classify_crate(&rel);
        let kind = classify_kind(&rel);
        out.push(SourceFile {
            rel_path: rel,
            abs_path: path,
            crate_name,
            class,
            kind,
            is_manifest,
        });
    }
    Ok(())
}

fn classify_crate(rel: &str) -> (String, CrateClass) {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => {
            let class = if DETERMINISTIC_CRATES.contains(&name) {
                CrateClass::Deterministic
            } else {
                CrateClass::Runtime
            };
            (name.to_string(), class)
        }
        (Some("shims"), Some(name)) => {
            (name.to_string(), CrateClass::Shim)
        }
        _ => (String::new(), CrateClass::Facade),
    }
}

fn classify_kind(rel: &str) -> FileKind {
    let segments: Vec<&str> = rel.split('/').collect();
    let file = segments.last().copied().unwrap_or("");
    if segments.contains(&"tests") {
        FileKind::Test
    } else if segments.contains(&"benches") {
        FileKind::Bench
    } else if segments.contains(&"examples") {
        FileKind::Example
    } else if segments.contains(&"bin") || file == "main.rs" {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path_shape() {
        assert_eq!(
            classify_crate("crates/sim/src/engine.rs"),
            ("sim".to_string(), CrateClass::Deterministic)
        );
        assert_eq!(
            classify_crate("crates/knative/src/kpa.rs"),
            ("knative".to_string(), CrateClass::Runtime)
        );
        assert_eq!(
            classify_crate("shims/crossbeam/src/lib.rs"),
            ("crossbeam".to_string(), CrateClass::Shim)
        );
        assert_eq!(
            classify_crate("src/lib.rs"),
            (String::new(), CrateClass::Facade)
        );
        assert_eq!(classify_kind("crates/sim/src/engine.rs"), FileKind::Lib);
        assert_eq!(
            classify_kind("crates/audit/tests/fixtures/bad.rs"),
            FileKind::Test
        );
        assert_eq!(
            classify_kind("crates/bench/src/bin/fig02_iat.rs"),
            FileKind::Bin
        );
        assert_eq!(
            classify_kind("crates/audit/src/main.rs"),
            FileKind::Bin
        );
        assert_eq!(
            classify_kind("crates/bench/benches/features.rs"),
            FileKind::Bench
        );
    }
}

//! Fixture tests for the v2 rule families (AST + call-graph), pinned
//! to exact finding ids and positions like `fixtures.rs`.
//!
//! The local rules (`par-closure-purity`, `fault-draw-order`) scan a
//! single file via `audit_source`. The interprocedural rules
//! (`wallclock-reachability`, `contract-impl`) need a workspace, so
//! their corpora are assembled from several fixture files and run
//! through the full two-tier pipeline via `audit_sources`.

use femux_audit::{
    audit_source, audit_sources, CrateClass, FileKind, SourceSpec,
    WorkspaceAudit,
};

fn spec(
    rel: &str,
    krate: &str,
    class: CrateClass,
    kind: FileKind,
    text: &str,
) -> SourceSpec {
    SourceSpec {
        rel_path: rel.to_owned(),
        crate_name: krate.to_owned(),
        class,
        kind,
        is_manifest: false,
        text: text.to_owned(),
    }
}

/// `(rule, line, col, id)` for every unsuppressed finding.
fn triples(fa: &femux_audit::FileAudit) -> Vec<(&str, u32, u32, &str)> {
    fa.findings
        .iter()
        .map(|f| (f.rule, f.line, f.col, f.id.as_str()))
        .collect()
}

/// `(rule, file, line, col, id)` for every unsuppressed finding.
fn ws_triples(wa: &WorkspaceAudit) -> Vec<(&str, &str, u32, u32, &str)> {
    wa.findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line, f.col, f.id.as_str()))
        .collect()
}

/// `(rule, file, line)` for every suppressed finding.
fn ws_allowed(wa: &WorkspaceAudit) -> Vec<(&str, &str, u32)> {
    wa.allowed
        .iter()
        .map(|s| (s.finding.rule, s.finding.file.as_str(), s.finding.line))
        .collect()
}

#[test]
fn par_purity_pins_captured_accumulators() {
    let fa = audit_source(
        "fixtures/par_purity.rs",
        "features",
        CrateClass::Deterministic,
        FileKind::Lib,
        include_str!("fixtures/par_purity.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("par-closure-purity", 6, 9, "par-closure-purity-b1f4a92a"),
            ("par-closure-purity", 14, 14, "par-closure-purity-4ee52bed"),
        ],
        "compound assignment to a captured accumulator and a mutating \
         method on a captured sink; the sequential reduce in \
         combine_good and the #[cfg(test)] closure must not fire"
    );
    // The annotation sits on its own line above a statement whose
    // par_map closure spans four more lines; it must cover the `n += 1`
    // two lines below (the multi-line binding from this PR).
    assert_eq!(
        fa.allowed.len(),
        1,
        "allowed: {:?}, unused: {:?}",
        fa.allowed,
        fa.unused_allows
    );
    assert_eq!(fa.allowed[0].finding.line, 32);
    assert!(fa.unused_allows.is_empty() && fa.malformed_allows.is_empty());
}

#[test]
fn par_purity_is_scoped_to_non_test_code() {
    let fa = audit_source(
        "fixtures/par_purity.rs",
        "features",
        CrateClass::Deterministic,
        FileKind::Test,
        include_str!("fixtures/par_purity.rs"),
    );
    assert!(
        fa.findings.is_empty(),
        "test targets are exempt: {:?}",
        triples(&fa)
    );
}

#[test]
fn fault_order_pins_inversions_and_mid_sequence_reads() {
    let fa = audit_source(
        "fixtures/fault_order.rs",
        "sim",
        CrateClass::Deterministic,
        FileKind::Lib,
        include_str!("fixtures/fault_order.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("fault-draw-order", 12, 27, "fault-draw-order-63a93443"),
            ("fault-draw-order", 18, 27, "fault-draw-order-cd99cf5c"),
            ("fault-draw-order", 47, 23, "fault-draw-order-52736d8e"),
        ],
        "crash_pod drawn after lose_report, a .stats read between \
         draws, and crash_node drawn after actuation_fate; tick_good, \
         tick_good_with_nodes, and the #[cfg(test)] reorder must not \
         fire"
    );
    assert_eq!(fa.allowed.len(), 2, "allowed: {:?}", fa.allowed);
    assert_eq!(fa.allowed[0].finding.line, 26);
    assert_eq!(fa.allowed[1].finding.line, 56);
    assert!(fa.unused_allows.is_empty() && fa.malformed_allows.is_empty());
}

#[test]
fn fault_order_is_scoped_to_deterministic_crates() {
    let fa = audit_source(
        "fixtures/fault_order.rs",
        "bench",
        CrateClass::Runtime,
        FileKind::Lib,
        include_str!("fixtures/fault_order.rs"),
    );
    assert!(
        fa.findings.is_empty(),
        "runtime crates are exempt: {:?}",
        triples(&fa)
    );
}

#[test]
fn wallclock_reachability_catches_what_the_lexer_rule_misses() {
    // The deterministic file is token-clean: the PR 2 lexer rule
    // (`no-wallclock-entropy`) finds nothing in it, and the runtime
    // helper is out of that rule's scope entirely. Only the call
    // graph sees `tick_stamp -> now_ms -> Instant::now`.
    let wa = audit_sources(vec![
        spec(
            "crates/sim/src/reach.rs",
            "sim",
            CrateClass::Deterministic,
            FileKind::Lib,
            include_str!("fixtures/reach_det.rs"),
        ),
        spec(
            "crates/knative/src/clock.rs",
            "knative",
            CrateClass::Runtime,
            FileKind::Lib,
            include_str!("fixtures/reach_runtime.rs"),
        ),
    ]);
    assert!(
        !wa.findings.iter().any(|f| f.rule == "no-wallclock-entropy")
            && !wa
                .allowed
                .iter()
                .any(|s| s.finding.rule == "no-wallclock-entropy"),
        "the local lexer rule must NOT see the laundered clock: {:?}",
        ws_triples(&wa)
    );
    assert_eq!(
        ws_triples(&wa),
        vec![(
            "wallclock-reachability",
            "crates/sim/src/reach.rs",
            6,
            20,
            "wallclock-reachability-9001418b",
        )]
    );
    assert_eq!(
        ws_allowed(&wa),
        vec![("wallclock-reachability", "crates/sim/src/reach.rs", 11)]
    );
    assert!(wa.unused_allows.is_empty() && wa.malformed_allows.is_empty());
}

#[test]
fn wallclock_reachability_stands_down_without_a_sink() {
    // The deterministic caller alone produces no finding: the call
    // edge is unresolved without the runtime file in the corpus.
    let wa = audit_sources(vec![spec(
        "crates/sim/src/reach.rs",
        "sim",
        CrateClass::Deterministic,
        FileKind::Lib,
        include_str!("fixtures/reach_det.rs"),
    )]);
    assert!(
        wa.findings.is_empty(),
        "no sink, no finding: {:?}",
        ws_triples(&wa)
    );
}

fn contract_corpus() -> Vec<SourceSpec> {
    vec![
        spec(
            "crates/obs/src/lib.rs",
            "obs",
            CrateClass::Deterministic,
            FileKind::Lib,
            include_str!("fixtures/contract_obs.rs"),
        ),
        spec(
            "crates/forecast/src/lib.rs",
            "forecast",
            CrateClass::Deterministic,
            FileKind::Lib,
            include_str!("fixtures/contract_forecast.rs"),
        ),
        spec(
            "crates/sim/src/policy.rs",
            "sim",
            CrateClass::Deterministic,
            FileKind::Lib,
            include_str!("fixtures/contract_policy.rs"),
        ),
        spec(
            "tests/tick_idle_equivalence.rs",
            "",
            CrateClass::Facade,
            FileKind::Test,
            include_str!("fixtures/contract_equiv_test.rs"),
        ),
        spec(
            "crates/par/src/lib.rs",
            "par",
            CrateClass::Runtime,
            FileKind::Lib,
            include_str!("fixtures/contract_spawn.rs"),
        ),
        spec(
            "crates/sim/src/span_probe.rs",
            "sim",
            CrateClass::Deterministic,
            FileKind::Lib,
            include_str!("fixtures/contract_span.rs"),
        ),
    ]
}

#[test]
fn contract_impl_pins_all_four_contracts() {
    let wa = audit_sources(contract_corpus());
    assert_eq!(
        ws_triples(&wa),
        vec![
            (
                "contract-impl",
                "crates/forecast/src/lib.rs",
                42,
                8,
                "contract-impl-7e5f08e3",
            ),
            (
                "contract-impl",
                "crates/par/src/lib.rs",
                20,
                17,
                "contract-impl-4642e9f0",
            ),
            (
                "contract-impl",
                "crates/sim/src/policy.rs",
                35,
                8,
                "contract-impl-0fd6af50",
            ),
            (
                "contract-impl",
                "crates/sim/src/span_probe.rs",
                9,
                33,
                "contract-impl-4c8d2683",
            ),
            (
                "contract-impl",
                "crates/sim/src/span_probe.rs",
                11,
                22,
                "contract-impl-b2d8ea77",
            ),
        ],
        "Raw::forecast never sanitizes, Unregistered::tick_idle has no \
         equivalence test, the third spawn closure never flushes, and \
         leaky_span calls both raw span primitives; \
         Clamped/Chained/Registered/NoOverride, the guard and direct \
         flush closures, guarded_span's SpanGuard, the obs crate's own \
         primitives, and every #[cfg(test)] site must not fire"
    );
    assert_eq!(
        ws_allowed(&wa),
        vec![
            ("contract-impl", "crates/forecast/src/lib.rs", 52),
            ("contract-impl", "crates/par/src/lib.rs", 24),
            ("contract-impl", "crates/sim/src/span_probe.rs", 16),
        ],
        "Tolerated::forecast, the probe worker, and measured_open are \
         annotated"
    );
    assert!(wa.unused_allows.is_empty() && wa.malformed_allows.is_empty());
}

#[test]
fn contract_impl_registry_lives_in_test_files() {
    // Dropping the integration-test file from the corpus must flag
    // Registered::tick_idle too: registration only counts because the
    // symbol table also indexes test targets.
    let corpus: Vec<SourceSpec> = contract_corpus()
        .into_iter()
        .filter(|s| s.kind != FileKind::Test)
        .collect();
    let wa = audit_sources(corpus);
    let registered: Vec<_> = wa
        .findings
        .iter()
        .filter(|f| f.rule == "contract-impl" && f.message.contains("Registered"))
        .map(|f| (f.file.clone(), f.line))
        .collect();
    assert!(
        !registered.is_empty(),
        "without the registry file, Registered must be flagged: {:?}",
        ws_triples(&wa)
    );
}

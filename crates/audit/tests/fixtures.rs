//! Fixture tests: each rule is pinned against a known-bad corpus in
//! `tests/fixtures/`, down to exact finding ids and line numbers.
//!
//! The ids are content-addressed (rule + file + trimmed line text +
//! occurrence ordinal), so these literals only change when a fixture
//! line or a rule id changes — never when unrelated lines shift. The
//! workspace walk skips `fixtures/` directories; these corpora are
//! only ever scanned here, with explicit classification.

use femux_audit::{audit_manifest, audit_source, CrateClass, FileKind};

fn scan(
    path: &str,
    krate: &str,
    class: CrateClass,
    src: &str,
) -> femux_audit::FileAudit {
    audit_source(path, krate, class, FileKind::Lib, src)
}

/// `(rule, line, col, id)` for every unsuppressed finding.
fn triples(fa: &femux_audit::FileAudit) -> Vec<(&str, u32, u32, &str)> {
    fa.findings
        .iter()
        .map(|f| (f.rule, f.line, f.col, f.id.as_str()))
        .collect()
}

#[test]
fn wallclock_pins_instant_and_thread_rng() {
    let fa = scan(
        "fixtures/wallclock.rs",
        "sim",
        CrateClass::Deterministic,
        include_str!("fixtures/wallclock.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("no-wallclock-entropy", 5, 25, "no-wallclock-entropy-979f54f0"),
            ("no-wallclock-entropy", 10, 25, "no-wallclock-entropy-637171f7"),
        ],
        "Instant::now and thread_rng in non-test code; the \
         #[cfg(test)] Instant on line 18 must not fire"
    );
    assert!(fa.allowed.is_empty() && fa.malformed_allows.is_empty());
}

#[test]
fn wallclock_rule_is_scoped_to_deterministic_crates() {
    // The same source in a runtime crate is clean: measuring
    // wall-clock is the runtime crates' job.
    let fa = scan(
        "fixtures/wallclock.rs",
        "bench",
        CrateClass::Runtime,
        include_str!("fixtures/wallclock.rs"),
    );
    assert!(fa.findings.is_empty());
}

#[test]
fn wallclock_carves_out_only_the_obs_walltime_module() {
    // `crates/obs` is a deterministic crate, but its quarantined
    // wall-clock module is the one sanctioned timing site in the
    // workspace — the rule skips exactly that path.
    let fa = scan(
        "crates/obs/src/walltime.rs",
        "obs",
        CrateClass::Deterministic,
        include_str!("fixtures/wallclock.rs"),
    );
    assert!(
        fa.findings.is_empty(),
        "the sanctioned walltime module is exempt: {:?}",
        triples(&fa)
    );
    // The same source anywhere else in `crates/obs` still fires.
    let fa = scan(
        "crates/obs/src/lib.rs",
        "obs",
        CrateClass::Deterministic,
        include_str!("fixtures/wallclock.rs"),
    );
    assert_eq!(
        triples(&fa)
            .iter()
            .map(|t| (t.0, t.1))
            .collect::<Vec<_>>(),
        vec![("no-wallclock-entropy", 5), ("no-wallclock-entropy", 10)],
        "the carve-out is per-path, not per-crate"
    );
}

#[test]
fn unordered_flags_any_use_in_deterministic_crates() {
    let fa = scan(
        "fixtures/unordered_det.rs",
        "features",
        CrateClass::Deterministic,
        include_str!("fixtures/unordered_det.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("no-unordered-emit", 4, 23, "no-unordered-emit-0d168b1f"),
            ("no-unordered-emit", 6, 33, "no-unordered-emit-7ab802a6"),
            ("no-unordered-emit", 7, 22, "no-unordered-emit-050ce071"),
        ],
        "every HashMap mention in a deterministic crate: the use \
         declaration, the return type, and the constructor"
    );
}

#[test]
fn unordered_flags_only_iteration_in_runtime_crates() {
    let fa = scan(
        "fixtures/unordered_runtime.rs",
        "knative",
        CrateClass::Runtime,
        include_str!("fixtures/unordered_runtime.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("no-unordered-emit", 12, 14, "no-unordered-emit-28c17268"),
            ("no-unordered-emit", 19, 24, "no-unordered-emit-525d7d2b"),
        ],
        "`.keys()` on a HashMap field and `for … in` over a HashMap \
         let-binding; declaring (line 7/16) and `.entry()` (line 26) \
         stay allowed"
    );
}

#[test]
fn fp_reduce_flags_shared_state_inside_par_map_args() {
    let fa = scan(
        "fixtures/fp_reduce.rs",
        "sim",
        CrateClass::Deterministic,
        include_str!("fixtures/fp_reduce.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("sequential-fp-reduce", 8, 16, "sequential-fp-reduce-c21a3c0e"),
            ("sequential-fp-reduce", 13, 35, "sequential-fp-reduce-47de3f79"),
            ("par-closure-purity", 14, 9, "par-closure-purity-192b54fd"),
        ],
        "`.lock()` and `unsafe` inside par_map argument lists (plus \
         the captured-static accumulation, which the purity rule sees \
         structurally); the \
         sequential fold over the returned Vec (line 19-20) is the \
         sanctioned pattern and stays clean"
    );
}

#[test]
fn panic_path_flags_bare_unwrap_and_panic_macros() {
    let fa = scan(
        "fixtures/panic_path.rs",
        "core",
        CrateClass::Deterministic,
        include_str!("fixtures/panic_path.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("panic-path", 5, 16, "panic-path-0342aad2"),
            ("panic-path", 9, 5, "panic-path-ea24200c"),
        ],
        "bare `.unwrap()` and `panic!`; `.expect(\"invariant: …\")` \
         (line 13) and test-mod unwrap (line 21) stay allowed"
    );
}

#[test]
fn panic_path_exempts_binaries() {
    let fa = audit_source(
        "fixtures/panic_path.rs",
        "core",
        CrateClass::Deterministic,
        FileKind::Bin,
        include_str!("fixtures/panic_path.rs"),
    );
    assert!(
        fa.findings.is_empty(),
        "CLI input validation may panic; the rule guards library code"
    );
}

#[test]
fn lossy_cast_flags_narrowing_as_casts() {
    let fa = scan(
        "fixtures/lossy_cast.rs",
        "rum",
        CrateClass::Deterministic,
        include_str!("fixtures/lossy_cast.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![
            ("lossy-cast", 5, 7, "lossy-cast-e3867401"),
            ("lossy-cast", 9, 7, "lossy-cast-d1df9c8c"),
        ],
        "`as u32` and `as f32` narrow; the widening `as u64` \
         (line 13) stays allowed"
    );
    // The same source outside rum/sim is out of the rule's scope.
    let fa = scan(
        "fixtures/lossy_cast.rs",
        "trace",
        CrateClass::Deterministic,
        include_str!("fixtures/lossy_cast.rs"),
    );
    assert!(fa.findings.is_empty());
}

#[test]
fn env_read_flags_env_var_but_not_args() {
    let fa = scan(
        "fixtures/env_read.rs",
        "forecast",
        CrateClass::Deterministic,
        include_str!("fixtures/env_read.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![("no-env-read", 5, 10, "no-env-read-9a662ecc")],
        "`env::var` fires; `env::args` (line 12) is CLI input, not \
         ambient state"
    );
}

#[test]
fn allow_suppresses_precisely_one_finding() {
    let fa = scan(
        "fixtures/allow_one.rs",
        "sim",
        CrateClass::Deterministic,
        include_str!("fixtures/allow_one.rs"),
    );
    // Two panics on adjacent lines, one own-line annotation: only the
    // annotation's target line (6) is suppressed; line 7 still fires.
    assert_eq!(
        triples(&fa),
        vec![("panic-path", 7, 5, "panic-path-b7f23b9d")]
    );
    let allowed: Vec<(u32, &str, &str)> = fa
        .allowed
        .iter()
        .map(|s| {
            (s.finding.line, s.finding.id.as_str(), s.reason.as_str())
        })
        .collect();
    assert_eq!(
        allowed,
        vec![
            (
                6,
                "panic-path-26a556f0",
                "fixture: suppresses only the next line"
            ),
            (
                11,
                "panic-path-b45a9ba5",
                "fixture: trailing form targets its own line"
            ),
        ],
        "own-line form targets the next code line; trailing form \
         targets its own line; reasons are carried through"
    );
    // The lossy-cast annotation on line 14 suppresses nothing and is
    // reported, so stale suppressions cannot accumulate silently.
    assert_eq!(fa.unused_allows.len(), 1);
    assert_eq!(fa.unused_allows[0].rule, "lossy-cast");
    assert_eq!(fa.unused_allows[0].line, 14);
    assert!(fa.malformed_allows.is_empty());
}

#[test]
fn malformed_allow_is_reported_and_suppresses_nothing() {
    let fa = scan(
        "fixtures/malformed.rs",
        "core",
        CrateClass::Deterministic,
        include_str!("fixtures/malformed.rs"),
    );
    assert_eq!(
        triples(&fa),
        vec![("panic-path", 6, 5, "panic-path-2492cff6")],
        "a reason-less annotation never suppresses"
    );
    assert_eq!(fa.malformed_allows.len(), 1);
    assert_eq!(fa.malformed_allows[0].line, 5);
    assert!(fa.malformed_allows[0].message.contains("justified"));
}

#[test]
fn offline_deps_flags_every_non_path_dependency_shape() {
    let fa = audit_manifest(
        "fixtures/bad_manifest.toml",
        include_str!("fixtures/bad_manifest.toml"),
    );
    let got: Vec<(u32, &str)> = fa
        .findings
        .iter()
        .map(|f| (f.line, f.id.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![
            (8, "offline-deps-659ff7d6"),   // serde = "1.0"
            (9, "offline-deps-9b2caa8c"),   // { version, features }
            (12, "offline-deps-ab68efe1"),  // chrono.version = "0.4"
            (14, "offline-deps-4f8f770f"),  // [dev-dependencies.criterion]
            (18, "offline-deps-edc782fe"),  // { git = … }
        ],
        "bare version, inline-table version, dotted-key version, \
         version-only dependency table, git dependency; path and \
         workspace=true entries (lines 10-11) stay allowed"
    );
    assert!(fa.findings.iter().all(|f| f.rule == "offline-deps"));
}

#[test]
fn ids_are_stable_under_line_shifts() {
    // Content-addressing: inserting a line above a finding moves its
    // reported line but not its id.
    let base = "pub fn f(v: &[u64]) -> u64 {\n    *v.first().unwrap()\n}\n";
    let shifted = format!("// a new comment line\n{base}");
    let a = scan("x.rs", "core", CrateClass::Deterministic, base);
    let b = scan("x.rs", "core", CrateClass::Deterministic, &shifted);
    assert_eq!(a.findings.len(), 1);
    assert_eq!(b.findings.len(), 1);
    assert_eq!(a.findings[0].line + 1, b.findings[0].line);
    assert_eq!(a.findings[0].id, b.findings[0].id);
}

#[test]
fn duplicate_lines_get_distinct_occurrence_ids() {
    // Two byte-identical violating lines must not collide.
    let src = "pub fn f() {\n    panic!(\"x\");\n    panic!(\"x\");\n}\n";
    let fa = scan("x.rs", "core", CrateClass::Deterministic, src);
    assert_eq!(fa.findings.len(), 2);
    assert_ne!(fa.findings[0].id, fa.findings[1].id);
}

//! Fixture: token-clean deterministic code laundering the wall clock
//! through a runtime-crate helper. The local `no-wallclock-entropy`
//! rule sees nothing here — only the call graph does.

pub fn tick_stamp() -> u64 {
    femux_knative::now_ms()
}

pub fn allowed_stamp() -> u64 {
    // audit:allow(wallclock-reachability, reason = "fixture: sanctioned crossing")
    femux_knative::now_ms()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_exempt() {
        let _ = femux_knative::now_ms();
    }
}

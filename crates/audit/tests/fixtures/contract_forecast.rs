//! Fixture: the forecast sanitation contract.

pub trait Forecaster {
    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64>;
}

pub fn sanitize_forecast(values: &mut [f64]) {
    for v in values.iter_mut() {
        if !v.is_finite() || *v < 0.0 {
            *v = 0.0;
        }
    }
}

pub struct Clamped;

impl Forecaster for Clamped {
    fn forecast(&mut self, _history: &[f64], horizon: usize) -> Vec<f64> {
        let mut out = vec![0.0; horizon];
        sanitize_forecast(&mut out);
        out
    }
}

pub struct Chained;

fn finish(values: &mut [f64]) {
    sanitize_forecast(values);
}

impl Forecaster for Chained {
    fn forecast(&mut self, _history: &[f64], horizon: usize) -> Vec<f64> {
        let mut out = vec![1.0; horizon];
        finish(&mut out);
        out
    }
}

pub struct Raw;

impl Forecaster for Raw {
    fn forecast(&mut self, history: &[f64], horizon: usize) -> Vec<f64> {
        let last = history.last().copied().unwrap_or(0.0);
        vec![last; horizon]
    }
}

pub struct Tolerated;

impl Forecaster for Tolerated {
    // audit:allow(contract-impl, reason = "fixture: emits raw values for a differential probe")
    fn forecast(&mut self, _history: &[f64], horizon: usize) -> Vec<f64> {
        vec![0.5; horizon]
    }
}

#[cfg(test)]
mod tests {
    use super::Forecaster;

    struct TestOnly;

    impl Forecaster for TestOnly {
        fn forecast(&mut self, _h: &[f64], horizon: usize) -> Vec<f64> {
            vec![2.0; horizon]
        }
    }
}

//! Fixture: iterating a hash-ordered collection in a runtime crate.
//! Scanned by `tests/fixtures.rs` as `knative` / Runtime / Lib.

use std::collections::HashMap;

pub struct Registry {
    pods: HashMap<String, u64>,
}

impl Registry {
    pub fn names(&self) -> Vec<String> {
        self.pods.keys().cloned().collect()
    }

    pub fn drain_total(&mut self) -> u64 {
        let mut scratch = HashMap::new();
        std::mem::swap(&mut scratch, &mut self.pods);
        let mut sum = 0;
        for (_, v) in &scratch {
            sum += v;
        }
        sum
    }

    pub fn bump(&mut self, name: &str) {
        *self.pods.entry(name.to_string()).or_insert(0) += 1;
    }
}

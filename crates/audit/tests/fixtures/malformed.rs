//! Fixture: malformed annotations never silently suppress.
//! Scanned by `tests/fixtures.rs` as `core` / Deterministic / Lib.

pub fn unjustified() {
    // audit:allow(panic-path)
    panic!("the annotation above has no reason, so this stays reported");
}

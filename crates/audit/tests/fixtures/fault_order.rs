//! Fixture: the per-tick fault draw sequence.

pub fn tick_good(faults: &mut AppFaults, pods: usize) -> usize {
    let crashed = faults.crash_pod(pods);
    let _lost = faults.lose_report();
    let _fate = faults.actuation_fate();
    pods - crashed
}

pub fn tick_reordered(faults: &mut AppFaults, pods: usize) {
    let _lost = faults.lose_report();
    let _crashed = faults.crash_pod(pods);
    let _fate = faults.actuation_fate();
}

pub fn tick_peeking(faults: &mut AppFaults, pods: usize) {
    let _crashed = faults.crash_pod(pods);
    let observed = faults.stats.crashes;
    let _fate = faults.actuation_fate();
    let _ = (observed, pods);
}

pub fn allowed_reorder(faults: &mut AppFaults, pods: usize) {
    let _fate = faults.actuation_fate();
    // audit:allow(fault-draw-order, reason = "fixture: replays a recorded tail where actuation resolves first")
    let _crashed = faults.crash_pod(pods);
}

pub fn tick_good_with_nodes(
    faults: &mut AppFaults,
    nodes: &mut NodeFaults,
    pods: usize,
) {
    let _crashed = faults.crash_pod(pods);
    let _lost = faults.lose_report();
    let _node = nodes.crash_node(0);
    let _fate = faults.actuation_fate();
}

pub fn tick_node_crash_after_fate(
    faults: &mut AppFaults,
    nodes: &mut NodeFaults,
    pods: usize,
) {
    let _crashed = faults.crash_pod(pods);
    let _fate = faults.actuation_fate();
    let _node = nodes.crash_node(0);
}

pub fn allowed_node_reorder(
    faults: &mut AppFaults,
    nodes: &mut NodeFaults,
) {
    let _fate = faults.actuation_fate();
    // audit:allow(fault-draw-order, reason = "fixture: drains a recorded crash backlog after the actuation draw")
    let _node = nodes.crash_node(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_in_tests_is_exempt() {
        let mut faults = AppFaults::test_plan();
        let _fate = faults.actuation_fate();
        let _crashed = faults.crash_pod(1);
    }
}

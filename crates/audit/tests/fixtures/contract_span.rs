//! Fixture: the span-guard contract in a deterministic crate.

pub fn guarded_span() {
    let _span = femux_obs::span::SpanGuard::open();
    work();
}

pub fn leaky_span() {
    let open = femux_obs::span::open_span();
    work();
    femux_obs::span::close_span(open);
}

// audit:allow(contract-impl, reason = "fixture: straight-line block, no early exit between open and close")
pub fn measured_open() -> femux_obs::span::OpenSpan {
    femux_obs::span::open_span()
}

fn work() {}

#[cfg(test)]
mod tests {
    pub fn bench_span() {
        let open = femux_obs::span::open_span();
        femux_obs::span::close_span(open);
    }
}

//! Fixture: `audit:allow` suppresses precisely one finding.
//! Scanned by `tests/fixtures.rs` as `sim` / Deterministic / Lib.

pub fn two_panics() {
    // audit:allow(panic-path, reason = "fixture: suppresses only the next line")
    panic!("suppressed");
    panic!("still reported");
}

pub fn trailing(v: &[u64]) -> u64 {
    *v.first().unwrap() // audit:allow(panic-path, reason = "fixture: trailing form targets its own line")
}

// audit:allow(lossy-cast, reason = "fixture: suppresses nothing, reported unused")
pub fn clean() {}

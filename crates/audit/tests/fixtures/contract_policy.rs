//! Fixture: the `tick_idle` equivalence registry contract.

pub struct IdleRun {
    pub target: usize,
    pub ticks: u64,
}

pub trait ScalingPolicy {
    fn target_pods(&mut self) -> usize;

    fn tick_idle(&mut self, ticks: u64) -> IdleRun {
        IdleRun { target: self.target_pods(), ticks }
    }
}

pub struct Registered;

impl ScalingPolicy for Registered {
    fn target_pods(&mut self) -> usize {
        1
    }

    fn tick_idle(&mut self, ticks: u64) -> IdleRun {
        IdleRun { target: 1, ticks }
    }
}

pub struct Unregistered;

impl ScalingPolicy for Unregistered {
    fn target_pods(&mut self) -> usize {
        0
    }

    fn tick_idle(&mut self, ticks: u64) -> IdleRun {
        IdleRun { target: 0, ticks }
    }
}

pub struct NoOverride;

impl ScalingPolicy for NoOverride {
    fn target_pods(&mut self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::{IdleRun, ScalingPolicy};

    struct TestPolicy;

    impl ScalingPolicy for TestPolicy {
        fn target_pods(&mut self) -> usize {
            3
        }

        fn tick_idle(&mut self, ticks: u64) -> IdleRun {
            IdleRun { target: 3, ticks }
        }
    }
}

//! Fixture: shared mutable state inside `par_map` argument lists.
//! Scanned by `tests/fixtures.rs` as `sim` / Deterministic / Lib.

static mut SUM: f64 = 0.0;

pub fn bad_locked_sum(xs: &[f64], total: &parking_lot::Mutex<f64>) {
    femux_par::par_map(xs, |_, x| {
        *total.lock() += x;
    });
}

pub fn bad_unsafe_sum(xs: &[f64]) {
    femux_par::par_map(xs, |_, x| unsafe {
        SUM += x;
    });
}

pub fn good_sequential_sum(xs: &[f64]) -> f64 {
    let parts = femux_par::par_map(xs, |_, x| x * 2.0);
    parts.iter().sum()
}

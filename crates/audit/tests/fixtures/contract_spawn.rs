//! Fixture: the worker telemetry flush contract.

pub struct FlushOnExit;

impl Drop for FlushOnExit {
    fn drop(&mut self) {
        femux_obs::flush_thread();
    }
}

pub fn run_workers(scope: &Scope) {
    scope.spawn(|| {
        work();
        femux_obs::flush_thread();
    });
    scope.spawn(|| {
        let _flush = FlushOnExit;
        work();
    });
    scope.spawn(|| {
        work();
    });
    // audit:allow(contract-impl, reason = "fixture: short-lived probe worker emits no telemetry")
    scope.spawn(|| probe());
}

fn work() {}

fn probe() {}

//! Fixture: closures handed to `femux_par` must stay pure.

pub fn accumulate_bad(items: &[f64]) -> f64 {
    let mut total = 0.0;
    let _parts = femux_par::par_map(items, |_i, x| {
        total += *x;
        0.0
    });
    total
}

pub fn push_bad(items: &[u64], sink: &mut Vec<u64>) {
    let _ = femux_par::par_map(items, |i, _x| {
        sink.push(i);
        i
    });
}

pub fn combine_good(items: &[f64]) -> f64 {
    let parts = femux_par::par_map(items, |_i, x| x + 1.0);
    let mut total = 0.0;
    for p in &parts {
        total += p;
    }
    total
}

pub fn allowed_accumulate(items: &[u64]) -> u64 {
    let mut n = 0;
    // audit:allow(par-closure-purity, reason = "fixture: the multi-line statement below is covered whole")
    let _ = femux_par::par_map(items, |_i, _x| {
        n += 1;
        0
    });
    n
}

#[cfg(test)]
mod tests {
    #[test]
    fn accumulation_in_tests_is_exempt() {
        let mut total = 0.0;
        let _ = femux_par::par_map(&[1.0], |_i, x| {
            total += *x;
            0.0
        });
        assert!(total > 0.0);
    }
}

//! Fixture: wall-clock and entropy reads in a deterministic crate.
//! Scanned by `tests/fixtures.rs` as `sim` / Deterministic / Lib.

pub fn measure() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis() as u64
}

pub fn seed() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _t0 = std::time::Instant::now();
    }
}

//! Fixture: environment reads in a deterministic crate.
//! Scanned by `tests/fixtures.rs` as `forecast` / Deterministic / Lib.

pub fn threads() -> usize {
    std::env::var("FEMUX_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn argv() -> Vec<String> {
    std::env::args().collect()
}

//! Fixture: the runtime helper that actually reads the wall clock.
//! Runtime crates are exempt from the local lexer rule by design —
//! measuring time is their job — which is exactly the laundering hole
//! the reachability rule closes.

use std::time::Instant;

pub fn now_ms() -> u64 {
    let t = Instant::now();
    u64::from(t.elapsed().subsec_millis())
}

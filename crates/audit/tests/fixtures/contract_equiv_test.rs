//! Fixture: the equivalence registry (a root integration test).

#[test]
fn registered_policy_is_equivalent() {
    assert_tick_idle_equivalence("Registered", &mut || Box::new(Registered));
}

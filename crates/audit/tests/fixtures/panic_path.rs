//! Fixture: undocumented panic paths in library code.
//! Scanned by `tests/fixtures.rs` as `core` / Deterministic / Lib.

pub fn first_bare(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn boom() {
    panic!("unhandled");
}

pub fn first_documented(v: &[u64]) -> u64 {
    *v.first().expect("invariant: caller guarantees non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u64];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}

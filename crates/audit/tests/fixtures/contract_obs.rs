//! Fixture: the telemetry flush anchor and the raw span primitives
//! the span-guard contract anchors on. `SpanGuard` is the sanctioned
//! wrapper — its `Drop` closes the span on every path.

pub fn flush_thread() {}

pub struct OpenSpan;

pub fn open_span() -> OpenSpan {
    OpenSpan
}

pub fn close_span(_open: OpenSpan) {}

pub struct SpanGuard {
    open: Option<OpenSpan>,
}

impl SpanGuard {
    pub fn open() -> SpanGuard {
        SpanGuard {
            open: Some(open_span()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            close_span(open);
        }
    }
}

//! Fixture: the telemetry flush anchor.

pub fn flush_thread() {}

//! Fixture: truncating casts in an accumulation crate.
//! Scanned by `tests/fixtures.rs` as `rum` / Lib.

pub fn pack(x: u64) -> u32 {
    x as u32
}

pub fn shrink(x: f64) -> f32 {
    x as f32
}

pub fn widen(x: u32) -> u64 {
    x as u64
}

//! Block formation and latent feature extraction (§4.3.2 of the paper).
//!
//! FeMux divides each application's per-minute average-concurrency series
//! into fixed **blocks** of 504 minutes (the BDS linearity test needs at
//! least ~400 points; 504 also divides the 14-day Azure trace into an
//! integer 40 blocks). Once a block completes, FeMux extracts latent
//! features — stationarity (ADF), linearity (BDS), periodicity (harmonic
//! prominence), and density — and feeds them to the classifier that picks
//! the block's forecaster. Feature extraction takes well under the
//! paper's 5 ms budget per block.

use femux_stats::adf::adf_test_auto;
use femux_stats::bds::bds_on_ar_residuals;
use femux_stats::desc::mean;
use femux_stats::fft::power_spectrum;

pub mod incremental;

pub use incremental::{BlockFeatures, IncrementalExtractor};

/// The paper's block size in minutes.
pub const BLOCK_MINUTES: usize = 504;

/// A latent feature of a traffic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureKind {
    /// Augmented Dickey-Fuller statistic (more negative = more
    /// stationary).
    Stationarity,
    /// |BDS| statistic on AR residuals (larger = more nonlinear).
    Linearity,
    /// Fraction of signal variance captured by the three strongest
    /// harmonics (closer to 1 = more periodic).
    Periodicity,
    /// Total traffic mass in the block (log1p of summed concurrency).
    Density,
    /// Log execution time of the application (only used by FeMux-Exec,
    /// §5.1.3).
    ExecTime,
}

impl FeatureKind {
    /// The paper's default feature set.
    pub const DEFAULT: [FeatureKind; 4] = [
        FeatureKind::Stationarity,
        FeatureKind::Linearity,
        FeatureKind::Periodicity,
        FeatureKind::Density,
    ];

    /// All features including the exec-time extension.
    pub const ALL: [FeatureKind; 5] = [
        FeatureKind::Stationarity,
        FeatureKind::Linearity,
        FeatureKind::Periodicity,
        FeatureKind::Density,
        FeatureKind::ExecTime,
    ];

    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            FeatureKind::Stationarity => "stationarity",
            FeatureKind::Linearity => "linearity",
            FeatureKind::Periodicity => "periodicity",
            FeatureKind::Density => "density",
            FeatureKind::ExecTime => "exec-time",
        }
    }
}

/// A completed traffic block: one application's concurrency series over
/// one block window, plus the metadata feature extraction needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Index of the application in its fleet.
    pub app_index: usize,
    /// Block sequence number within the application (0-based).
    pub seq: usize,
    /// Per-minute average concurrency (length = block size).
    pub series: Vec<f64>,
    /// Mean execution time of the application in seconds (for the
    /// exec-time feature).
    pub exec_secs: f64,
}

/// Splits a series into non-overlapping blocks of `block_len`, dropping
/// the trailing partial block (FeMux only acts on completed blocks).
///
/// # Panics
///
/// Panics if `block_len == 0`.
pub fn split_blocks(
    app_index: usize,
    series: &[f64],
    block_len: usize,
    exec_secs: f64,
) -> Vec<Block> {
    assert!(block_len > 0, "block length must be positive");
    series
        .chunks_exact(block_len)
        .enumerate()
        .map(|(seq, chunk)| Block {
            app_index,
            seq,
            series: chunk.to_vec(),
            exec_secs,
        })
        .collect()
}

/// Computes the stationarity feature: the ADF statistic, clamped to a
/// sane range. Degenerate series (constant) report a strongly stationary
/// value, since constant traffic is trivially predictable.
pub fn stationarity(series: &[f64]) -> f64 {
    match adf_test_auto(series) {
        Some(res) => res.statistic.clamp(-30.0, 10.0),
        None => -30.0,
    }
}

/// Computes the linearity feature: |BDS| on AR(5) residuals, clamped.
/// Returns 0 (no nonlinearity evidence) for degenerate series.
pub fn linearity(series: &[f64]) -> f64 {
    match bds_on_ar_residuals(series, 5, 2, 1.0) {
        Some(res) => res.statistic.abs().min(50.0),
        None => 0.0,
    }
}

/// Computes the periodicity feature: the fraction of variance in the
/// three strongest harmonics. 0 for flat series and for windows whose
/// spectrum is degenerate (a non-finite sample poisons every bin, so
/// such a window carries no periodicity evidence).
pub fn periodicity(series: &[f64]) -> f64 {
    let spectrum = power_spectrum(series);
    if spectrum.is_empty() {
        return 0.0;
    }
    let total: f64 = spectrum.iter().sum();
    if !total.is_finite() || total <= 1e-12 {
        return 0.0;
    }
    let mut top = spectrum.to_vec();
    top.sort_by(|a, b| b.total_cmp(a));
    top.iter().take(3).sum::<f64>() / total
}

/// Computes the density feature: `ln(1 + sum(series))`.
pub fn density(series: &[f64]) -> f64 {
    (1.0 + series.iter().sum::<f64>()).ln()
}

/// Extracts the requested features from a block, in the order of
/// `kinds`.
pub fn extract(block: &Block, kinds: &[FeatureKind]) -> Vec<f64> {
    kinds
        .iter()
        .map(|k| match k {
            FeatureKind::Stationarity => stationarity(&block.series),
            FeatureKind::Linearity => linearity(&block.series),
            FeatureKind::Periodicity => periodicity(&block.series),
            FeatureKind::Density => density(&block.series),
            FeatureKind::ExecTime => (block.exec_secs.max(1e-4)).ln(),
        })
        .collect()
}

/// Extracts features for many blocks (rows of the classifier's design
/// matrix).
///
/// Blocks are processed in parallel (`FEMUX_THREADS` workers): the
/// ADF/BDS/FFT work per block is independent, and results are collected
/// in block order, so the matrix is identical for every thread count.
pub fn extract_all(
    blocks: &[Block],
    kinds: &[FeatureKind],
) -> Vec<Vec<f64>> {
    femux_obs::counter_add("features.extract_all.calls", 1);
    femux_obs::counter_add("features.blocks", blocks.len() as u64);
    femux_par::par_map(blocks, |_, b| extract(b, kinds))
}

/// Convenience: true if a block has effectively no traffic, in which case
/// FeMux's default forecaster is used instead of classification.
pub fn is_idle(block: &Block) -> bool {
    mean(&block.series) < 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_stats::rng::Rng;

    fn block_of(series: Vec<f64>) -> Block {
        Block {
            app_index: 0,
            seq: 0,
            series,
            exec_secs: 0.5,
        }
    }

    fn periodic_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                2.0 + (2.0 * std::f64::consts::PI * t as f64 / 60.0).sin()
            })
            .collect()
    }

    fn noise_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.normal().abs()).collect()
    }

    fn random_walk(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut acc = 50.0;
        (0..n)
            .map(|_| {
                acc += rng.normal();
                acc.max(0.0)
            })
            .collect()
    }

    #[test]
    fn split_blocks_shapes() {
        let series: Vec<f64> = (0..1_100).map(|i| i as f64).collect();
        let blocks = split_blocks(3, &series, BLOCK_MINUTES, 1.0);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].series.len(), BLOCK_MINUTES);
        assert_eq!(blocks[1].seq, 1);
        assert_eq!(blocks[1].series[0], BLOCK_MINUTES as f64);
        assert_eq!(blocks[0].app_index, 3);
    }

    #[test]
    fn periodicity_separates_signals() {
        let periodic = periodicity(&periodic_series(504));
        let noisy = periodicity(&noise_series(504, 1));
        assert!(periodic > 0.8, "periodic {periodic}");
        assert!(noisy < 0.35, "noise {noisy}");
    }

    #[test]
    fn stationarity_separates_signals() {
        let stationary = stationarity(&noise_series(504, 2));
        let wandering = stationarity(&random_walk(504, 3));
        // -3.43 is the 1 % ADF critical value: white noise must reject
        // the unit root decisively even with Schwert's generous lag
        // count.
        assert!(
            stationary < -3.43,
            "white noise should be strongly stationary: {stationary}"
        );
        assert!(wandering > -3.0, "random walk should not be: {wandering}");
    }

    #[test]
    fn linearity_flags_threshold_dynamics() {
        let mut rng = Rng::seed_from_u64(4);
        let mut xs = vec![1.0];
        for _ in 0..503 {
            let prev = *xs.last().expect("non-empty");
            let coef = if prev > 1.0 { 0.3 } else { 1.2 };
            xs.push((coef * prev + 0.1 * rng.normal()).max(0.0));
        }
        let nonlinear = linearity(&xs);
        let linear = linearity(&noise_series(504, 5));
        assert!(
            nonlinear > linear,
            "nonlinear {nonlinear} vs linear {linear}"
        );
    }

    #[test]
    fn density_orders_by_mass() {
        let quiet = density(&vec![0.01; 504]);
        let busy = density(&vec![50.0; 504]);
        assert!(busy > quiet);
        assert_eq!(density(&vec![0.0; 504]), 0.0);
    }

    #[test]
    fn extract_orders_follow_kinds() {
        let block = block_of(periodic_series(504));
        let kinds = [FeatureKind::Density, FeatureKind::Periodicity];
        let feats = extract(&block, &kinds);
        assert_eq!(feats.len(), 2);
        assert!((feats[0] - density(&block.series)).abs() < 1e-12);
        assert!((feats[1] - periodicity(&block.series)).abs() < 1e-12);
    }

    #[test]
    fn exec_feature_is_log_scale() {
        let mut block = block_of(vec![1.0; 504]);
        block.exec_secs = 1.0;
        let f1 = extract(&block, &[FeatureKind::ExecTime])[0];
        block.exec_secs = std::f64::consts::E;
        let f2 = extract(&block, &[FeatureKind::ExecTime])[0];
        assert!((f1 - 0.0).abs() < 1e-12);
        assert!((f2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_block_features_are_finite() {
        let block = block_of(vec![3.0; 504]);
        for f in extract(&block, &FeatureKind::ALL) {
            assert!(f.is_finite());
        }
    }

    #[test]
    fn idle_detection() {
        assert!(is_idle(&block_of(vec![0.0; 504])));
        assert!(!is_idle(&block_of(vec![0.5; 504])));
    }

    #[test]
    fn extract_all_gives_matrix() {
        let blocks = vec![
            block_of(periodic_series(504)),
            block_of(noise_series(504, 6)),
        ];
        let rows = extract_all(&blocks, &FeatureKind::DEFAULT);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn periodicity_nonfinite_window_is_flat_not_a_panic() {
        // Regression (serve parity gate, adversarial battery): a
        // 504-minute window carrying a single NaN sample — a lost
        // concurrency report that reaches batch extraction unsanitized
        // — used to panic in the power-spectrum sort ("finite power");
        // an ∞ sample produced a NaN feature that poisoned the scaler
        // downstream. Both degenerate windows now report zero
        // periodicity.
        let mut series = periodic_series(504);
        series[100] = f64::NAN;
        assert_eq!(periodicity(&series), 0.0);
        series[100] = f64::INFINITY;
        assert_eq!(periodicity(&series), 0.0);
        // The test statistics stay finite on such windows too (density
        // deliberately reports the poisoned mass itself; the scaler
        // clamps it downstream).
        assert!(stationarity(&series).is_finite());
        assert!(linearity(&series).is_finite());
    }

    #[test]
    fn feature_names_unique() {
        let mut names: Vec<&str> =
            FeatureKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FeatureKind::ALL.len());
    }
}

//! Incremental per-sample feature maintenance for online serving.
//!
//! The offline pipeline re-extracts every feature from a completed
//! block's full series. A serving pod cannot afford that shape of work:
//! with a thousand apps per shard, re-running the O(block × lags²) ADF
//! design-matrix build at every block boundary concentrates milliseconds
//! of latency into single ticks, and keeping each app's unbounded series
//! (as [`crate::Block`]-based replay does) grows memory without limit.
//!
//! [`IncrementalExtractor`] maintains the paper's features over a
//! fixed-capacity block buffer instead:
//!
//! - **density** — the running in-order sum, folded exactly like the
//!   batch `iter().sum::<f64>()`;
//! - **stationarity** — a streaming [`AdfAccumulator`] folds each
//!   regression row into the Gram matrix / `X^T y` the moment the row's
//!   samples exist, leaving only an O(rows × cols) residual pass plus
//!   the (cols³) solve at the boundary;
//! - **linearity** and **periodicity** — inherently whole-window
//!   statistics (BDS needs the final mean and pairwise correlation
//!   integral; the FFT needs the complete signal), evaluated once per
//!   boundary over the block buffer, whose contents equal the batch
//!   block byte-for-byte.
//!
//! **Parity gate:** at every block boundary the emitted feature row is
//! bit-for-bit equal to [`crate::extract`] on the equivalent
//! [`crate::Block`] — the same f64 operations on the same operands in
//! the same order. `tests/serve_determinism.rs` sweeps this equality
//! over seeded synthetic fleets; any divergence is a bug in one of the
//! two paths.

use femux_stats::adf::AdfAccumulator;

use crate::{linearity, periodicity, Block, FeatureKind};

/// The feature row emitted when a pushed sample completes a block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockFeatures {
    /// Block sequence number within the app (0-based).
    pub seq: usize,
    /// Features in the extractor's configured kind order.
    pub features: Vec<f64>,
    /// Whether the block is idle ([`crate::is_idle`] on the same
    /// window): callers route idle blocks to the default forecaster
    /// without classification.
    pub idle: bool,
}

/// Streaming replacement for [`crate::extract`] over tumbling blocks.
#[derive(Debug, Clone)]
pub struct IncrementalExtractor {
    kinds: Vec<FeatureKind>,
    block_len: usize,
    exec_secs: f64,
    /// Current block's samples; capacity is fixed at `block_len` and the
    /// buffer is cleared (not reallocated) at each boundary.
    buf: Vec<f64>,
    /// Running in-order sum of `buf` (density / idle detection).
    sum: f64,
    /// Streaming ADF state; `None` when the block is too short for the
    /// automatic test (the batch path returns the same verdict).
    adf: Option<AdfAccumulator>,
    seq: usize,
}

impl IncrementalExtractor {
    /// Creates an extractor for one application.
    ///
    /// # Panics
    ///
    /// Panics if `block_len == 0`.
    pub fn new(
        block_len: usize,
        exec_secs: f64,
        kinds: &[FeatureKind],
    ) -> Self {
        assert!(block_len > 0, "block length must be positive");
        IncrementalExtractor {
            kinds: kinds.to_vec(),
            block_len,
            exec_secs,
            buf: Vec::with_capacity(block_len),
            sum: 0.0,
            adf: AdfAccumulator::auto(block_len),
            seq: 0,
        }
    }

    /// The configured block length.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Samples accumulated toward the current (incomplete) block.
    pub fn block_progress(&self) -> usize {
        self.buf.len()
    }

    /// Number of blocks completed so far.
    pub fn blocks_completed(&self) -> usize {
        self.seq
    }

    /// The feature kinds emitted at each boundary, in order.
    pub fn kinds(&self) -> &[FeatureKind] {
        &self.kinds
    }

    /// Read-only view of the current block buffer (oldest first).
    pub fn window(&self) -> &[f64] {
        &self.buf
    }

    /// Ingests one per-minute sample. Returns the block's feature row
    /// when this sample completes a block, `None` otherwise.
    pub fn push(&mut self, value: f64) -> Option<BlockFeatures> {
        self.buf.push(value);
        // Density's batch fold is iter().sum::<f64>(): left-to-right
        // from 0.0 — the same adds in the same order.
        self.sum += value;
        if let Some(adf) = self.adf.as_mut() {
            adf.push(value);
        }
        if self.buf.len() < self.block_len {
            return None;
        }
        let out = self.finalize_block();
        self.buf.clear();
        self.sum = 0.0;
        if let Some(adf) = self.adf.as_mut() {
            adf.reset();
        }
        self.seq += 1;
        Some(out)
    }

    fn finalize_block(&self) -> BlockFeatures {
        femux_obs::counter_add("features.incremental.blocks", 1);
        let features = self
            .kinds
            .iter()
            .map(|k| match k {
                FeatureKind::Stationarity => self.stationarity(),
                FeatureKind::Linearity => linearity(&self.buf),
                FeatureKind::Periodicity => periodicity(&self.buf),
                FeatureKind::Density => (1.0 + self.sum).ln(),
                FeatureKind::ExecTime => (self.exec_secs.max(1e-4)).ln(),
            })
            .collect();
        BlockFeatures {
            seq: self.seq,
            features,
            // is_idle(): mean(series) < 1e-9, with mean = the identical
            // in-order sum divided by the length.
            idle: self.sum / (self.buf.len() as f64) < 1e-9,
        }
    }

    fn stationarity(&self) -> f64 {
        // Mirrors adf_test_auto's telemetry and the batch clamp in
        // crate::stationarity.
        femux_obs::counter_add("stats.adf.tests", 1);
        match self.adf.as_ref().and_then(|a| a.finalize(&self.buf)) {
            Some(res) => res.statistic.clamp(-30.0, 10.0),
            None => -30.0,
        }
    }

    /// Materializes the current (complete or partial) block as a batch
    /// [`Block`] — the parity sweep's reference view.
    pub fn as_block(&self, app_index: usize) -> Block {
        Block {
            app_index,
            seq: self.seq,
            series: self.buf.clone(),
            exec_secs: self.exec_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract, is_idle};
    use femux_stats::rng::Rng;

    fn assert_block_parity(
        series: &[f64],
        block_len: usize,
        kinds: &[FeatureKind],
        label: &str,
    ) {
        let mut inc = IncrementalExtractor::new(block_len, 0.5, kinds);
        let mut boundaries = 0;
        for (t, &v) in series.iter().enumerate() {
            if let Some(out) = inc.push(v) {
                let lo = (t + 1) - block_len;
                let block = Block {
                    app_index: 0,
                    seq: out.seq,
                    series: series[lo..t + 1].to_vec(),
                    exec_secs: 0.5,
                };
                let batch = extract(&block, kinds);
                assert_eq!(batch.len(), out.features.len());
                for (k, (b, i)) in
                    batch.iter().zip(&out.features).enumerate()
                {
                    assert_eq!(
                        b.to_bits(),
                        i.to_bits(),
                        "{label}: feature {:?} diverged at block {} \
                         (batch {b} vs incremental {i})",
                        kinds[k],
                        out.seq
                    );
                }
                assert_eq!(out.idle, is_idle(&block), "{label}: idle bit");
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, series.len() / block_len, "{label}");
    }

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.normal().abs()).collect()
    }

    #[test]
    fn parity_over_signal_shapes_and_block_lengths() {
        let periodic: Vec<f64> = (0..1_512)
            .map(|t| {
                2.0 + (2.0 * std::f64::consts::PI * t as f64 / 60.0).sin()
            })
            .collect();
        let mut rng = Rng::seed_from_u64(3);
        let mut acc = 50.0;
        let walk: Vec<f64> = (0..1_512)
            .map(|_| {
                acc += rng.normal();
                acc.max(0.0)
            })
            .collect();
        let shapes: Vec<(&str, Vec<f64>)> = vec![
            ("periodic", periodic),
            ("noise", noise(1_512, 1)),
            ("random-walk", walk),
            ("constant", vec![3.0; 1_512]),
            ("all-zero", vec![0.0; 1_512]),
            (
                "spiky",
                (0..1_512)
                    .map(|t| if t % 37 == 0 { 1e5 } else { 0.01 })
                    .collect(),
            ),
            (
                "tiny-huge",
                (0..1_512)
                    .map(|t| if t % 2 == 0 { 1e-12 } else { 1e12 })
                    .collect(),
            ),
        ];
        for (label, series) in &shapes {
            for block_len in [120usize, 504] {
                assert_block_parity(
                    series,
                    block_len,
                    &FeatureKind::ALL,
                    &format!("{label}/{block_len}"),
                );
            }
        }
    }

    #[test]
    fn parity_on_short_blocks_without_adf() {
        // Blocks shorter than the ADF minimum: both paths must agree on
        // the degenerate -30 verdict.
        assert_block_parity(
            &noise(60, 9),
            12,
            &FeatureKind::DEFAULT,
            "short",
        );
    }

    #[test]
    fn progress_and_reset_bookkeeping() {
        let mut inc =
            IncrementalExtractor::new(10, 1.0, &FeatureKind::DEFAULT);
        for t in 0..25 {
            let out = inc.push(t as f64);
            assert_eq!(out.is_some(), (t + 1) % 10 == 0);
        }
        assert_eq!(inc.blocks_completed(), 2);
        assert_eq!(inc.block_progress(), 5);
        assert_eq!(inc.window().len(), 5);
        assert_eq!(inc.as_block(7).app_index, 7);
        assert_eq!(inc.as_block(7).seq, 2);
    }

    #[test]
    fn buffer_capacity_is_fixed() {
        let mut inc =
            IncrementalExtractor::new(120, 0.5, &FeatureKind::DEFAULT);
        let cap = inc.buf.capacity();
        for t in 0..1_200 {
            inc.push((t % 7) as f64);
        }
        assert_eq!(
            inc.buf.capacity(),
            cap,
            "block buffer must never grow past its fixed capacity"
        );
    }
}

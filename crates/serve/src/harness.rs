//! The sharded serving loop.
//!
//! [`run`] splits a trace's apps across worker shards (stable
//! [`crate::shard_of`] assignment), serves every virtual-clock step,
//! and returns a [`ServeReport`] whose [`digest`](ServeReport::digest)
//! is byte-identical for any shard count: sharding only partitions the
//! per-app state — each app's sample stream, fault draws (keyed by app
//! id), and decisions are the same wherever it lives. Wall-clock tick
//! latencies are measured per shard for the capacity bench and
//! deliberately excluded from the digest.

use std::sync::Arc;

use femux::model::FemuxModel;
use femux_fault::{FaultConfig, FaultStats};
use femux_forecast::ForecasterKind;
use femux_trace::ingest::{IngestError, MonotonePolicy};
use femux_trace::{AppId, Trace};

use crate::app::ServedApp;
use crate::feed::{AppFeed, TraceFeed};
use crate::shard_of;

/// Serving-harness configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards; 0 means `FEMUX_THREADS` (the femux-par pool
    /// size). The digest is shard-count invariant either way.
    pub shards: usize,
    /// Per-pod utilization headroom (Knative default 0.7).
    pub utilization: f64,
    /// What to do with non-monotone trace timestamps at ingest.
    pub ingest: MonotonePolicy,
    /// Injected fault plan (report loss + forecaster faults), if any.
    pub faults: Option<FaultConfig>,
    /// Measure per-tick wall latency (off by default: the numbers are
    /// nondeterministic and for the capacity bench only).
    pub measure_latency: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 0,
            utilization: 0.7,
            ingest: MonotonePolicy::Reject,
            faults: None,
            measure_latency: false,
        }
    }
}

/// Deterministic per-app serving outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppOutcome {
    /// The app.
    pub id: AppId,
    /// Forecaster decision log (mirror of
    /// `AppManager::history_of_kinds`).
    pub decisions: Vec<ForecasterKind>,
    /// Completed blocks.
    pub blocks: usize,
    /// Reports lost to injected faults.
    pub reports_lost: u64,
    /// Samples sanitized for being non-finite.
    pub nonfinite_samples: u64,
    /// Sum of per-step pod targets.
    pub target_pod_sum: u64,
    /// Largest single-step pod target.
    pub target_pod_max: usize,
    /// Injected forecaster faults fired.
    pub forecast_faults: u64,
}

/// The result of serving one trace.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Shards used (excluded from the digest).
    pub shards: usize,
    /// Virtual steps served.
    pub steps: usize,
    /// Per-app outcomes, in trace order.
    pub apps: Vec<AppOutcome>,
    /// Invocations clamped at ingest.
    pub clamped_timestamps: usize,
    /// Injected-fault totals across the fleet.
    pub totals: FaultStats,
    /// Per-shard, per-tick wall latencies in µs (empty unless
    /// `measure_latency`; excluded from the digest).
    pub tick_wall_us: Vec<Vec<u64>>,
}

impl ServeReport {
    /// FNV-1a digest over every deterministic field — decisions,
    /// counts, fault totals — excluding shard count and wall-clock
    /// measurements. Equal digests mean byte-identical serving
    /// behavior.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(self.steps as u64).to_le_bytes());
        bytes
            .extend_from_slice(&(self.clamped_timestamps as u64).to_le_bytes());
        bytes.extend_from_slice(&self.totals.total().to_le_bytes());
        for app in &self.apps {
            bytes.extend_from_slice(&app.id.0.to_le_bytes());
            for kind in &app.decisions {
                bytes.extend_from_slice(kind.name().as_bytes());
                bytes.push(b';');
            }
            for v in [
                app.blocks as u64,
                app.reports_lost,
                app.nonfinite_samples,
                app.target_pod_sum,
                app.target_pod_max as u64,
                app.forecast_faults,
            ] {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        crate::fnv1a(&bytes)
    }

    /// Fleet-wide pod-target sum (a cheap scalar the capacity bench
    /// compares across runs).
    pub fn total_pod_targets(&self) -> u64 {
        self.apps.iter().map(|a| a.target_pod_sum).sum()
    }
}

struct ShardResult {
    /// (index into trace order, outcome) pairs.
    outcomes: Vec<(usize, AppOutcome)>,
    stats: FaultStats,
    tick_wall_us: Vec<u64>,
}

/// Serves a whole trace and returns the deterministic report.
///
/// Virtual clock: step `t` is trace minute `t`; every app on every
/// shard sees its minute-`t` sample during step `t`. Shards run in
/// parallel (femux-par), each advancing its own apps step by step, so
/// per-tick wall latency is an honest per-shard measurement.
pub fn run(
    trace: &Trace,
    model: Arc<FemuxModel>,
    cfg: &ServeConfig,
) -> Result<ServeReport, IngestError> {
    let feed = TraceFeed::from_trace(trace, cfg.ingest)?;
    let shards = if cfg.shards == 0 {
        femux_par::thread_count()
    } else {
        cfg.shards
    };
    femux_obs::counter_add("serve.runs", 1);
    femux_obs::counter_add("serve.apps", feed.apps.len() as u64);
    // Partition apps by stable hash, preserving trace order inside each
    // shard.
    let mut groups: Vec<Vec<(usize, &AppFeed)>> = vec![Vec::new(); shards];
    for (idx, app) in feed.apps.iter().enumerate() {
        groups[shard_of(app.id, shards)].push((idx, app));
    }
    let steps = feed.steps;
    let results: Vec<ShardResult> =
        femux_par::par_map(&groups, |_, group| {
            let result = run_shard(group, &model, cfg, steps);
            femux_obs::flush_thread();
            result
        });
    // Reassemble in trace order so downstream consumers never see the
    // shard layout.
    let mut slots: Vec<Option<AppOutcome>> = vec![None; feed.apps.len()];
    let mut totals = FaultStats::default();
    let mut tick_wall_us = Vec::with_capacity(shards);
    for shard in results {
        totals.merge(&shard.stats);
        for (idx, outcome) in shard.outcomes {
            slots[idx] = Some(outcome);
        }
        tick_wall_us.push(shard.tick_wall_us);
    }
    let apps = slots
        .into_iter()
        .map(|s| s.expect("every app is served by exactly one shard"))
        .collect();
    Ok(ServeReport {
        shards,
        steps,
        apps,
        clamped_timestamps: feed.clamped_timestamps,
        totals,
        tick_wall_us,
    })
}

fn run_shard(
    group: &[(usize, &AppFeed)],
    model: &Arc<FemuxModel>,
    cfg: &ServeConfig,
    steps: usize,
) -> ShardResult {
    let mut apps: Vec<(usize, &AppFeed, ServedApp)> = group
        .iter()
        .map(|&(idx, feed)| {
            let mut app = ServedApp::new(
                feed.id,
                Arc::clone(model),
                feed.exec_secs,
                feed.concurrency_limit,
            );
            if let Some(plan) = &cfg.faults {
                app = app.with_faults(
                    plan.forecast_faults(feed.id),
                    plan.engine_faults(feed.id),
                );
            }
            (idx, feed, app)
        })
        .collect();
    let mut tick_wall_us =
        Vec::with_capacity(if cfg.measure_latency { steps } else { 0 });
    for t in 0..steps {
        let t0 = if cfg.measure_latency {
            femux_obs::walltime::monotonic_micros()
        } else {
            0
        };
        for (_, feed, app) in &mut apps {
            let sample = feed.samples.get(t).copied().unwrap_or(0.0);
            app.step(t, sample, cfg.utilization);
        }
        if cfg.measure_latency {
            let now = femux_obs::walltime::monotonic_micros();
            tick_wall_us.push(now.saturating_sub(t0));
            femux_obs::walltime::record_elapsed("wall.serve.tick_us", t0);
        }
    }
    let mut stats = FaultStats::default();
    let outcomes = apps
        .into_iter()
        .map(|(idx, _, app)| {
            let app_stats = app.fault_stats();
            stats.merge(&app_stats);
            (
                idx,
                AppOutcome {
                    id: app.id(),
                    blocks: app.blocks,
                    reports_lost: app.reports_lost,
                    nonfinite_samples: app.nonfinite_samples,
                    target_pod_sum: app.target_pod_sum,
                    target_pod_max: app.target_pod_max,
                    forecast_faults: app_stats.forecast_faults,
                    decisions: app.decisions,
                },
            )
        })
        .collect();
    ShardResult {
        outcomes,
        stats,
        tick_wall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux::config::FemuxConfig;
    use femux::model::{train, ClassifierKind, TrainApp};
    use femux_trace::synth::ibm::{generate, IbmFleetConfig};

    fn model() -> Arc<FemuxModel> {
        let cfg = FemuxConfig::for_tests();
        let apps: Vec<TrainApp> = (0..4)
            .map(|i| TrainApp {
                concurrency: (0..600)
                    .map(|t| {
                        2.0 + (t as f64 * (0.2 + i as f64 * 0.1)).sin()
                    })
                    .collect(),
                exec_secs: 0.5,
                mem_gb: 0.5,
                pod_concurrency: 1,
            })
            .collect();
        Arc::new(
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model"),
        )
    }

    #[test]
    fn digest_is_shard_count_invariant() {
        let trace = generate(&IbmFleetConfig::small(7));
        let model = model();
        let digests: Vec<u64> = [1usize, 2, 5]
            .iter()
            .map(|&shards| {
                let report = run(
                    &trace,
                    model.clone(),
                    &ServeConfig {
                        shards,
                        ..ServeConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(report.shards, shards);
                report.digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }

    #[test]
    fn apps_come_back_in_trace_order() {
        let trace = generate(&IbmFleetConfig::small(8));
        let report = run(
            &trace,
            model(),
            &ServeConfig {
                shards: 3,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let ids: Vec<u32> = report.apps.iter().map(|a| a.id.0).collect();
        let expected: Vec<u32> =
            trace.apps.iter().map(|a| a.id.0).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn latency_measurement_fills_per_shard_ticks() {
        let trace = generate(&IbmFleetConfig::small(9));
        let report = run(
            &trace,
            model(),
            &ServeConfig {
                shards: 2,
                measure_latency: true,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.tick_wall_us.len(), 2);
        for shard in &report.tick_wall_us {
            assert_eq!(shard.len(), report.steps);
        }
    }
}

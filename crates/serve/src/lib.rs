//! Online sharded FeMux serving (§5.2's "1-vCPU pod serves 1,200+
//! apps" deployment claim, reproduced as a harness).
//!
//! The rest of the workspace is offline: label → extract → fit →
//! replay, each pass re-reading whole series. This crate is the online
//! half — a long-running, deterministically replayable serving loop:
//!
//! - **Sharding** ([`shard_of`]): per-app state lives on exactly one of
//!   `FEMUX_THREADS` worker shards, assigned by the stable FNV-1a hash
//!   of the app id. Assignment depends only on the id and the shard
//!   count, never on arrival order or scheduling.
//! - **Incremental features** ([`femux_features::IncrementalExtractor`]):
//!   ADF/BDS/harmonic/density features are maintained per sample over a
//!   fixed-capacity block buffer, with block-boundary output bit-for-bit
//!   equal to the batch extractor (the parity gate).
//! - **Online re-classification** ([`app::ServedApp`]): at every block
//!   boundary the k-means router picks the next forecaster, and the
//!   [`femux::degrade::DegradeLadder`] — the same state machine
//!   `AppManager` uses offline — handles demotion, backoff, and
//!   re-promotion when forecasts panic or go non-finite.
//! - **Determinism** ([`harness::ServeReport::digest`]): same trace +
//!   seed ⇒ byte-identical decisions and metrics at *any* shard count.
//!   Wall-clock tick latencies are measured (for the capacity bench)
//!   but excluded from the digest.
//!
//! The trace feed ([`feed::TraceFeed`]) runs on a virtual clock — one
//! step per trace minute — and goes through the strict ingest boundary
//! ([`femux_trace::ingest`]), so non-monotone history is rejected or
//! clamped, never silently reordered.

pub mod app;
pub mod feed;
pub mod harness;

pub use app::ServedApp;
pub use feed::{AppFeed, TraceFeed};
pub use harness::{run, AppOutcome, ServeConfig, ServeReport};

use femux_trace::AppId;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shard owning an app: `fnv1a(id) % shards`. Stable across runs,
/// platforms, and shard layouts — resizing the pool moves apps but
/// never makes two shards claim one app.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_of(id: AppId, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    (fnv1a(&id.0.to_le_bytes()) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn shard_assignment_is_stable_and_total() {
        for shards in 1..=16 {
            for id in 0..500u32 {
                let s = shard_of(AppId(id), shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(AppId(id), shards), "stable");
            }
        }
    }

    #[test]
    fn shard_assignment_spreads_apps() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..4_000u32 {
            counts[shard_of(AppId(id), shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > 4_000 / shards / 2,
                "shard {s} starved with {c} apps: {counts:?}"
            );
        }
    }
}

//! Virtual-clock trace feed.
//!
//! Converts a [`Trace`] into per-app, per-minute average-concurrency
//! sample streams — the exact representation FeMux's Knative prototype
//! consumes — behind the strict serving ingest boundary: non-monotone
//! invocation timestamps are rejected or clamped
//! ([`femux_trace::ingest`]), never silently re-sorted.

use femux_trace::ingest::{
    enforce_monotone, IngestError, MonotonePolicy,
};
use femux_trace::repr::concurrency_per_minute;
use femux_trace::{AppId, Trace};

/// One app's serving input.
#[derive(Debug, Clone, PartialEq)]
pub struct AppFeed {
    /// The app's identity (shard assignment and fault-stream key).
    pub id: AppId,
    /// Per-minute average concurrency, minute 0 first.
    pub samples: Vec<f64>,
    /// Mean execution time in seconds (feeds the ExecTime feature).
    pub exec_secs: f64,
    /// Per-pod concurrency limit (actuation divisor).
    pub concurrency_limit: u32,
}

/// A whole trace, ingested for serving.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFeed {
    /// Apps in trace order.
    pub apps: Vec<AppFeed>,
    /// Virtual steps (minutes) in the longest app stream.
    pub steps: usize,
    /// Invocations whose timestamps were clamped forward at ingest
    /// (always 0 under [`MonotonePolicy::Reject`]).
    pub clamped_timestamps: usize,
}

/// Mean execution time assumed for apps with no invocations at all
/// (seconds) — matches the synthetic generators' typical short request.
const DEFAULT_EXEC_SECS: f64 = 0.5;

impl TraceFeed {
    /// Ingests a trace for serving under the given monotonicity policy.
    pub fn from_trace(
        trace: &Trace,
        policy: MonotonePolicy,
    ) -> Result<TraceFeed, IngestError> {
        let mut apps = Vec::with_capacity(trace.apps.len());
        let mut clamped_total = 0usize;
        let mut steps = 0usize;
        for app in &trace.apps {
            // Fast path: already monotone, serve the records as-is.
            // Otherwise the policy decides — error out, or clamp a
            // private copy (the caller's trace is never mutated).
            let samples = if app.is_sorted() {
                concurrency_per_minute(&app.invocations, trace.span_ms)
            } else {
                let mut invs = app.invocations.clone();
                clamped_total +=
                    enforce_monotone(app.id, &mut invs, policy)?;
                concurrency_per_minute(&invs, trace.span_ms)
            };
            let exec_secs = if app.invocations.is_empty() {
                DEFAULT_EXEC_SECS
            } else {
                app.invocations
                    .iter()
                    .map(|i| i.duration_ms as f64 / 1_000.0)
                    .sum::<f64>()
                    / app.invocations.len() as f64
            };
            steps = steps.max(samples.len());
            apps.push(AppFeed {
                id: app.id,
                samples,
                exec_secs,
                concurrency_limit: app.config.concurrency.max(1),
            });
        }
        if clamped_total > 0 {
            femux_obs::counter_add(
                "serve.ingest.clamped_timestamps",
                clamped_total as u64,
            );
        }
        Ok(TraceFeed {
            apps,
            steps,
            clamped_timestamps: clamped_total,
        })
    }

    /// The sample an app sees at step `t` (0 past the end of its
    /// stream — the app has gone quiet, not away).
    pub fn sample(&self, app: usize, t: usize) -> f64 {
        self.apps[app].samples.get(t).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_trace::synth::ibm::{generate, IbmFleetConfig};
    use femux_trace::{
        AppConfig, AppRecord, Invocation, WorkloadKind,
    };

    fn toy_trace(starts: &[u64]) -> Trace {
        let mut trace = Trace::new(300_000);
        trace.apps.push(AppRecord {
            id: AppId(7),
            kind: WorkloadKind::Function,
            config: AppConfig {
                concurrency: 10,
                ..Default::default()
            },
            mem_used_mb: 128,
            cold_start_ms: 808,
            invocations: starts
                .iter()
                .map(|&start_ms| Invocation {
                    start_ms,
                    duration_ms: 1_000,
                    delay_ms: 0,
                })
                .collect(),
        });
        trace
    }

    #[test]
    fn sorted_trace_feeds_untouched() {
        let trace = toy_trace(&[10_000, 70_000, 130_000]);
        let feed =
            TraceFeed::from_trace(&trace, MonotonePolicy::Reject)
                .unwrap();
        assert_eq!(feed.clamped_timestamps, 0);
        assert_eq!(feed.apps.len(), 1);
        assert_eq!(feed.steps, feed.apps[0].samples.len());
        assert!((feed.apps[0].exec_secs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_order_trace_rejected_or_clamped() {
        let trace = toy_trace(&[70_000, 10_000, 130_000]);
        assert!(TraceFeed::from_trace(&trace, MonotonePolicy::Reject)
            .is_err());
        let feed =
            TraceFeed::from_trace(&trace, MonotonePolicy::Clamp)
                .unwrap();
        assert_eq!(feed.clamped_timestamps, 1);
        // The caller's trace is untouched.
        assert_eq!(trace.apps[0].invocations[1].start_ms, 10_000);
    }

    #[test]
    fn synthetic_fleet_ingests_cleanly() {
        let trace = generate(&IbmFleetConfig::small(5));
        let feed =
            TraceFeed::from_trace(&trace, MonotonePolicy::Reject)
                .expect("generators emit sorted traces");
        assert_eq!(feed.apps.len(), trace.apps.len());
        assert!(feed.steps > 0);
        assert!(feed
            .apps
            .iter()
            .all(|a| a.samples.iter().all(|s| s.is_finite())));
    }

    #[test]
    fn sample_past_stream_end_is_zero() {
        let trace = toy_trace(&[10_000]);
        let feed =
            TraceFeed::from_trace(&trace, MonotonePolicy::Reject)
                .unwrap();
        assert_eq!(feed.sample(0, feed.steps + 100), 0.0);
    }
}

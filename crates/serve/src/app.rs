//! Per-app online serving state.
//!
//! [`ServedApp`] is the serving twin of `femux::manager::AppManager`:
//! the same sanitization, the same block-boundary classification, the
//! same degradation ladder — but with O(1) per-sample work and O(block)
//! memory. Where `AppManager` keeps the app's entire series and
//! re-extracts features from the last block, `ServedApp` keeps a
//! fixed-capacity forecast ring plus an
//! [`IncrementalExtractor`], so per-app memory is bounded by
//! `history + block_len` samples regardless of how long the pod runs.
//!
//! Given the same sample stream, `ServedApp`'s decision log is
//! *identical* to `AppManager::history_of_kinds` — `tests/
//! serve_determinism.rs` pins this replay-equals-offline contract.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use femux::degrade::{DegradeLadder, LadderDecision};
use femux::model::FemuxModel;
use femux_fault::{
    AppFaults, FaultStats, ForecastFate, ForecastFaults,
};
use femux_features::{BlockFeatures, IncrementalExtractor};
use femux_forecast::{Forecaster, ForecasterKind};
use femux_trace::AppId;

/// Online state for one served application.
pub struct ServedApp {
    id: AppId,
    model: Arc<FemuxModel>,
    /// Trailing forecast window (capacity `cfg.history`).
    history: VecDeque<f64>,
    extractor: IncrementalExtractor,
    ladder: DegradeLadder,
    current_kind: ForecasterKind,
    forecaster: Box<dyn Forecaster>,
    /// The moving-average fallback while degraded; `None` when healthy.
    fallback: Option<Box<dyn Forecaster>>,
    /// Every forecaster used, in order — the online mirror of
    /// `AppManager::history_of_kinds`.
    pub decisions: Vec<ForecasterKind>,
    /// Injected forecaster-fault stream, if serving under a fault plan.
    forecast_faults: Option<ForecastFaults>,
    /// Injected engine faults (report loss), if any.
    engine_faults: Option<AppFaults>,
    /// Per-pod concurrency limit (actuation divisor).
    concurrency_limit: u32,
    // --- outcome tallies (all deterministic) ---
    /// Completed blocks.
    pub blocks: usize,
    /// Concurrency reports lost to injected faults.
    pub reports_lost: u64,
    /// Samples sanitized because they arrived non-finite.
    pub nonfinite_samples: u64,
    /// Sum of per-step pod targets.
    pub target_pod_sum: u64,
    /// Largest single-step pod target.
    pub target_pod_max: usize,
}

impl ServedApp {
    /// Creates serving state for one app, starting on the model's
    /// default forecaster.
    pub fn new(
        id: AppId,
        model: Arc<FemuxModel>,
        exec_secs: f64,
        concurrency_limit: u32,
    ) -> Self {
        let kind = model.default_forecaster;
        let extractor = IncrementalExtractor::new(
            model.cfg.block_len,
            exec_secs,
            &model.cfg.features,
        );
        ServedApp {
            id,
            history: VecDeque::with_capacity(model.cfg.history),
            extractor,
            ladder: DegradeLadder::new(),
            current_kind: kind,
            forecaster: kind.build(),
            fallback: None,
            decisions: vec![kind],
            forecast_faults: None,
            engine_faults: None,
            concurrency_limit: concurrency_limit.max(1),
            model,
            blocks: 0,
            reports_lost: 0,
            nonfinite_samples: 0,
            target_pod_sum: 0,
            target_pod_max: 0,
        }
    }

    /// Installs injected fault streams (keyed by app id, so the draw
    /// sequence is independent of sharding). Also installs the
    /// process-wide hook that keeps injected panics off stderr.
    pub fn with_faults(
        mut self,
        forecast: ForecastFaults,
        engine: AppFaults,
    ) -> Self {
        femux_fault::silence_injected_panics();
        self.forecast_faults = Some(forecast);
        self.engine_faults = Some(engine);
        self
    }

    /// The app's identity.
    pub fn id(&self) -> AppId {
        self.id
    }

    /// The forecaster currently serving (the fallback while degraded).
    pub fn current(&self) -> ForecasterKind {
        if self.fallback.is_some() {
            ForecasterKind::MovingAverage
        } else {
            self.current_kind
        }
    }

    /// Whether the app is demoted to the fallback.
    pub fn is_degraded(&self) -> bool {
        self.fallback.is_some()
    }

    /// Injected-fault tallies across both streams.
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self
            .forecast_faults
            .as_ref()
            .map(|f| f.stats)
            .unwrap_or_default();
        if let Some(e) = &self.engine_faults {
            stats.merge(&e.stats);
        }
        stats
    }

    /// Serves one virtual-clock step: ingest the concurrency report,
    /// maintain features, re-classify at a block boundary, forecast one
    /// step ahead, and return the pod target. `step` is the virtual
    /// minute (spans are stamped at `step * 60 s`).
    pub fn step(
        &mut self,
        step: usize,
        value: f64,
        utilization: f64,
    ) -> usize {
        // Injected report loss arrives as a NaN sample, exercising the
        // same sanitization path a production report gap would.
        let lost = self
            .engine_faults
            .as_mut()
            .is_some_and(|e| e.lose_report());
        let value = if lost {
            self.reports_lost += 1;
            f64::NAN
        } else {
            value
        };
        // Mirrors AppManager::observe: one bad report can never poison
        // the history the forecasters and classifier read.
        let value = if value.is_finite() {
            value
        } else {
            femux_obs::counter_add("serve.nonfinite_observations", 1);
            self.nonfinite_samples += 1;
            0.0
        };
        let value = value.max(0.0);
        // The forecast window is the trailing `cfg.history` samples —
        // exactly `series[len - history..]` in AppManager terms (an
        // empty window when history is configured to 0).
        if self.history.len() == self.model.cfg.history {
            self.history.pop_front();
        }
        if self.model.cfg.history > 0 {
            self.history.push_back(value);
        }
        if let Some(block) = self.extractor.push(value) {
            self.on_block(step, block);
        }
        let pred = self.forecast_one();
        // Knative-style actuation: provision the forecast against the
        // per-pod concurrency target scaled by the utilization headroom
        // (cf. FemuxPolicy::target_pods + PolicyCtx::pods_for_concurrency).
        let target = pred / utilization.clamp(0.05, 1.0);
        let pods = if target <= 0.0 {
            0
        } else {
            (target / self.concurrency_limit as f64).ceil() as usize
        };
        self.target_pod_sum += pods as u64;
        self.target_pod_max = self.target_pod_max.max(pods);
        femux_obs::observe("serve.target_pods", pods as u64);
        if femux_obs::events_enabled() {
            femux_obs::instant(
                &format!("serve/app-{}", self.id.0),
                "serve",
                "actuate",
                virtual_ts_us(step),
                &[("pods", pods as u64)],
            );
        }
        pods
    }

    /// Block boundary: classify the finished block and let the
    /// degradation ladder arbitrate the next forecaster.
    fn on_block(&mut self, step: usize, block: BlockFeatures) {
        self.blocks += 1;
        let kind =
            self.model.select_from_features(&block.features, block.idle);
        femux_obs::counter_add("serve.blocks_classified", 1);
        femux_obs::counter_add(
            &format!("serve.selected.{}", kind.name()),
            1,
        );
        if femux_obs::events_enabled() {
            let track = format!("serve/app-{}", self.id.0);
            femux_obs::span(
                &track,
                "serve",
                "classify",
                virtual_ts_us(step),
                0,
                &[
                    ("block", block.seq as u64),
                    ("idle", block.idle as u64),
                ],
            );
        }
        match self.ladder.block_boundary() {
            LadderDecision::Fallback => {
                self.decisions.push(ForecasterKind::MovingAverage);
            }
            LadderDecision::Repromote => {
                self.fallback = None;
                if kind != self.current_kind {
                    femux_obs::counter_add("serve.switches", 1);
                }
                self.current_kind = kind;
                self.forecaster = kind.build();
                self.decisions.push(kind);
            }
            LadderDecision::Healthy { .. } => {
                if kind != self.current_kind {
                    femux_obs::counter_add("serve.switches", 1);
                    self.current_kind = kind;
                    self.forecaster = kind.build();
                }
                self.decisions.push(kind);
            }
        }
    }

    /// One-step forecast under the same panic/non-finite guard as
    /// `AppManager::forecast`; a fault demotes to the moving-average
    /// fallback via the shared ladder.
    fn forecast_one(&mut self) -> f64 {
        femux_obs::counter_add("serve.forecasts", 1);
        let window = self.history.make_contiguous();
        if self.fallback.is_none() {
            let fate = match self.forecast_faults.as_mut() {
                Some(f) => f.fate(),
                None => ForecastFate::None,
            };
            let forecaster = &mut self.forecaster;
            let hist: &[f64] = window;
            let result = catch_unwind(AssertUnwindSafe(move || {
                let mut out = forecaster.forecast(hist, 1);
                match fate {
                    ForecastFate::None => {}
                    ForecastFate::Nan => {
                        out.iter_mut().for_each(|v| *v = f64::NAN)
                    }
                    ForecastFate::Inf => {
                        out.iter_mut().for_each(|v| *v = f64::INFINITY)
                    }
                    ForecastFate::Panic => femux_fault::inject_panic(),
                }
                out
            }));
            match result {
                Ok(out) if out.iter().all(|v| v.is_finite()) => {
                    return out[0];
                }
                Ok(_) => {
                    femux_obs::counter_add("serve.forecast_nonfinite", 1);
                }
                Err(_) => {
                    femux_obs::counter_add("serve.forecast_panics", 1);
                }
            }
            self.ladder.record_fault();
            self.fallback = Some(ForecasterKind::MovingAverage.build());
            self.decisions.push(ForecasterKind::MovingAverage);
        }
        let window = self.history.make_contiguous();
        self.fallback
            .as_mut()
            .expect("degraded path always has a fallback installed")
            .forecast(window, 1)[0]
    }
}

/// Virtual timestamp of a serving step: one trace minute per step.
fn virtual_ts_us(step: usize) -> u64 {
    step as u64 * 60_000_000
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux::config::FemuxConfig;
    use femux::model::{train, ClassifierKind, TrainApp};
    use femux_stats::rng::Rng;

    fn model() -> Arc<FemuxModel> {
        let cfg = FemuxConfig::for_tests();
        let mut rng = Rng::seed_from_u64(1);
        let apps: Vec<TrainApp> = (0..6)
            .map(|i| {
                let series: Vec<f64> = if i % 2 == 0 {
                    (0..600)
                        .map(|t| {
                            5.0 + 4.0
                                * (2.0 * std::f64::consts::PI * t as f64
                                    / 24.0)
                                    .sin()
                        })
                        .collect()
                } else {
                    (0..600)
                        .map(|_| (2.0 + rng.normal()).max(0.0))
                        .collect()
                };
                TrainApp {
                    concurrency: series,
                    exec_secs: 0.5,
                    mem_gb: 0.5,
                    pod_concurrency: 1,
                }
            })
            .collect();
        Arc::new(
            train(&apps, &cfg, ClassifierKind::KMeans).expect("model"),
        )
    }

    #[test]
    fn decisions_match_offline_app_manager() {
        // The replay-equals-offline contract in miniature (the full
        // fleet sweep lives in tests/serve_determinism.rs): the same
        // stream drives a ServedApp and an AppManager to the same
        // decision log.
        let model = model();
        let mut served = ServedApp::new(AppId(3), model.clone(), 0.5, 1);
        let mut mgr = femux::manager::AppManager::new(model.clone(), 0.5);
        for t in 0..model.cfg.block_len * 3 + 50 {
            let v = (3.0
                + 2.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0)
                    .sin())
            .max(0.0);
            served.step(t, v, 0.7);
            mgr.observe(v);
            let _ = mgr.forecast(1);
        }
        assert_eq!(served.decisions, mgr.history_of_kinds);
        assert_eq!(served.blocks, 3);
    }

    #[test]
    fn forecast_faults_demote_and_recover_like_offline() {
        let model = model();
        let plan = femux_fault::FaultConfig::uniform(11, 1.0);
        let mut served = ServedApp::new(AppId(3), model.clone(), 0.5, 1)
            .with_faults(
                plan.forecast_faults(AppId(3)),
                femux_fault::FaultConfig::off(11).engine_faults(AppId(3)),
            );
        let block = model.cfg.block_len;
        for t in 0..block * 3 {
            let pods =
                served.step(t, (2.0 + (t as f64 * 0.3).sin()).max(0.0), 0.7);
            // Whatever fate fires, actuation stays sane.
            assert!(pods < 10_000);
        }
        assert!(served.fault_stats().forecast_faults > 0);
        assert!(served
            .decisions
            .contains(&ForecasterKind::MovingAverage));
    }

    #[test]
    fn report_loss_sanitizes_to_zero_sample() {
        let model = model();
        // Rate 1.0: every report is lost; the app must behave exactly
        // like an idle app (all-zero samples), not crash or emit NaN.
        let plan = femux_fault::FaultConfig::uniform(5, 1.0);
        let mut served = ServedApp::new(AppId(9), model.clone(), 0.5, 1)
            .with_faults(
                femux_fault::FaultConfig::off(5).forecast_faults(AppId(9)),
                plan.engine_faults(AppId(9)),
            );
        for t in 0..model.cfg.block_len {
            let pods = served.step(t, 5.0, 0.7);
            assert_eq!(pods, 0, "lost reports must read as idle");
        }
        assert_eq!(served.reports_lost, model.cfg.block_len as u64);
        assert_eq!(served.nonfinite_samples, model.cfg.block_len as u64);
    }
}

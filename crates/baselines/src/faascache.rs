//! FaasCache: keep-alive as greedy-dual caching (Fuerst & Sharma,
//! ASPLOS '21).
//!
//! FaasCache treats warm containers as entries of a fixed-size cache.
//! Each function's priority is `clock + freq * cost / size` (cost = its
//! cold-start latency, size = its memory); on eviction the global clock
//! rises to the evicted priority, aging stale entries out. The paper's
//! comparison (Fig. 11-Left) sweeps the cache size: too small incurs
//! cold starts, too large wastes memory — the fixed size is exactly what
//! FeMux's adaptability beats.
//!
//! This is a self-contained fleet simulator (the cache couples
//! applications, so the per-app engine in `femux-sim` does not apply).
//! It follows the published algorithm with single-function applications
//! and concurrency 1, matching how the paper ran the FaasCache artifact.

use femux_rum::CostRecord;
use femux_trace::types::Trace;

/// Configuration for the FaasCache simulation.
#[derive(Debug, Clone)]
pub struct FaasCacheConfig {
    /// Cache capacity in GB.
    pub capacity_gb: f64,
    /// Cold-start latency override in ms (the paper fixes 808 ms).
    pub cold_start_ms: u32,
}

impl Default for FaasCacheConfig {
    fn default() -> Self {
        FaasCacheConfig {
            capacity_gb: 270.0,
            cold_start_ms: 808,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Container {
    /// Busy until this time (ms); idle afterwards.
    busy_until: u64,
    /// Time the container was created/last became idle-tracked.
    alive_since: u64,
}

#[derive(Debug)]
struct FuncState {
    mem_gb: f64,
    freq: u64,
    priority: f64,
    containers: Vec<Container>,
    costs: CostRecord,
    busy_gb_ms: f64,
    alive_gb_ms_last_t: u64,
    alive_gb_ms: f64,
}

/// Result of a FaasCache run.
#[derive(Debug, Clone)]
pub struct FaasCacheResult {
    /// Per-application cost records (trace order).
    pub per_app: Vec<CostRecord>,
    /// Fleet totals.
    pub total: CostRecord,
    /// Evictions performed.
    pub evictions: u64,
}

/// Simulates the whole trace against one shared greedy-dual cache.
pub fn simulate(trace: &Trace, cfg: &FaasCacheConfig) -> FaasCacheResult {
    // Merge all invocations into one time-ordered stream.
    let mut events: Vec<(u64, usize, u32)> = Vec::new();
    for (ai, app) in trace.apps.iter().enumerate() {
        for inv in &app.invocations {
            events.push((inv.start_ms, ai, inv.duration_ms));
        }
    }
    events.sort_unstable_by_key(|e| e.0);

    let mut funcs: Vec<FuncState> = trace
        .apps
        .iter()
        .map(|app| FuncState {
            mem_gb: app.mem_used_mb as f64 / 1_024.0,
            freq: 0,
            priority: 0.0,
            containers: Vec::new(),
            costs: CostRecord::default(),
            busy_gb_ms: 0.0,
            alive_gb_ms_last_t: 0,
            alive_gb_ms: 0.0,
        })
        .collect();
    let mut clock = 0.0f64;
    let mut cache_gb = 0.0f64;
    let mut evictions = 0u64;
    let cold_ms = cfg.cold_start_ms as u64;

    // Integrate per-function alive time lazily: each function's
    // containers contribute mem_gb * count between updates.
    let touch = |f: &mut FuncState, t: u64| {
        let dt = t.saturating_sub(f.alive_gb_ms_last_t) as f64;
        f.alive_gb_ms += dt * f.mem_gb * f.containers.len() as f64;
        f.alive_gb_ms_last_t = t;
    };

    for &(t, ai, dur) in &events {
        // Update this function's accounting to now.
        touch(&mut funcs[ai], t);
        let f = &mut funcs[ai];
        f.freq += 1;
        f.costs.invocations += 1;
        f.costs.exec_seconds += dur as f64 / 1_000.0;
        // Find an idle warm container.
        let warm = f
            .containers
            .iter_mut()
            .find(|c| c.busy_until <= t);
        let priority_cost = cold_ms as f64;
        if let Some(c) = warm {
            c.busy_until = t + dur as u64;
            f.costs.service_seconds += dur as f64 / 1_000.0;
            f.busy_gb_ms += dur as f64 * f.mem_gb;
            f.priority =
                clock + f.freq as f64 * priority_cost / f.mem_gb;
            continue;
        }
        // Cold start: need room for one container.
        f.costs.cold_starts += 1;
        f.costs.cold_start_seconds += cold_ms as f64 / 1_000.0;
        f.costs.service_seconds += (cold_ms + dur as u64) as f64 / 1_000.0;
        f.busy_gb_ms += dur as f64 * f.mem_gb;
        let need = f.mem_gb;
        f.priority = clock + f.freq as f64 * priority_cost / f.mem_gb;
        f.containers.push(Container {
            busy_until: t + cold_ms + dur as u64,
            alive_since: t,
        });
        cache_gb += need;
        // Evict idle containers (lowest priority first) until we fit.
        while cache_gb > cfg.capacity_gb {
            // Find the idle container of the lowest-priority function.
            let mut victim: Option<(usize, usize, f64)> = None;
            for (fi, fs) in funcs.iter().enumerate() {
                if fs.containers.is_empty() {
                    continue;
                }
                for (ci, c) in fs.containers.iter().enumerate() {
                    if c.busy_until <= t
                        && victim
                            .map(|(_, _, p)| fs.priority < p)
                            .unwrap_or(true)
                    {
                        victim = Some((fi, ci, fs.priority));
                    }
                }
            }
            let Some((fi, ci, pri)) = victim else {
                // Everything is busy: the cache temporarily overshoots,
                // as the artifact allows.
                break;
            };
            touch(&mut funcs[fi], t);
            let _ = funcs[fi].containers.swap_remove(ci).alive_since;
            cache_gb -= funcs[fi].mem_gb;
            clock = pri;
            evictions += 1;
        }
    }
    // Close out accounting at the horizon.
    let horizon = trace.span_ms.max(
        funcs
            .iter()
            .flat_map(|f| f.containers.iter().map(|c| c.busy_until))
            .max()
            .unwrap_or(0),
    );
    let mut per_app = Vec::with_capacity(funcs.len());
    let mut total = CostRecord::default();
    for f in &mut funcs {
        touch_final(f, horizon);
        f.costs.allocated_gb_seconds = f.alive_gb_ms / 1_000.0;
        f.costs.wasted_gb_seconds =
            (f.costs.allocated_gb_seconds - f.busy_gb_ms / 1_000.0)
                .max(0.0);
        total.merge(&f.costs);
        per_app.push(f.costs);
    }
    femux_obs::counter_add("baselines.faascache.simulations", 1);
    femux_obs::counter_add("baselines.faascache.evictions", evictions);
    FaasCacheResult {
        per_app,
        total,
        evictions,
    }
}

fn touch_final(f: &mut FuncState, t: u64) {
    let dt = t.saturating_sub(f.alive_gb_ms_last_t) as f64;
    f.alive_gb_ms += dt * f.mem_gb * f.containers.len() as f64;
    f.alive_gb_ms_last_t = t;
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_trace::synth::ibm::{generate, IbmFleetConfig};
    use femux_trace::types::{
        AppId, AppRecord, Invocation, Trace, WorkloadKind,
    };

    fn single_app_trace(gaps_ms: &[u64], dur: u32) -> Trace {
        let mut trace = Trace::new(3_600_000);
        let mut app = AppRecord::new(AppId(0), WorkloadKind::Function);
        app.config.concurrency = 1;
        app.mem_used_mb = 1_024;
        let mut t = 1_000;
        for &g in gaps_ms {
            t += g;
            app.invocations.push(Invocation {
                start_ms: t,
                duration_ms: dur,
                delay_ms: 0,
            });
        }
        trace.apps.push(app);
        trace
    }

    #[test]
    fn warm_hits_with_ample_cache() {
        let trace = single_app_trace(&[0, 10_000, 10_000, 10_000], 100);
        let res = simulate(&trace, &FaasCacheConfig::default());
        // First is cold; the rest hit the cached container.
        assert_eq!(res.total.cold_starts, 1);
        assert_eq!(res.total.invocations, 4);
        assert_eq!(res.evictions, 0);
    }

    #[test]
    fn tiny_cache_evicts_and_misses() {
        // Two apps alternating; cache holds only one container.
        let mut trace = Trace::new(600_000);
        for id in 0..2u32 {
            let mut app =
                AppRecord::new(AppId(id), WorkloadKind::Function);
            app.mem_used_mb = 1_024;
            app.config.concurrency = 1;
            for k in 0..5u64 {
                app.invocations.push(Invocation {
                    start_ms: 10_000 + k * 20_000 + id as u64 * 10_000,
                    duration_ms: 100,
                    delay_ms: 0,
                });
            }
            trace.apps.push(app);
        }
        let small = FaasCacheConfig {
            capacity_gb: 1.0,
            cold_start_ms: 808,
        };
        let res = simulate(&trace, &small);
        assert!(res.evictions > 0, "expected evictions");
        assert!(
            res.total.cold_starts > 2,
            "alternation should thrash: {} cold",
            res.total.cold_starts
        );
    }

    #[test]
    fn larger_cache_is_pareto_toward_fewer_cold_starts() {
        let trace = generate(&IbmFleetConfig::small(21));
        let small = simulate(
            &trace,
            &FaasCacheConfig {
                capacity_gb: 2.0,
                cold_start_ms: 808,
            },
        );
        let large = simulate(
            &trace,
            &FaasCacheConfig {
                capacity_gb: 2_000.0,
                cold_start_ms: 808,
            },
        );
        assert!(
            large.total.cold_starts < small.total.cold_starts,
            "large {} vs small {}",
            large.total.cold_starts,
            small.total.cold_starts
        );
        assert!(
            large.total.wasted_gb_seconds
                > small.total.wasted_gb_seconds,
            "large cache must waste more"
        );
    }

    #[test]
    fn accounting_is_consistent() {
        let trace = generate(&IbmFleetConfig::small(22));
        let res = simulate(&trace, &FaasCacheConfig::default());
        assert_eq!(res.total.invocations, trace.total_invocations());
        for r in &res.per_app {
            r.check().expect("per-app record consistent");
        }
    }

    #[test]
    fn hot_function_keeps_priority() {
        // A frequently invoked function should not be evicted by a
        // one-shot function under pressure.
        let mut trace = Trace::new(600_000);
        let mut hot = AppRecord::new(AppId(0), WorkloadKind::Function);
        hot.mem_used_mb = 1_024;
        for k in 0..50u64 {
            hot.invocations.push(Invocation {
                start_ms: 1_000 + k * 5_000,
                duration_ms: 50,
                delay_ms: 0,
            });
        }
        let mut cold_app =
            AppRecord::new(AppId(1), WorkloadKind::Function);
        cold_app.mem_used_mb = 1_024;
        cold_app.invocations.push(Invocation {
            start_ms: 100_000,
            duration_ms: 50,
            delay_ms: 0,
        });
        trace.apps.push(hot);
        trace.apps.push(cold_app);
        let res = simulate(
            &trace,
            &FaasCacheConfig {
                capacity_gb: 1.0,
                cold_start_ms: 808,
            },
        );
        // The hot app pays at most a couple of cold starts.
        assert!(
            res.per_app[0].cold_starts <= 2,
            "hot app cold starts {}",
            res.per_app[0].cold_starts
        );
    }
}

//! Aquatope's LSTM-based scaling (Zhou et al., ASPLOS '23).
//!
//! Aquatope trains one LSTM per application on a 48-minute input window
//! and provisions capacity from its next-window prediction. The paper's
//! comparison (Fig. 11-Right, §5.1.1) runs the artifact with the first
//! 7 days of each test trace as training data and highlights the cost
//! profile: per-app training 4x slower and inference ~28x slower than
//! FeMux — and accuracy that adapts too slowly to bursty traffic.

use femux_forecast::lstm::{LstmConfig, LstmForecaster};
use femux_forecast::Forecaster;
use femux_sim::policy::{IdleRun, IdleTicks, PolicyCtx, ScalingPolicy};

/// Aquatope's per-application LSTM policy.
pub struct AquatopePolicy {
    lstm: LstmForecaster,
    history: usize,
}

impl AquatopePolicy {
    /// Trains a policy for one application from its per-interval arrival
    /// counts (e.g. the first 7 days). Returns the policy and the final
    /// training MSE (NaN when the series was too short to train, in
    /// which case the policy falls back to persistence).
    pub fn train(train_arrivals: &[f64], seed: u64) -> (Self, f64) {
        let mut lstm = LstmForecaster::new(LstmConfig {
            window: 48,
            hidden: 12,
            epochs: 6,
            learning_rate: 0.01,
            max_samples: 300,
            seed,
        });
        let mse = lstm.train(train_arrivals);
        femux_obs::counter_add("baselines.aquatope.lstm_trainings", 1);
        (
            AquatopePolicy {
                lstm,
                history: 48,
            },
            mse,
        )
    }
}

impl ScalingPolicy for AquatopePolicy {
    fn name(&self) -> String {
        "aquatope-lstm".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        let start = ctx.arrivals.len().saturating_sub(self.history);
        let window = &ctx.arrivals[start..];
        if window.is_empty() {
            return 0;
        }
        let predicted_arrivals = self.lstm.forecast(window, 1)[0];
        if predicted_arrivals < 0.5 {
            return 0;
        }
        let total_arrivals: f64 = window.iter().sum();
        let conc_window = &ctx.avg_concurrency
            [ctx.avg_concurrency.len() - window.len()..];
        let total_conc: f64 = conc_window.iter().sum();
        let conc_per_arrival = if total_arrivals > 0.0 {
            total_conc / total_arrivals
        } else {
            1.0 / ctx.config.concurrency as f64
        };
        let predicted_conc = (predicted_arrivals * conc_per_arrival)
            .max(1.0 / ctx.config.concurrency as f64);
        ctx.pods_for_concurrency(predicted_conc)
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        let n = ctx.arrivals.len();
        let settled = n >= self.history
            && ctx.arrivals[n - self.history..]
                .iter()
                .all(|&v| v == 0.0);
        let target = self.target_pods(&ctx);
        if !settled {
            return IdleRun { target, ticks: 1 };
        }
        // Saturated all-zero window: the (pure) LSTM sees an identical
        // input on every later tick of the stretch, so the decision
        // repeats with no state or telemetry to advance.
        IdleRun {
            target,
            ticks: max_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_sim::{simulate_app, SimConfig, ZeroPolicy};
    use femux_trace::repr::counts_per_minute;
    use femux_trace::types::{
        AppId, AppRecord, Invocation, WorkloadKind,
    };

    fn periodic_app(spans_min: u64) -> AppRecord {
        let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
        app.config.concurrency = 1;
        app.mem_used_mb = 512;
        let mut t = 60_000;
        while t < spans_min * 60_000 {
            // 3 requests every 8 minutes.
            for k in 0..3u64 {
                app.invocations.push(Invocation {
                    start_ms: t + k * 2_000,
                    duration_ms: 60_000,
                    delay_ms: 0,
                });
            }
            t += 8 * 60_000;
        }
        app
    }

    #[test]
    fn trained_policy_reduces_cold_starts_on_periodic_app() {
        let app = periodic_app(400);
        let span = 400 * 60_000u64;
        let train_series =
            counts_per_minute(&app.invocations, span / 2);
        let (mut policy, mse) = AquatopePolicy::train(&train_series, 7);
        assert!(!mse.is_nan(), "training must run");
        let cfg = SimConfig {
            respect_min_scale: false,
            ..SimConfig::default()
        };
        let aqua = simulate_app(&app, &mut policy, span, &cfg);
        let zero = simulate_app(&app, &mut ZeroPolicy, span, &cfg);
        assert!(
            aqua.costs.cold_starts < zero.costs.cold_starts,
            "aquatope {} vs zero {}",
            aqua.costs.cold_starts,
            zero.costs.cold_starts
        );
    }

    #[test]
    fn short_training_series_degrades_gracefully() {
        let (mut policy, mse) = AquatopePolicy::train(&[1.0; 10], 7);
        assert!(mse.is_nan());
        // Policy still functions (persistence fallback inside LSTM).
        let app = periodic_app(30);
        let res = simulate_app(
            &app,
            &mut policy,
            30 * 60_000,
            &SimConfig::default(),
        );
        assert_eq!(res.costs.invocations, app.invocations.len() as u64);
    }

    #[test]
    fn inference_is_slower_than_lightweight_forecasters() {
        // The cost-profile claim: LSTM inference >> AR inference.
        let series: Vec<f64> = (0..300).map(|t| (t % 10) as f64).collect();
        let (mut policy, _) = AquatopePolicy::train(&series, 9);
        let mut ar = femux_forecast::ar::ArForecaster::paper();

        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            let _ = policy.lstm.forecast(&series[..120], 1);
        }
        let lstm_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..20 {
            let _ = ar.forecast(&series[..120], 1);
        }
        let ar_time = t1.elapsed();
        assert!(
            lstm_time > ar_time,
            "LSTM {lstm_time:?} should cost more than AR {ar_time:?}"
        );
    }
}

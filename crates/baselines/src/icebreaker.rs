//! IceBreaker's adaptive lifetime policy (Roy et al., ASPLOS '22).
//!
//! IceBreaker forecasts invocations-per-minute with a single FFT model
//! and keeps that much capacity warm. The paper compares against
//! IceBreaker's *lifetime policy only*, assuming homogeneous resources
//! (§5.1.1), using service times and keep-alive cost normalized to a
//! 10-minute keep-alive — and attributes IceBreaker's losses to the
//! single-forecaster design: FFT "often forecasts zero" for low-traffic
//! apps and mis-tracks highly variable ones.

use femux_forecast::fft::FftForecaster;
use femux_forecast::Forecaster;
use femux_sim::policy::{IdleRun, IdleTicks, PolicyCtx, ScalingPolicy};

/// IceBreaker's FFT-driven scaling policy.
///
/// Forecasts next-interval arrivals from the trailing window of
/// per-interval counts, then converts to pods using the observed
/// execution-time ratio (`avg_concurrency / arrivals`) — IceBreaker's
/// invocation-count representation mapped onto our pod model.
pub struct IceBreakerPolicy {
    fft: FftForecaster,
    history: usize,
}

impl IceBreakerPolicy {
    /// Creates the policy with the paper's configuration (top-10
    /// harmonics, two-hour history).
    pub fn new() -> Self {
        IceBreakerPolicy {
            fft: FftForecaster::paper(),
            history: 120,
        }
    }
}

impl Default for IceBreakerPolicy {
    fn default() -> Self {
        IceBreakerPolicy::new()
    }
}

impl ScalingPolicy for IceBreakerPolicy {
    fn name(&self) -> String {
        "icebreaker-fft".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        let start = ctx.arrivals.len().saturating_sub(self.history);
        let window = &ctx.arrivals[start..];
        if window.is_empty() {
            return 0;
        }
        let predicted_arrivals = self.fft.forecast(window, 1)[0];
        femux_obs::counter_add("baselines.icebreaker.fft_forecasts", 1);
        if predicted_arrivals < 0.5 {
            // FFT forecasts (almost) nothing: keep nothing warm. This is
            // the failure mode the paper highlights for sparse apps.
            return 0;
        }
        // Estimate concurrency demand from the observed ratio of
        // concurrency to arrivals over the same window.
        let total_arrivals: f64 = window.iter().sum();
        let conc_window = &ctx.avg_concurrency
            [ctx.avg_concurrency.len() - window.len()..];
        let total_conc: f64 = conc_window.iter().sum();
        let conc_per_arrival = if total_arrivals > 0.0 {
            total_conc / total_arrivals
        } else {
            1.0 / ctx.config.concurrency as f64
        };
        let predicted_conc =
            (predicted_arrivals * conc_per_arrival).max(
                // Never below one busy slot when traffic is predicted.
                1.0 / ctx.config.concurrency as f64,
            );
        ctx.pods_for_concurrency(predicted_conc)
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        let n = ctx.arrivals.len();
        let settled = n >= self.history
            && ctx.arrivals[n - self.history..]
                .iter()
                .all(|&v| v == 0.0);
        let target = self.target_pods(&ctx);
        if !settled {
            // The forecast window is still growing or still contains
            // live samples: each tick feeds the FFT a different input.
            return IdleRun { target, ticks: 1 };
        }
        // Saturated all-zero window: every later tick of the stretch
        // hands the (pure) FFT a byte-identical window, so the decision
        // repeats and only the forecast counter advances.
        femux_obs::counter_add(
            "baselines.icebreaker.fft_forecasts",
            max_ticks - 1,
        );
        IdleRun {
            target,
            ticks: max_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_sim::{run_fleet, simulate_app, SimConfig, ZeroPolicy};
    use femux_trace::synth::ibm::{generate, IbmFleetConfig};
    use femux_trace::types::{
        AppId, AppRecord, Invocation, WorkloadKind,
    };

    fn periodic_app(period_min: u64, spans_min: u64) -> AppRecord {
        let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
        app.config.concurrency = 1;
        app.mem_used_mb = 512;
        // A burst of 5 requests every `period_min` minutes.
        let mut t = 120_000;
        while t < spans_min * 60_000 {
            for k in 0..5u64 {
                app.invocations.push(Invocation {
                    start_ms: t + k * 1_000,
                    duration_ms: 30_000,
                    delay_ms: 0,
                });
            }
            t += period_min * 60_000;
        }
        app
    }

    #[test]
    fn fft_policy_beats_zero_on_periodic_traffic() {
        let app = periodic_app(10, 600);
        let span = 600 * 60_000;
        let cfg = SimConfig {
            respect_min_scale: false,
            ..SimConfig::default()
        };
        let mut ib = IceBreakerPolicy::new();
        let ice = simulate_app(&app, &mut ib, span, &cfg);
        let mut zero = ZeroPolicy;
        let none = simulate_app(&app, &mut zero, span, &cfg);
        assert!(
            ice.costs.cold_starts < none.costs.cold_starts,
            "icebreaker {} vs zero {}",
            ice.costs.cold_starts,
            none.costs.cold_starts
        );
    }

    #[test]
    fn forecasting_zero_keeps_nothing_warm() {
        // An app with a single ancient invocation: once the spike slides
        // out of the FFT's 2-hour window, the forecast is zero and no
        // pods are held. (While the spike is still inside the window the
        // FFT's periodic extension repeats it — the low-traffic
        // pathology §5.1.1 describes.)
        let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
        app.config.concurrency = 1;
        app.invocations.push(Invocation {
            start_ms: 1_000,
            duration_ms: 100,
            delay_ms: 0,
        });
        let cfg = SimConfig {
            respect_min_scale: false,
            ..SimConfig::default()
        };
        let span = 5 * 3_600_000; // spike leaves the window after 2 h
        let res = simulate_app(
            &app,
            &mut IceBreakerPolicy::new(),
            span,
            &cfg,
        );
        // No pods in the final hours...
        let tail = &res.pod_counts[res.pod_counts.len() - 60..];
        assert!(
            tail.iter().all(|&p| p == 0),
            "pods still held at the end: {tail:?}"
        );
        // ...and total allocation is well below holding one warm pod
        // for the whole span (~2600 GB-s at 150 MB).
        assert!(
            res.costs.allocated_gb_seconds < 1_500.0,
            "allocated {}",
            res.costs.allocated_gb_seconds
        );
    }

    #[test]
    fn runs_over_a_fleet() {
        let trace = generate(&IbmFleetConfig::small(31));
        let out = run_fleet(&trace, &SimConfig::default(), |_, _| {
            Box::new(IceBreakerPolicy::new())
        });
        assert_eq!(out.total.invocations, trace.total_invocations());
        for r in &out.per_app {
            r.check().expect("per-app record consistent");
        }
    }
}

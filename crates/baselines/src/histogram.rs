//! Hybrid idle-time histogram policy (Shahrad et al., ATC '20).
//!
//! The "Serverless in the Wild" policy tracks each application's idle
//! times in a histogram. When the distribution is usable, the container
//! is shut down right after an invocation, *pre-warmed* shortly before
//! the 5th-percentile idle time elapses, and kept alive until the 99th
//! percentile; out-of-bounds or pattern-less apps fall back to a fixed
//! keep-alive. This is the adaptive-keep-alive ancestor FeMux's related
//! work section positions against.

use femux_sim::policy::{IdleRun, IdleTicks, PolicyCtx, ScalingPolicy};

/// Idle-time histogram with minute-granularity bins.
#[derive(Debug, Clone)]
pub struct IdleHistogram {
    /// Bin k counts idle times in `[k, k+1)` minutes; the last bin
    /// absorbs everything longer.
    bins: Vec<u64>,
    total: u64,
}

impl IdleHistogram {
    /// Creates a histogram covering up to `max_minutes`.
    pub fn new(max_minutes: usize) -> Self {
        IdleHistogram {
            bins: vec![0; max_minutes.max(1)],
            total: 0,
        }
    }

    /// Records an idle time in minutes.
    pub fn record(&mut self, idle_minutes: f64) {
        let idx =
            (idle_minutes.max(0.0) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Returns the number of recorded idle times.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the `q`-quantile in minutes (upper bin edge).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (k, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return (k + 1) as f64;
            }
        }
        self.bins.len() as f64
    }

    /// A histogram is "representable" when it has enough mass and is not
    /// dominated by the overflow bin (the paper's OOB criterion).
    pub fn representable(&self) -> bool {
        if self.total < 8 {
            return false;
        }
        let overflow = self.bins[self.bins.len() - 1];
        (overflow as f64) < 0.5 * self.total as f64
    }
}

/// The hybrid-histogram scaling policy.
pub struct HybridHistogramPolicy {
    histogram: IdleHistogram,
    /// Fallback keep-alive when the histogram is not representable, in
    /// minutes.
    fallback_keepalive_min: f64,
    /// Pre-warm margin before the predicted arrival, minutes.
    prewarm_margin_min: f64,
    last_active_interval: Option<usize>,
}

impl HybridHistogramPolicy {
    /// Creates the policy with the paper's 4-hour histogram range and a
    /// 10-minute fallback keep-alive.
    pub fn new() -> Self {
        HybridHistogramPolicy {
            histogram: IdleHistogram::new(240),
            fallback_keepalive_min: 10.0,
            prewarm_margin_min: 1.0,
            last_active_interval: None,
        }
    }
}

impl Default for HybridHistogramPolicy {
    fn default() -> Self {
        HybridHistogramPolicy::new()
    }
}

impl ScalingPolicy for HybridHistogramPolicy {
    fn name(&self) -> String {
        "hybrid-histogram".into()
    }

    fn target_pods(&mut self, ctx: &PolicyCtx<'_>) -> usize {
        let interval_min = ctx.interval_ms as f64 / 60_000.0;
        let k = ctx.arrivals.len();
        // Update the idle-time histogram from observed activity gaps.
        if k > 0 && ctx.arrivals[k - 1] > 0.0 {
            if let Some(last) = self.last_active_interval {
                let idle_intervals = (k - 1).saturating_sub(last + 1);
                if idle_intervals > 0 {
                    self.histogram
                        .record(idle_intervals as f64 * interval_min);
                }
            }
            self.last_active_interval = Some(k - 1);
        }
        let Some(last) = self.last_active_interval else {
            return 0;
        };
        let idle_min = (k - 1 - last) as f64 * interval_min;
        let capacity_needed = ctx
            .peak_concurrency
            .get(last)
            .copied()
            .unwrap_or(1.0)
            .max(ctx.inflight as f64)
            .max(1.0);
        let keep = if self.histogram.representable() {
            let head = self.histogram.quantile(0.05);
            let tail = self.histogram.quantile(0.99);
            // Shut down inside (head - margin, ...] only when safely
            // before the predicted next arrival; keep alive through the
            // window [head - margin, tail].
            idle_min <= tail
                && (idle_min + self.prewarm_margin_min >= head
                    || idle_min < self.prewarm_margin_min)
        } else {
            idle_min <= self.fallback_keepalive_min
        };
        if keep {
            ctx.pods_for_concurrency(capacity_needed)
        } else {
            0
        }
    }

    fn tick_idle(
        &mut self,
        idle: &IdleTicks<'_>,
        i: u64,
        current_pods: usize,
        max_ticks: u64,
    ) -> IdleRun {
        let ctx = idle.ctx(i, current_pods);
        let k = ctx.arrivals.len();
        if k == 0 || ctx.arrivals[k - 1] != 0.0 {
            // The newest interval had activity (e.g. the accrued close
            // that opens a batch): this tick records a gap and moves
            // `last_active_interval`, so take it per-tick.
            return IdleRun {
                target: self.target_pods(&ctx),
                ticks: 1,
            };
        }
        // Idle tick: `target_pods` leaves the histogram untouched and
        // decides purely from the elapsed idle time, which grows by one
        // interval per tick. Probe the (pure) keep decision forward and
        // batch the ticks on which it cannot change.
        let target = self.target_pods(&ctx);
        let Some(last) = self.last_active_interval else {
            // Never active: the decision is 0 until first activity.
            return IdleRun {
                target,
                ticks: max_ticks,
            };
        };
        let interval_min = ctx.interval_ms as f64 / 60_000.0;
        let representable = self.histogram.representable();
        let (head, tail) = if representable {
            (self.histogram.quantile(0.05), self.histogram.quantile(0.99))
        } else {
            (0.0, 0.0)
        };
        let keep_at = |units: usize| -> bool {
            let idle_min = units as f64 * interval_min;
            if representable {
                idle_min <= tail
                    && (idle_min + self.prewarm_margin_min >= head
                        || idle_min < self.prewarm_margin_min)
            } else {
                idle_min <= self.fallback_keepalive_min
            }
        };
        let units0 = k - 1 - last;
        let keep0 = keep_at(units0);
        let mut run = 1u64;
        while run < max_ticks && keep_at(units0 + run as usize) == keep0
        {
            run += 1;
        }
        IdleRun { target, ticks: run }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use femux_sim::{simulate_app, SimConfig, KeepAlivePolicy};
    use femux_trace::types::{
        AppId, AppRecord, Invocation, WorkloadKind,
    };

    #[test]
    fn histogram_quantiles() {
        let mut h = IdleHistogram::new(60);
        for m in [1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 10.0, 30.0] {
            h.record(m);
        }
        assert_eq!(h.total(), 8);
        assert!(h.quantile(0.05) <= 2.0);
        assert!(h.quantile(0.99) >= 30.0);
        assert!(h.representable());
    }

    #[test]
    fn overflow_dominated_histogram_is_oob() {
        let mut h = IdleHistogram::new(10);
        for _ in 0..10 {
            h.record(500.0);
        }
        assert!(!h.representable());
    }

    #[test]
    fn empty_histogram() {
        let h = IdleHistogram::new(10);
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(!h.representable());
    }

    fn regular_gap_app(gap_min: u64, n: usize) -> AppRecord {
        let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
        app.config.concurrency = 1;
        app.mem_used_mb = 512;
        for k in 0..n as u64 {
            app.invocations.push(Invocation {
                start_ms: 30_000 + k * gap_min * 60_000,
                duration_ms: 500,
                delay_ms: 0,
            });
        }
        app
    }

    #[test]
    fn learns_regular_gaps_and_saves_memory_vs_keepalive() {
        // Invocations every 20 minutes: a 10-min keep-alive misses every
        // warm window AND wastes 10 minutes per cycle; the histogram
        // policy shuts down early and pre-warms in time.
        let app = regular_gap_app(20, 60);
        let span = 60 * 20 * 60_000u64;
        let cfg = SimConfig {
            respect_min_scale: false,
            ..SimConfig::default()
        };
        let hist = simulate_app(
            &app,
            &mut HybridHistogramPolicy::new(),
            span,
            &cfg,
        );
        let ka = simulate_app(
            &app,
            &mut KeepAlivePolicy::ten_minutes(),
            span,
            &cfg,
        );
        assert!(
            hist.costs.wasted_gb_seconds < ka.costs.wasted_gb_seconds,
            "histogram {} vs keep-alive {}",
            hist.costs.wasted_gb_seconds,
            ka.costs.wasted_gb_seconds
        );
        // After warm-up, most invocations hit the pre-warmed pod.
        assert!(
            hist.costs.cold_starts < ka.costs.cold_starts,
            "histogram {} vs keep-alive {} cold starts",
            hist.costs.cold_starts,
            ka.costs.cold_starts
        );
    }
}

//! Baseline lifetime-management systems the paper compares FeMux against.
//!
//! - [`faascache`]: greedy-dual caching keep-alive with a fixed cache
//!   size (Fuerst & Sharma, ASPLOS '21) — its own fleet simulator, since
//!   the shared cache couples applications.
//! - [`icebreaker`]: single-FFT forecast-driven scaling (Roy et al.,
//!   ASPLOS '22), homogeneous-pool variant.
//! - [`aquatope`]: per-application LSTM scaling (Zhou et al.,
//!   ASPLOS '23), built on the from-scratch LSTM in `femux-forecast`.
//! - [`histogram`]: the hybrid idle-time-histogram keep-alive policy
//!   (Shahrad et al., ATC '20).
//!
//! Fixed keep-alive policies (1/5/10 minutes) and Knative's default
//! reactive autoscaler live in `femux-sim::policy`, since the simulator
//! itself uses them as references.

pub mod aquatope;
pub mod faascache;
pub mod histogram;
pub mod icebreaker;

pub use aquatope::AquatopePolicy;
pub use faascache::{FaasCacheConfig, FaasCacheResult};
pub use histogram::HybridHistogramPolicy;
pub use icebreaker::IceBreakerPolicy;

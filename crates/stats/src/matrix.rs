//! Dense linear algebra for small systems.
//!
//! The forecasters (AR, SETAR, Holt initialization) and statistical tests
//! (ADF regressions) only ever solve systems with tens of unknowns, so a
//! simple row-major dense matrix with LU and Cholesky factorizations is all
//! the workspace needs. Everything is allocation-explicit and panics on
//! dimension mismatches, which are programming errors rather than data
//! errors; genuinely data-dependent failures (singular systems) return
//! `None`.

/// A row-major dense matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns a view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Computes the matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Computes the matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(v)
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect()
    }

    /// Computes the Gram matrix `self^T * self` in one pass.
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    out[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Solves `self * x = b` via LU decomposition with partial pivoting.
    ///
    /// Returns `None` if the matrix is singular (to working precision).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in col + 1..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            let d = a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] / d;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in col + 1..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Some(x)
    }

    /// Computes the Cholesky factor `L` (lower triangular, `self = L L^T`).
    ///
    /// Returns `None` if the matrix is not positive definite.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Some(l)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Ordinary least squares: finds `beta` minimizing `||X beta - y||^2`.
///
/// Solves the normal equations with a small ridge term added on (numerical)
/// rank deficiency, which arises routinely for constant traffic blocks.
/// Returns `None` only if the system stays unsolvable even with the ridge.
///
/// # Panics
///
/// Panics if `x.rows() != y.len()`.
pub fn ols(x: &Matrix, y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(x.rows(), y.len(), "design matrix / target size mismatch");
    let xt = x.transpose();
    let gram = x.gram();
    let rhs = xt.matvec(y);
    if let Some(beta) = gram.solve(&rhs) {
        return Some(beta);
    }
    // Ridge fallback for singular designs (e.g. constant regressors).
    let mut ridged = gram;
    for i in 0..ridged.rows() {
        ridged[(i, i)] += 1e-6;
    }
    ridged.solve(&rhs)
}

/// Result of an OLS fit with residual diagnostics, as needed by the ADF
/// test's t-statistic.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Estimated coefficients.
    pub beta: Vec<f64>,
    /// Standard error of each coefficient.
    pub std_errors: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Degrees of freedom (`n - p`).
    pub dof: usize,
}

/// Performs OLS and computes coefficient standard errors.
///
/// Returns `None` if the design is singular or there are no spare degrees
/// of freedom.
pub fn ols_with_errors(x: &Matrix, y: &[f64]) -> Option<OlsFit> {
    let n = x.rows();
    let p = x.cols();
    if n <= p {
        return None;
    }
    let beta = ols(x, y)?;
    let fitted = x.matvec(&beta);
    let rss: f64 = y
        .iter()
        .zip(&fitted)
        .map(|(yi, fi)| (yi - fi) * (yi - fi))
        .sum();
    let dof = n - p;
    let sigma2 = rss / dof as f64;
    // Standard errors are sqrt of diagonal of sigma^2 (X^T X)^{-1}; obtain
    // each diagonal element by solving against unit vectors.
    let gram = x.gram();
    let mut std_errors = Vec::with_capacity(p);
    for j in 0..p {
        let mut e = vec![0.0; p];
        e[j] = 1.0;
        let col = gram.solve(&e).or_else(|| {
            let mut ridged = gram.clone();
            for i in 0..p {
                ridged[(i, i)] += 1e-6;
            }
            ridged.solve(&e)
        })?;
        let var = sigma2 * col[j];
        std_errors.push(if var > 0.0 { var.sqrt() } else { 0.0 });
    }
    Some(OlsFit {
        beta,
        std_errors,
        rss,
        dof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let m = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn known_system() {
        let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let m = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = m.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
        let at = a.transpose();
        assert_eq!(at, Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 0.5],
            &[3.0, -1.0, 2.0],
            &[0.0, 4.0, 1.0],
            &[2.0, 2.0, 2.0],
        ]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_of_spd() {
        let m = Matrix::from_rows(&[
            &[4.0, 2.0, 0.0],
            &[2.0, 5.0, 1.0],
            &[0.0, 1.0, 3.0],
        ]);
        let l = m.cholesky().unwrap();
        let back = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - m[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(m.cholesky().is_none());
    }

    #[test]
    fn ols_recovers_exact_line() {
        // y = 3 + 2x.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut design = Matrix::zeros(20, 2);
        let mut y = Vec::new();
        for (i, &x) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = x;
            y.push(3.0 + 2.0 * x);
        }
        let beta = ols(&design, &y).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-9);
        assert!((beta[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ols_ridge_fallback_on_constant_column() {
        // Two identical columns: singular normal equations.
        let mut design = Matrix::zeros(10, 2);
        let mut y = Vec::new();
        for i in 0..10 {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = 1.0;
            y.push(4.0);
        }
        let beta = ols(&design, &y).unwrap();
        // The ridge splits the weight; predictions must still be right.
        assert!((beta[0] + beta[1] - 4.0).abs() < 1e-3);
    }

    #[test]
    fn ols_with_errors_known_t_stat() {
        // A noiseless fit has (near) zero standard errors.
        let mut design = Matrix::zeros(30, 2);
        let mut y = Vec::new();
        for i in 0..30 {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = i as f64;
            y.push(1.0 - 0.5 * i as f64);
        }
        let fit = ols_with_errors(&design, &y).unwrap();
        assert!((fit.beta[1] + 0.5).abs() < 1e-9);
        assert!(fit.std_errors[1] < 1e-6);
        assert!(fit.rss < 1e-12);
        assert_eq!(fit.dof, 28);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}

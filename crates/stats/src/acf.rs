//! Autocorrelation utilities and Levinson-Durbin recursion.
//!
//! The AR forecaster fits its coefficients through the Yule-Walker
//! equations, which the Levinson-Durbin recursion solves in O(p^2). The
//! Ljung-Box statistic is used by tests as an independence check on
//! synthetic Poisson traffic.

use crate::desc::mean;

/// Computes the sample autocovariance at lag `k` (biased, divided by `n`).
///
/// Returns `0.0` when the series is shorter than `k + 1`.
pub fn autocovariance(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if n == 0 || k >= n {
        return 0.0;
    }
    let m = mean(xs);
    let mut acc = 0.0;
    for t in k..n {
        acc += (xs[t] - m) * (xs[t - k] - m);
    }
    acc / n as f64
}

/// Computes sample autocorrelations for lags `0..=max_lag`.
///
/// A constant series has undefined correlations; we return 1 at lag 0 and 0
/// elsewhere, which is the graceful choice for constant traffic blocks.
pub fn autocorrelations(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let c0 = autocovariance(xs, 0);
    (0..=max_lag)
        .map(|k| {
            if k == 0 {
                1.0
            } else if c0 <= 0.0 {
                0.0
            } else {
                autocovariance(xs, k) / c0
            }
        })
        .collect()
}

/// Solves the Yule-Walker equations via Levinson-Durbin.
///
/// Returns `(phi, sigma2)` where `phi` are AR(`order`) coefficients (the
/// prediction is `sum_i phi[i] * x[t-1-i]`) and `sigma2` is the innovation
/// variance. Returns `None` for degenerate series (constant or shorter than
/// `order + 1`).
pub fn levinson_durbin(xs: &[f64], order: usize) -> Option<(Vec<f64>, f64)> {
    if xs.len() <= order || order == 0 {
        return None;
    }
    let r: Vec<f64> = (0..=order).map(|k| autocovariance(xs, k)).collect();
    if r[0] <= 1e-12 {
        return None;
    }
    let mut phi = vec![0.0; order];
    let mut prev = vec![0.0; order];
    let mut e = r[0];
    for k in 0..order {
        let mut acc = r[k + 1];
        for j in 0..k {
            acc -= prev[j] * r[k - j];
        }
        let reflection = acc / e;
        phi[k] = reflection;
        for j in 0..k {
            phi[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        e *= 1.0 - reflection * reflection;
        if e <= 0.0 {
            // Perfectly predictable series; the coefficients so far are
            // already exact.
            e = 0.0;
            prev[..=k].copy_from_slice(&phi[..=k]);
            break;
        }
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    Some((phi, e))
}

/// Computes partial autocorrelations for lags `1..=max_lag` via the
/// Levinson-Durbin recursion (the PACF is the sequence of final
/// reflection coefficients).
///
/// Returns an empty vector for degenerate (constant or too-short)
/// series.
pub fn partial_autocorrelations(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(max_lag);
    for k in 1..=max_lag {
        match levinson_durbin(xs, k) {
            Some((phi, _)) => out.push(phi[k - 1]),
            None => return out,
        }
    }
    out
}

/// Computes the Ljung-Box Q statistic over `lags` autocorrelation lags.
///
/// Under the null hypothesis of white noise, Q is approximately
/// chi-squared with `lags` degrees of freedom; values far above `lags`
/// indicate serial correlation.
pub fn ljung_box(xs: &[f64], lags: usize) -> f64 {
    let n = xs.len();
    if n <= lags + 1 {
        return 0.0;
    }
    let rho = autocorrelations(xs, lags);
    let nf = n as f64;
    nf * (nf + 2.0)
        * (1..=lags)
            .map(|k| rho[k] * rho[k] / (nf - k as f64))
            .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn lag_zero_is_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let var = crate::desc::variance(&xs);
        assert!((autocovariance(&xs, 0) - var).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_alternating_series() {
        let xs: Vec<f64> =
            (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let rho = autocorrelations(&xs, 2);
        assert!((rho[1] + 1.0).abs() < 0.05, "rho1 {}", rho[1]);
        assert!((rho[2] - 1.0).abs() < 0.05, "rho2 {}", rho[2]);
    }

    #[test]
    fn constant_series_graceful() {
        let xs = vec![4.0; 50];
        let rho = autocorrelations(&xs, 3);
        assert_eq!(rho, vec![1.0, 0.0, 0.0, 0.0]);
        assert!(levinson_durbin(&xs, 3).is_none());
    }

    #[test]
    fn levinson_recovers_ar1() {
        // Simulate x_t = 0.7 x_{t-1} + eps.
        let mut rng = Rng::seed_from_u64(1);
        let mut xs = vec![0.0];
        for _ in 0..20_000 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.7 * prev + rng.normal());
        }
        let (phi, sigma2) = levinson_durbin(&xs, 1).unwrap();
        assert!((phi[0] - 0.7).abs() < 0.02, "phi {}", phi[0]);
        assert!((sigma2 - 1.0).abs() < 0.05, "sigma2 {sigma2}");
    }

    #[test]
    fn levinson_recovers_ar2() {
        let mut rng = Rng::seed_from_u64(2);
        let mut xs = vec![0.0, 0.0];
        for _ in 0..40_000 {
            let n = xs.len();
            let next = 0.5 * xs[n - 1] - 0.3 * xs[n - 2] + rng.normal();
            xs.push(next);
        }
        let (phi, _) = levinson_durbin(&xs, 2).unwrap();
        assert!((phi[0] - 0.5).abs() < 0.03, "phi0 {}", phi[0]);
        assert!((phi[1] + 0.3).abs() < 0.03, "phi1 {}", phi[1]);
    }

    #[test]
    fn levinson_rejects_short_series() {
        assert!(levinson_durbin(&[1.0, 2.0], 5).is_none());
        assert!(levinson_durbin(&[1.0, 2.0, 3.0], 0).is_none());
    }

    #[test]
    fn pacf_cuts_off_at_ar_order() {
        // An AR(1) process has PACF ~phi at lag 1 and ~0 afterwards.
        let mut rng = Rng::seed_from_u64(9);
        let mut xs = vec![0.0];
        for _ in 0..30_000 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.6 * prev + rng.normal());
        }
        let pacf = partial_autocorrelations(&xs, 4);
        assert_eq!(pacf.len(), 4);
        assert!((pacf[0] - 0.6).abs() < 0.03, "lag1 {}", pacf[0]);
        for (k, &p) in pacf.iter().enumerate().skip(1) {
            assert!(p.abs() < 0.05, "lag{} {}", k + 1, p);
        }
    }

    #[test]
    fn pacf_degenerate_series_truncates() {
        // Constant series: no lag is computable.
        assert!(partial_autocorrelations(&[1.0; 40], 3).is_empty());
        // Two points support only lag 1; the rest are dropped.
        let short = partial_autocorrelations(&[1.0, 2.0], 5);
        assert!(short.len() <= 1, "got {} lags", short.len());
    }

    #[test]
    fn ljung_box_separates_noise_from_signal() {
        let mut rng = Rng::seed_from_u64(3);
        let noise: Vec<f64> = (0..1_000).map(|_| rng.normal()).collect();
        let periodic: Vec<f64> =
            (0..1_000).map(|i| (i as f64 * 0.5).sin()).collect();
        let q_noise = ljung_box(&noise, 10);
        let q_periodic = ljung_box(&periodic, 10);
        // chi2(10) 95th percentile is ~18.3.
        assert!(q_noise < 25.0, "q_noise {q_noise}");
        assert!(q_periodic > 100.0, "q_periodic {q_periodic}");
    }
}

//! Broock-Dechert-Scheinkman (BDS) independence test.
//!
//! FeMux uses the BDS statistic as its *linearity* block feature (§4.3.2).
//! Applied to the residuals of a fitted linear (AR) model, a large |BDS|
//! value indicates remaining nonlinear structure, steering block
//! classification toward SETAR; a small value means a linear model already
//! captures the dynamics. The paper notes BDS requires at least ~400
//! observations, which motivated the 504-minute block size.
//!
//! The statistic for embedding dimension `m` and radius `eps` is
//!
//! `W_m = sqrt(N_m) * (C_m - C_1^m) / sigma_m`
//!
//! where `C_m` is the correlation integral (fraction of pairs of
//! `m`-histories within `eps` in the sup norm) and `sigma_m` follows the
//! asymptotic variance formula of Broock et al. (1996).

use crate::acf::levinson_durbin;
use crate::desc::std_dev;

/// Result of a BDS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BdsResult {
    /// The standardized test statistic (asymptotically N(0,1) under iid).
    pub statistic: f64,
    /// Embedding dimension used.
    pub dimension: usize,
    /// Radius used (in data units).
    pub epsilon: f64,
}

impl BdsResult {
    /// Returns `true` if the iid null is rejected at roughly the 5 % level,
    /// i.e. the series exhibits (possibly nonlinear) dependence.
    pub fn is_dependent(&self) -> bool {
        self.statistic.abs() > 1.96
    }
}

/// Computes the correlation integral `C_m(eps)`: the fraction of pairs of
/// m-point histories whose sup-norm distance is below `eps`.
fn correlation_integral(xs: &[f64], m: usize, eps: f64) -> f64 {
    let n_m = xs.len() + 1 - m;
    if n_m < 2 {
        return 0.0;
    }
    let mut close = 0u64;
    for i in 0..n_m {
        'pairs: for j in i + 1..n_m {
            for k in 0..m {
                if (xs[i + k] - xs[j + k]).abs() >= eps {
                    continue 'pairs;
                }
            }
            close += 1;
        }
    }
    2.0 * close as f64 / (n_m as f64 * (n_m - 1) as f64)
}

/// Computes the `K` estimator used by the BDS variance formula:
/// the probability that of three random points, the middle one is within
/// `eps` of both others.
fn k_estimator(xs: &[f64], eps: f64) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 0.0;
    }
    // For each point, count neighbours within eps (excluding itself), then
    // K = sum_s c_s * (c_s - 1) / (n (n-1) (n-2)).
    let mut total = 0.0;
    for s in 0..n {
        let mut c = 0u64;
        for t in 0..n {
            if t != s && (xs[t] - xs[s]).abs() < eps {
                c += 1;
            }
        }
        total += (c * c.saturating_sub(1)) as f64;
    }
    total / (n as f64 * (n - 1) as f64 * (n - 2) as f64)
}

/// Runs the BDS test on `xs` with embedding dimension `m` and radius
/// `eps_factor * std_dev(xs)`.
///
/// Returns `None` for series that are too short (fewer than ~4·m + 20
/// points), constant, or whose variance estimate degenerates.
pub fn bds_test(xs: &[f64], m: usize, eps_factor: f64) -> Option<BdsResult> {
    let n = xs.len();
    if m < 2 || n < 4 * m + 20 {
        return None;
    }
    let sd = std_dev(xs);
    if sd <= 1e-12 {
        return None;
    }
    let eps = eps_factor * sd;
    let c1 = correlation_integral(xs, 1, eps);
    let cm = correlation_integral(xs, m, eps);
    let k = k_estimator(xs, eps);
    if c1 <= 0.0 || c1 >= 1.0 || k <= 0.0 {
        return None;
    }
    // Asymptotic variance (Broock et al. 1996).
    let mf = m as f64;
    let mut sum_term = 0.0;
    for j in 1..m {
        sum_term += k.powi((m - j) as i32) * c1.powi(2 * j as i32);
    }
    let var = 4.0
        * (k.powi(m as i32) + 2.0 * sum_term
            + (mf - 1.0) * (mf - 1.0) * c1.powi(2 * m as i32)
            - mf * mf * k * c1.powi(2 * m as i32 - 2));
    if var <= 0.0 {
        return None;
    }
    let n_m = (n + 1 - m) as f64;
    let statistic = n_m.sqrt() * (cm - c1.powi(m as i32)) / var.sqrt();
    Some(BdsResult {
        statistic,
        dimension: m,
        epsilon: eps,
    })
}

/// Runs the BDS test on the residuals of an AR(`order`) fit.
///
/// This is the standard recipe for a *nonlinearity* test: the AR fit
/// removes linear structure, so remaining dependence detected by BDS is
/// evidence of nonlinearity. Returns `None` if the AR fit or the BDS test
/// is infeasible.
pub fn bds_on_ar_residuals(
    xs: &[f64],
    order: usize,
    m: usize,
    eps_factor: f64,
) -> Option<BdsResult> {
    femux_obs::counter_add("stats.bds.tests", 1);
    let (phi, _) = levinson_durbin(xs, order)?;
    let mean = crate::desc::mean(xs);
    let centered: Vec<f64> = xs.iter().map(|x| x - mean).collect();
    let residuals: Vec<f64> = (order..centered.len())
        .map(|t| {
            let pred: f64 = (0..order)
                .map(|i| phi[i] * centered[t - 1 - i])
                .sum();
            centered[t] - pred
        })
        .collect();
    bds_test(&residuals, m, eps_factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn iid_noise_not_dependent() {
        let mut rng = Rng::seed_from_u64(1);
        let xs: Vec<f64> = (0..500).map(|_| rng.normal()).collect();
        let res = bds_test(&xs, 2, 1.0).unwrap();
        assert!(
            res.statistic.abs() < 3.0,
            "statistic {} too large for iid noise",
            res.statistic
        );
    }

    #[test]
    fn deterministic_chaos_is_dependent() {
        // The logistic map at r=4 is the canonical BDS positive control.
        let mut x = 0.3;
        let xs: Vec<f64> = (0..500)
            .map(|_| {
                x = 4.0 * x * (1.0 - x);
                x
            })
            .collect();
        let res = bds_test(&xs, 2, 1.0).unwrap();
        assert!(res.is_dependent(), "statistic {}", res.statistic);
        assert!(res.statistic.abs() > 5.0);
    }

    #[test]
    fn ar_series_dependent_raw_but_not_in_residuals() {
        let mut rng = Rng::seed_from_u64(2);
        let mut xs = vec![0.0];
        for _ in 0..600 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.8 * prev + rng.normal());
        }
        let raw = bds_test(&xs, 2, 1.0).unwrap();
        assert!(raw.is_dependent(), "raw statistic {}", raw.statistic);
        let resid = bds_on_ar_residuals(&xs, 5, 2, 1.0).unwrap();
        assert!(
            resid.statistic.abs() < raw.statistic.abs(),
            "residual statistic {} not smaller than raw {}",
            resid.statistic,
            raw.statistic
        );
    }

    #[test]
    fn threshold_dynamics_stay_dependent_in_residuals() {
        // A SETAR-style process: different AR regimes by sign. Linear AR
        // residuals keep nonlinear structure.
        let mut rng = Rng::seed_from_u64(3);
        let mut xs = vec![0.0];
        for _ in 0..800 {
            let prev = *xs.last().expect("non-empty");
            let coef = if prev > 0.0 { 0.9 } else { -0.6 };
            xs.push(coef * prev + 0.3 * rng.normal());
        }
        let resid = bds_on_ar_residuals(&xs, 5, 2, 1.0).unwrap();
        assert!(
            resid.is_dependent(),
            "residual statistic {}",
            resid.statistic
        );
    }

    #[test]
    fn short_or_constant_series_return_none() {
        assert!(bds_test(&[1.0; 10], 2, 1.0).is_none());
        let constant = vec![5.0; 200];
        assert!(bds_test(&constant, 2, 1.0).is_none());
    }

    #[test]
    fn correlation_integral_bounds() {
        let mut rng = Rng::seed_from_u64(4);
        let xs: Vec<f64> = (0..200).map(|_| rng.normal()).collect();
        for m in [1usize, 2, 3] {
            let c = correlation_integral(&xs, m, 1.0);
            assert!((0.0..=1.0).contains(&c), "C_{m} = {c}");
        }
        // Larger eps means more pairs are close.
        let c_small = correlation_integral(&xs, 2, 0.5);
        let c_large = correlation_integral(&xs, 2, 2.0);
        assert!(c_large > c_small);
    }

    #[test]
    fn k_estimator_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        let xs: Vec<f64> = (0..200).map(|_| rng.normal()).collect();
        let k = k_estimator(&xs, 1.0);
        assert!((0.0..=1.0).contains(&k), "K = {k}");
        // K >= C^2 by Cauchy-Schwarz (approximately, for estimators).
        let c = correlation_integral(&xs, 1, 1.0);
        assert!(k >= c * c - 0.05, "K {k} vs C^2 {}", c * c);
    }
}

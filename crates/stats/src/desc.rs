//! Descriptive statistics.
//!
//! The characterization section of the paper is built from quantiles, CDFs,
//! coefficients of variation, and histograms over millions of values; these
//! helpers keep those computations in one tested place.

/// Returns the arithmetic mean, or `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Returns the population variance, or `0.0` for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Returns the population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Returns the coefficient of variation `sigma / mu`.
///
/// The paper flags workloads with CV > 1 as highly variable (96 % of IBM
/// workloads, 78 % of Azure '21 ones). Returns `f64::INFINITY` when the
/// mean is zero but the deviation is not, and `0.0` when both are zero.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let s = std_dev(xs);
    if m != 0.0 {
        s / m.abs()
    } else if s == 0.0 {
        0.0
    } else {
        f64::INFINITY
    }
}

/// Returns the `q`-quantile (`0 <= q <= 1`) using linear interpolation
/// between order statistics (type-7, the numpy default).
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    Some(quantile_sorted(&sorted, q))
}

/// Returns the `q`-quantile of an already-sorted slice.
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Returns the median.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// A five-number-plus summary of a sample, used throughout the
/// characterization figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary, returning `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted
            .sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        Some(Summary {
            count: sorted.len(),
            mean: mean(&sorted),
            min: sorted[0],
            p50: quantile_sorted(&sorted, 0.5),
            p90: quantile_sorted(&sorted, 0.9),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// An empirical CDF over a sample.
///
/// # Examples
///
/// ```
/// use femux_stats::desc::Ecdf;
///
/// let ecdf = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(ecdf.fraction_at_or_below(2.0), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (NaNs are rejected).
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn new(xs: &[f64]) -> Self {
        let mut sorted = xs.to_vec();
        sorted
            .sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        Ecdf { sorted }
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Returns `P(X <= x)`.
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Returns the `q`-quantile of the sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// Evaluates the CDF at each of `points`, yielding `(x, F(x))` pairs —
    /// the exact series needed to print a paper-style CDF figure.
    pub fn curve(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records a value.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Returns the total number of recorded values.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Returns the bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Returns the underflow count.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Returns the overflow count.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Returns `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
            .collect()
    }
}

/// Computes the fraction of values in `xs` that satisfy `pred`.
pub fn fraction_where<F: Fn(f64) -> bool>(xs: &[f64], pred: F) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| pred(x)).count() as f64 / xs.len() as f64
}

/// Generates `n` logarithmically spaced points between `lo` and `hi`
/// (inclusive), as used for the paper's log-x CDF plots.
///
/// # Panics
///
/// Panics if `lo <= 0`, `hi <= lo`, or `n < 2`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "bad log_space arguments");
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert!(quantile(&[], 0.5).is_none());
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cv_flags_high_variability() {
        // Constant series: CV = 0.
        assert_eq!(coefficient_of_variation(&[3.0, 3.0, 3.0]), 0.0);
        // Bursty series: CV > 1.
        let bursty = [0.0, 0.0, 0.0, 0.0, 10.0];
        assert!(coefficient_of_variation(&bursty) > 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn summary_fields() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-12);
        assert!((s.p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn ecdf_basic() {
        let ecdf = Ecdf::new(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(ecdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(ecdf.fraction_at_or_below(3.0), 0.6);
        assert_eq!(ecdf.fraction_at_or_below(100.0), 1.0);
        assert_eq!(ecdf.quantile(0.0), 1.0);
        assert_eq!(ecdf.quantile(1.0), 5.0);
    }

    #[test]
    fn ecdf_curve_is_monotone() {
        let ecdf = Ecdf::new(&[0.1, 0.5, 0.9, 2.0, 10.0]);
        let pts = log_space(0.01, 100.0, 20);
        let curve = ecdf.curve(&pts);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 2); // 0.0 and 0.5
        assert_eq!(h.counts()[5], 1); // 5.0
        assert_eq!(h.counts()[9], 1); // 9.99
    }

    #[test]
    fn fraction_where_counts() {
        let xs = [0.1, 0.9, 1.5, 2.0];
        assert_eq!(fraction_where(&xs, |x| x < 1.0), 0.5);
    }

    #[test]
    fn log_space_endpoints() {
        let pts = log_space(0.001, 1000.0, 7);
        assert!((pts[0] - 0.001).abs() < 1e-12);
        assert!((pts[6] - 1000.0).abs() < 1e-9);
        assert!((pts[3] - 1.0).abs() < 1e-9);
    }
}

//! Augmented Dickey-Fuller stationarity test.
//!
//! FeMux uses the ADF test as its *stationarity* block feature (§4.3.2 of
//! the paper): stationary blocks suit the AR forecaster, while
//! non-stationary blocks are better served by SETAR or trend-following
//! smoothers. We implement the constant-only (no deterministic trend)
//! variant:
//!
//! `dy_t = alpha + gamma * y_{t-1} + sum_i beta_i * dy_{t-i} + eps_t`
//!
//! The test statistic is the t-ratio of `gamma`; large negative values
//! reject the unit-root null, i.e. indicate stationarity.

use crate::matrix::{ols_with_errors, Matrix};

/// Result of an Augmented Dickey-Fuller test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdfResult {
    /// The t-ratio of the lagged-level coefficient (the DF statistic).
    pub statistic: f64,
    /// Number of augmenting lag differences used.
    pub lags: usize,
    /// Effective number of observations in the regression.
    pub n_obs: usize,
}

impl AdfResult {
    /// Returns `true` if the unit-root null is rejected at the given
    /// significance level, i.e. the series is deemed stationary.
    pub fn is_stationary(&self, level: Significance) -> bool {
        self.statistic < level.critical_value()
    }
}

/// Significance levels with MacKinnon asymptotic critical values for the
/// constant-only ADF regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Significance {
    /// 1 % level (critical value -3.43).
    One,
    /// 5 % level (critical value -2.86).
    Five,
    /// 10 % level (critical value -2.57).
    Ten,
}

impl Significance {
    /// Returns the asymptotic critical value for this level.
    pub fn critical_value(self) -> f64 {
        match self {
            Significance::One => -3.43,
            Significance::Five => -2.86,
            Significance::Ten => -2.57,
        }
    }
}

/// Runs the ADF test with a fixed number of augmenting lags.
///
/// Returns `None` when the series is too short or degenerate (constant),
/// in which case callers should treat the block as trivially stationary:
/// constant traffic is perfectly predictable.
pub fn adf_test(xs: &[f64], lags: usize) -> Option<AdfResult> {
    let n = xs.len();
    // Need y_{t-1}, `lags` lagged differences, and spare dof.
    if n < lags + 10 {
        return None;
    }
    let diffs: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
    // Regression sample: t runs over diffs indices [lags, diffs.len()).
    let rows = diffs.len() - lags;
    let cols = 2 + lags; // constant, y_{t-1}, lagged diffs
    if rows <= cols {
        return None;
    }
    let mut design = Matrix::zeros(rows, cols);
    let mut target = Vec::with_capacity(rows);
    for (r, t) in (lags..diffs.len()).enumerate() {
        design[(r, 0)] = 1.0;
        design[(r, 1)] = xs[t]; // y_{t-1} relative to dy_t = y_{t+1}-y_t
        for i in 0..lags {
            design[(r, 2 + i)] = diffs[t - 1 - i];
        }
        target.push(diffs[t]);
    }
    let fit = ols_with_errors(&design, &target)?;
    let se = fit.std_errors[1];
    if se <= 1e-12 {
        // Perfect fit: differences fully explained; treat as strongly
        // stationary by convention with a large negative statistic.
        return Some(AdfResult {
            statistic: -100.0,
            lags,
            n_obs: rows,
        });
    }
    Some(AdfResult {
        statistic: fit.beta[1] / se,
        lags,
        n_obs: rows,
    })
}

/// Runs the ADF test with automatic lag selection via the Schwert rule
/// `p_max = floor(12 * (n / 100)^{1/4})`, capped for short blocks.
pub fn adf_test_auto(xs: &[f64]) -> Option<AdfResult> {
    femux_obs::counter_add("stats.adf.tests", 1);
    let n = xs.len();
    if n < 16 {
        return None;
    }
    adf_test(xs, schwert_lags(n))
}

/// The Schwert lag rule used by [`adf_test_auto`] for a series of
/// length `n`: `floor(12 * (n / 100)^{1/4})`, capped at `n / 8` and
/// floored at 1.
pub fn schwert_lags(n: usize) -> usize {
    let schwert = (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    schwert.min(n / 8).max(1)
}

/// Streaming ADF accumulator: ingests one sample at a time and, once the
/// window is complete, reproduces [`adf_test`] **bit-for-bit**.
///
/// The regression row for difference index `t` (`[1, y_t, dy_{t-1}, …,
/// dy_{t-lags}]`, target `dy_t`) becomes available exactly when sample
/// `t + 1` arrives, so rows are accumulated in arrival order — the same
/// order the batch test builds its design matrix. The Gram matrix and
/// `X^T y` accumulations replicate [`Matrix::gram`]'s loop (including
/// its `== 0.0` row-entry skip and upper-triangle-then-mirror layout)
/// and `transpose().matvec(y)`'s in-order fold, so every floating-point
/// operation happens on the same operands in the same order as the
/// batch path. [`AdfAccumulator::finalize`] then performs the identical
/// solve / ridge / residual / standard-error sequence.
///
/// This is what lets the online serving harness maintain the
/// stationarity feature incrementally per sample instead of
/// re-extracting O(block × lags²) work at every block boundary, while
/// the parity gate holds exactly.
#[derive(Debug, Clone)]
pub struct AdfAccumulator {
    lags: usize,
    cols: usize,
    n_seen: usize,
    prev: f64,
    diffs: Vec<f64>,
    /// `cols × cols` Gram accumulation; only the upper triangle is
    /// written during streaming, mirroring [`Matrix::gram`].
    gram: Vec<f64>,
    rhs: Vec<f64>,
    row: Vec<f64>,
}

impl AdfAccumulator {
    /// Creates an accumulator for a fixed augmenting-lag count.
    pub fn new(lags: usize) -> Self {
        let cols = 2 + lags;
        AdfAccumulator {
            lags,
            cols,
            n_seen: 0,
            prev: 0.0,
            diffs: Vec::new(),
            gram: vec![0.0; cols * cols],
            rhs: vec![0.0; cols],
            row: vec![0.0; cols],
        }
    }

    /// Creates an accumulator matching [`adf_test_auto`]'s lag choice
    /// for a window of length `n`; `None` when the window is too short
    /// for the automatic test (`n < 16`).
    pub fn auto(n: usize) -> Option<Self> {
        if n < 16 {
            return None;
        }
        Some(AdfAccumulator::new(schwert_lags(n)))
    }

    /// The augmenting-lag count this accumulator was built for.
    pub fn lags(&self) -> usize {
        self.lags
    }

    /// Number of samples ingested since the last reset.
    pub fn len(&self) -> usize {
        self.n_seen
    }

    /// True when no samples have been ingested since the last reset.
    pub fn is_empty(&self) -> bool {
        self.n_seen == 0
    }

    /// Clears all accumulated state for the next window.
    pub fn reset(&mut self) {
        self.n_seen = 0;
        self.prev = 0.0;
        self.diffs.clear();
        self.gram.iter_mut().for_each(|v| *v = 0.0);
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Ingests the next sample, folding the regression row it completes
    /// (if any) into the Gram and `X^T y` accumulators.
    pub fn push(&mut self, x: f64) {
        if self.n_seen >= 1 {
            // Same subtraction as the batch `windows(2)` pass.
            let t = self.diffs.len();
            let d = x - self.prev;
            self.diffs.push(d);
            if t >= self.lags {
                self.row[0] = 1.0;
                // xs[t] is the previous sample: diff t arrived with
                // sample t + 1.
                self.row[1] = self.prev;
                for i in 0..self.lags {
                    self.row[2 + i] = self.diffs[t - 1 - i];
                }
                // Gram: Matrix::gram()'s per-row loop, verbatim.
                for i in 0..self.cols {
                    let a = self.row[i];
                    if a == 0.0 {
                        continue;
                    }
                    for j in i..self.cols {
                        self.gram[i * self.cols + j] += a * self.row[j];
                    }
                }
                // X^T y: transpose().matvec(y) folds row-by-row from
                // zero, with no zero skip.
                for i in 0..self.cols {
                    self.rhs[i] += self.row[i] * d;
                }
            }
        }
        self.prev = x;
        self.n_seen += 1;
    }

    /// Completes the test over the accumulated window. `xs` must be the
    /// exact sample sequence pushed since the last reset (the serving
    /// harness keeps it in the block ring anyway); it is only read for
    /// the single O(rows × cols) residual pass.
    ///
    /// Returns exactly what `adf_test(xs, self.lags())` returns, to the
    /// bit.
    pub fn finalize(&self, xs: &[f64]) -> Option<AdfResult> {
        debug_assert_eq!(
            xs.len(),
            self.n_seen,
            "finalize window must match the pushed samples"
        );
        let n = self.n_seen;
        if n < self.lags + 10 {
            return None;
        }
        let rows = self.diffs.len() - self.lags;
        let cols = self.cols;
        if rows <= cols {
            return None;
        }
        // Mirror the lower triangle exactly as Matrix::gram() does.
        let mut g = self.gram.clone();
        for i in 0..cols {
            for j in 0..i {
                g[i * cols + j] = g[j * cols + i];
            }
        }
        let gram = Matrix::from_vec(cols, cols, g);
        // ols(): plain solve, then the ridge fallback on singularity.
        let beta = match gram.solve(&self.rhs) {
            Some(b) => b,
            None => {
                let mut ridged = gram.clone();
                for i in 0..cols {
                    ridged[(i, i)] += 1e-6;
                }
                ridged.solve(&self.rhs)?
            }
        };
        // ols_with_errors(): one residual pass regenerating each design
        // row; the per-row dot product and the RSS fold replicate
        // matvec()'s zip/map/sum and the batch in-order accumulation.
        let mut row = vec![0.0; cols];
        let mut rss = 0.0f64;
        for r in 0..rows {
            let t = self.lags + r;
            row[0] = 1.0;
            row[1] = xs[t];
            for i in 0..self.lags {
                row[2 + i] = self.diffs[t - 1 - i];
            }
            let fitted: f64 =
                row.iter().zip(&beta).map(|(a, b)| a * b).sum();
            let yi = self.diffs[t];
            rss += (yi - fitted) * (yi - fitted);
        }
        let dof = rows - cols;
        let sigma2 = rss / dof as f64;
        // Standard errors: solve against every unit vector (any failure
        // fails the fit, as in the batch path), keeping coefficient 1.
        let mut se1 = 0.0;
        for j in 0..cols {
            let mut e = vec![0.0; cols];
            e[j] = 1.0;
            let col = match gram.solve(&e) {
                Some(c) => Some(c),
                None => {
                    let mut ridged = gram.clone();
                    for i in 0..cols {
                        ridged[(i, i)] += 1e-6;
                    }
                    ridged.solve(&e)
                }
            }?;
            let var = sigma2 * col[j];
            let se = if var > 0.0 { var.sqrt() } else { 0.0 };
            if j == 1 {
                se1 = se;
            }
        }
        if se1 <= 1e-12 {
            return Some(AdfResult {
                statistic: -100.0,
                lags: self.lags,
                n_obs: rows,
            });
        }
        Some(AdfResult {
            statistic: beta[1] / se1,
            lags: self.lags,
            n_obs: rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.normal()).collect()
    }

    fn random_walk(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut acc = 0.0;
        (0..n)
            .map(|_| {
                acc += rng.normal();
                acc
            })
            .collect()
    }

    #[test]
    fn white_noise_is_stationary() {
        let xs = white_noise(500, 1);
        let res = adf_test(&xs, 2).unwrap();
        assert!(
            res.is_stationary(Significance::One),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn random_walk_is_not_stationary() {
        let xs = random_walk(500, 2);
        let res = adf_test(&xs, 2).unwrap();
        assert!(
            !res.is_stationary(Significance::Ten),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn ar1_is_stationary() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs = vec![0.0];
        for _ in 0..800 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.6 * prev + rng.normal());
        }
        let res = adf_test_auto(&xs).unwrap();
        assert!(
            res.is_stationary(Significance::Five),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn near_unit_root_is_borderline() {
        // rho = 0.999 over a short window looks like a unit root.
        let mut rng = Rng::seed_from_u64(4);
        let mut xs = vec![0.0];
        for _ in 0..400 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.999 * prev + rng.normal());
        }
        let res = adf_test(&xs, 2).unwrap();
        assert!(
            !res.is_stationary(Significance::One),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn short_series_returns_none() {
        assert!(adf_test(&[1.0, 2.0, 3.0], 1).is_none());
        assert!(adf_test_auto(&white_noise(10, 5)).is_none());
    }

    #[test]
    fn constant_series_handled() {
        let xs = vec![2.0; 100];
        // All differences are zero; OLS hits the ridge path and the
        // perfect-fit branch yields a strongly stationary verdict.
        if let Some(res) = adf_test(&xs, 1) {
            assert!(res.is_stationary(Significance::One));
        }
    }

    #[test]
    fn critical_values_ordered() {
        assert!(
            Significance::One.critical_value()
                < Significance::Five.critical_value()
        );
        assert!(
            Significance::Five.critical_value()
                < Significance::Ten.critical_value()
        );
    }

    #[test]
    fn auto_lag_counts_observations() {
        let xs = white_noise(504, 6);
        let res = adf_test_auto(&xs).unwrap();
        assert!(res.lags >= 1);
        assert!(res.n_obs > 400);
    }

    /// Bit-for-bit equality between the streaming accumulator and the
    /// batch test — the serving harness's parity contract.
    fn assert_streaming_parity(xs: &[f64], lags: usize) {
        let mut acc = AdfAccumulator::new(lags);
        for &x in xs {
            acc.push(x);
        }
        let batch = adf_test(xs, lags);
        let inc = acc.finalize(xs);
        match (batch, inc) {
            (None, None) => {}
            (Some(b), Some(i)) => {
                assert_eq!(
                    b.statistic.to_bits(),
                    i.statistic.to_bits(),
                    "lags {lags} n {}: batch {} vs incremental {}",
                    xs.len(),
                    b.statistic,
                    i.statistic
                );
                assert_eq!(b.lags, i.lags);
                assert_eq!(b.n_obs, i.n_obs);
            }
            (b, i) => panic!(
                "presence mismatch at lags {lags}: batch {b:?} vs \
                 incremental {i:?}"
            ),
        }
    }

    #[test]
    fn accumulator_matches_batch_bit_for_bit() {
        let signals: Vec<Vec<f64>> = vec![
            white_noise(504, 7),
            white_noise(120, 8),
            random_walk(504, 9),
            random_walk(120, 10),
            (0..504)
                .map(|t| {
                    3.0 + 2.0
                        * (2.0 * std::f64::consts::PI * t as f64 / 24.0)
                            .sin()
                })
                .collect(),
            vec![2.0; 120],
            vec![0.0; 504],
            (0..120)
                .map(|t| if t % 17 == 0 { 1e6 } else { 0.1 })
                .collect(),
        ];
        for xs in &signals {
            for lags in [1, 2, schwert_lags(xs.len())] {
                assert_streaming_parity(xs, lags);
            }
        }
    }

    #[test]
    fn accumulator_auto_matches_schwert_rule() {
        for n in [16usize, 120, 504, 1000] {
            let acc = AdfAccumulator::auto(n).expect("long enough");
            assert_eq!(acc.lags(), schwert_lags(n));
        }
        assert!(AdfAccumulator::auto(15).is_none());
    }

    #[test]
    fn accumulator_reset_reuses_cleanly() {
        let a = white_noise(120, 11);
        let b = random_walk(120, 12);
        let mut acc = AdfAccumulator::new(schwert_lags(120));
        for &x in &a {
            acc.push(x);
        }
        let _ = acc.finalize(&a);
        acc.reset();
        assert!(acc.is_empty());
        for &x in &b {
            acc.push(x);
        }
        let batch = adf_test(&b, acc.lags()).expect("fits");
        let inc = acc.finalize(&b).expect("fits");
        assert_eq!(batch.statistic.to_bits(), inc.statistic.to_bits());
        assert_eq!(acc.len(), b.len());
    }

    #[test]
    fn accumulator_short_window_returns_none() {
        let mut acc = AdfAccumulator::new(3);
        let xs = vec![1.0, 2.0, 1.5];
        for &x in &xs {
            acc.push(x);
        }
        assert!(acc.finalize(&xs).is_none());
        assert!(adf_test(&xs, 3).is_none());
    }
}

//! Augmented Dickey-Fuller stationarity test.
//!
//! FeMux uses the ADF test as its *stationarity* block feature (§4.3.2 of
//! the paper): stationary blocks suit the AR forecaster, while
//! non-stationary blocks are better served by SETAR or trend-following
//! smoothers. We implement the constant-only (no deterministic trend)
//! variant:
//!
//! `dy_t = alpha + gamma * y_{t-1} + sum_i beta_i * dy_{t-i} + eps_t`
//!
//! The test statistic is the t-ratio of `gamma`; large negative values
//! reject the unit-root null, i.e. indicate stationarity.

use crate::matrix::{ols_with_errors, Matrix};

/// Result of an Augmented Dickey-Fuller test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdfResult {
    /// The t-ratio of the lagged-level coefficient (the DF statistic).
    pub statistic: f64,
    /// Number of augmenting lag differences used.
    pub lags: usize,
    /// Effective number of observations in the regression.
    pub n_obs: usize,
}

impl AdfResult {
    /// Returns `true` if the unit-root null is rejected at the given
    /// significance level, i.e. the series is deemed stationary.
    pub fn is_stationary(&self, level: Significance) -> bool {
        self.statistic < level.critical_value()
    }
}

/// Significance levels with MacKinnon asymptotic critical values for the
/// constant-only ADF regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Significance {
    /// 1 % level (critical value -3.43).
    One,
    /// 5 % level (critical value -2.86).
    Five,
    /// 10 % level (critical value -2.57).
    Ten,
}

impl Significance {
    /// Returns the asymptotic critical value for this level.
    pub fn critical_value(self) -> f64 {
        match self {
            Significance::One => -3.43,
            Significance::Five => -2.86,
            Significance::Ten => -2.57,
        }
    }
}

/// Runs the ADF test with a fixed number of augmenting lags.
///
/// Returns `None` when the series is too short or degenerate (constant),
/// in which case callers should treat the block as trivially stationary:
/// constant traffic is perfectly predictable.
pub fn adf_test(xs: &[f64], lags: usize) -> Option<AdfResult> {
    let n = xs.len();
    // Need y_{t-1}, `lags` lagged differences, and spare dof.
    if n < lags + 10 {
        return None;
    }
    let diffs: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
    // Regression sample: t runs over diffs indices [lags, diffs.len()).
    let rows = diffs.len() - lags;
    let cols = 2 + lags; // constant, y_{t-1}, lagged diffs
    if rows <= cols {
        return None;
    }
    let mut design = Matrix::zeros(rows, cols);
    let mut target = Vec::with_capacity(rows);
    for (r, t) in (lags..diffs.len()).enumerate() {
        design[(r, 0)] = 1.0;
        design[(r, 1)] = xs[t]; // y_{t-1} relative to dy_t = y_{t+1}-y_t
        for i in 0..lags {
            design[(r, 2 + i)] = diffs[t - 1 - i];
        }
        target.push(diffs[t]);
    }
    let fit = ols_with_errors(&design, &target)?;
    let se = fit.std_errors[1];
    if se <= 1e-12 {
        // Perfect fit: differences fully explained; treat as strongly
        // stationary by convention with a large negative statistic.
        return Some(AdfResult {
            statistic: -100.0,
            lags,
            n_obs: rows,
        });
    }
    Some(AdfResult {
        statistic: fit.beta[1] / se,
        lags,
        n_obs: rows,
    })
}

/// Runs the ADF test with automatic lag selection via the Schwert rule
/// `p_max = floor(12 * (n / 100)^{1/4})`, capped for short blocks.
pub fn adf_test_auto(xs: &[f64]) -> Option<AdfResult> {
    femux_obs::counter_add("stats.adf.tests", 1);
    let n = xs.len();
    if n < 16 {
        return None;
    }
    let schwert = (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    let lags = schwert.min(n / 8).max(1);
    adf_test(xs, lags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.normal()).collect()
    }

    fn random_walk(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = Rng::seed_from_u64(seed);
        let mut acc = 0.0;
        (0..n)
            .map(|_| {
                acc += rng.normal();
                acc
            })
            .collect()
    }

    #[test]
    fn white_noise_is_stationary() {
        let xs = white_noise(500, 1);
        let res = adf_test(&xs, 2).unwrap();
        assert!(
            res.is_stationary(Significance::One),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn random_walk_is_not_stationary() {
        let xs = random_walk(500, 2);
        let res = adf_test(&xs, 2).unwrap();
        assert!(
            !res.is_stationary(Significance::Ten),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn ar1_is_stationary() {
        let mut rng = Rng::seed_from_u64(3);
        let mut xs = vec![0.0];
        for _ in 0..800 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.6 * prev + rng.normal());
        }
        let res = adf_test_auto(&xs).unwrap();
        assert!(
            res.is_stationary(Significance::Five),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn near_unit_root_is_borderline() {
        // rho = 0.999 over a short window looks like a unit root.
        let mut rng = Rng::seed_from_u64(4);
        let mut xs = vec![0.0];
        for _ in 0..400 {
            let prev = *xs.last().expect("non-empty");
            xs.push(0.999 * prev + rng.normal());
        }
        let res = adf_test(&xs, 2).unwrap();
        assert!(
            !res.is_stationary(Significance::One),
            "statistic {}",
            res.statistic
        );
    }

    #[test]
    fn short_series_returns_none() {
        assert!(adf_test(&[1.0, 2.0, 3.0], 1).is_none());
        assert!(adf_test_auto(&white_noise(10, 5)).is_none());
    }

    #[test]
    fn constant_series_handled() {
        let xs = vec![2.0; 100];
        // All differences are zero; OLS hits the ridge path and the
        // perfect-fit branch yields a strongly stationary verdict.
        if let Some(res) = adf_test(&xs, 1) {
            assert!(res.is_stationary(Significance::One));
        }
    }

    #[test]
    fn critical_values_ordered() {
        assert!(
            Significance::One.critical_value()
                < Significance::Five.critical_value()
        );
        assert!(
            Significance::Five.critical_value()
                < Significance::Ten.critical_value()
        );
    }

    #[test]
    fn auto_lag_counts_observations() {
        let xs = white_noise(504, 6);
        let res = adf_test_auto(&xs).unwrap();
        assert!(res.lags >= 1);
        assert!(res.n_obs > 400);
    }
}

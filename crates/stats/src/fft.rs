//! Fast Fourier Transform.
//!
//! The FFT is load-bearing in this reproduction: the paper's periodicity
//! feature (§4.3.2), the FFT forecaster (§4.3.3), and the IceBreaker
//! baseline all depend on it. We implement an iterative radix-2
//! Cooley-Tukey transform for power-of-two lengths and Bluestein's
//! chirp-z algorithm for arbitrary lengths, so 504-minute blocks can be
//! transformed without padding artifacts.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number in Cartesian form.
///
/// A tiny local implementation avoids pulling in a complex-number crate for
/// the handful of operations the FFT needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates `e^{i theta}` on the unit circle.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns the modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared modulus, cheaper than [`Complex::abs`].
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Computes the in-place forward DFT of a power-of-two-length buffer.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn fft_pow2(buf: &mut [Complex]) {
    fft_pow2_dir(buf, false);
}

/// Computes the in-place inverse DFT (including the `1/n` scaling) of a
/// power-of-two-length buffer.
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn ifft_pow2(buf: &mut [Complex]) {
    fft_pow2_dir(buf, true);
    let scale = 1.0 / buf.len() as f64;
    for v in buf.iter_mut() {
        *v = v.scale(scale);
    }
}

fn fft_pow2_dir(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let shift = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - shift);
        if i < j {
            buf.swap(i, j);
        }
    }
    // Iterative butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Computes the forward DFT of a buffer of arbitrary length.
///
/// Power-of-two lengths dispatch to the radix-2 kernel; other lengths use
/// Bluestein's chirp-z transform, which re-expresses the DFT as a circular
/// convolution of power-of-two length.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf);
        return buf;
    }
    bluestein(input, false)
}

/// Computes the inverse DFT (including `1/n` scaling) of arbitrary length.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        ifft_pow2(&mut buf);
        return buf;
    }
    let mut out = bluestein(input, true);
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(scale);
    }
    out
}

fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = e^{sign * i * pi * k^2 / n}. Using k^2 mod 2n keeps the
    // angle argument small for long inputs, preserving precision.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(sign * std::f64::consts::PI * k2 as f64 / n as f64)
        })
        .collect();
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = *x * *y;
    }
    ifft_pow2(&mut a);
    (0..n).map(|k| a[k] * chirp[k]).collect()
}

/// Computes the DFT of a real-valued signal.
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    let input: Vec<Complex> =
        signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&input)
}

/// Reconstructs a real signal from its full-length spectrum, discarding the
/// (numerically tiny) imaginary residue.
pub fn irfft(spectrum: &[Complex]) -> Vec<f64> {
    ifft(spectrum).into_iter().map(|c| c.re).collect()
}

/// A single spectral component of a real signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Harmonic {
    /// Frequency-bin index in `[0, n/2]`.
    pub bin: usize,
    /// Amplitude of the reconstructed sinusoid.
    pub amplitude: f64,
    /// Phase of the component in radians.
    pub phase: f64,
}

impl Harmonic {
    /// Evaluates this harmonic's contribution at sample `t` of an
    /// `n`-sample signal.
    pub fn eval(&self, t: f64, n: usize) -> f64 {
        let omega = 2.0 * std::f64::consts::PI * self.bin as f64 / n as f64;
        self.amplitude * (omega * t + self.phase).cos()
    }
}

/// Extracts the `k` largest-amplitude harmonics (excluding the DC term) of a
/// real signal, plus the DC mean, exactly as the paper's FFT forecaster
/// keeps the "top 10 harmonics".
///
/// Returns `(mean, harmonics)` where `harmonics` is sorted by descending
/// amplitude. Only bins `1..=n/2` are considered; each bin's conjugate pair
/// is folded into a single real sinusoid. Bins with a non-finite amplitude
/// (a single `NaN`/`∞` sample poisons every bin of the transform) carry no
/// usable harmonic and are dropped rather than ranked.
pub fn top_harmonics(signal: &[f64], k: usize) -> (f64, Vec<Harmonic>) {
    let n = signal.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let spec = rfft(signal);
    let mean = spec[0].re / n as f64;
    let half = n / 2;
    let mut comps: Vec<Harmonic> = (1..=half)
        .map(|bin| {
            // A real sinusoid of amplitude A splits A/2 into bin and its
            // conjugate; the Nyquist bin (even n) is unpaired.
            let pair = if n.is_multiple_of(2) && bin == half { 1.0 } else { 2.0 };
            Harmonic {
                bin,
                amplitude: pair * spec[bin].abs() / n as f64,
                phase: spec[bin].arg(),
            }
        })
        .filter(|h| h.amplitude.is_finite())
        .collect();
    comps.sort_by(|a, b| b.amplitude.total_cmp(&a.amplitude));
    comps.truncate(k);
    (mean, comps)
}

/// Extrapolates a real signal `horizon` steps past its end using its `k`
/// strongest harmonics.
///
/// This is the core of the FFT forecaster used by both FeMux's forecaster
/// set and the IceBreaker baseline.
pub fn harmonic_extrapolate(
    signal: &[f64],
    k: usize,
    horizon: usize,
) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return vec![0.0; horizon];
    }
    let (mean, harmonics) = top_harmonics(signal, k);
    (0..horizon)
        .map(|h| {
            let t = (n + h) as f64;
            mean + harmonics.iter().map(|c| c.eval(t, n)).sum::<f64>()
        })
        .collect()
}

/// Computes the one-sided power spectral density of a real signal
/// (excluding DC), normalized so the entries sum to the signal's variance.
pub fn power_spectrum(signal: &[f64]) -> Vec<f64> {
    femux_obs::counter_add("stats.fft.power_spectra", 1);
    let n = signal.len();
    if n < 2 {
        return Vec::new();
    }
    let spec = rfft(signal);
    let half = n / 2;
    (1..=half)
        .map(|bin| {
            let pair = if n.is_multiple_of(2) && bin == half { 1.0 } else { 2.0 };
            pair * spec[bin].norm_sq() / (n as f64 * n as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[Complex]) -> Vec<Complex> {
        let n = input.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, x) in input.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64
                        / n as f64;
                    acc = acc + *x * Complex::cis(ang);
                }
                acc
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "{x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn top_harmonics_nonfinite_window_drops_bins_instead_of_panicking() {
        // Regression (serve parity gate, adversarial battery): a
        // 64-sample window with one NaN — e.g. a lost concurrency
        // report reaching the FFT forecaster unsanitized — poisons
        // every spectral bin, and the amplitude ranking used to panic
        // in `partial_cmp` ("amplitudes are finite"). Non-finite bins
        // are now dropped and the sort is total.
        let mut nan_window = vec![1.0; 64];
        nan_window[10] = f64::NAN;
        let (_, comps) = top_harmonics(&nan_window, 3);
        assert!(
            comps.iter().all(|c| c.amplitude.is_finite()),
            "non-finite amplitudes must never be ranked"
        );

        let mut inf_window = vec![2.0; 64];
        inf_window[5] = f64::INFINITY;
        let (_, comps) = top_harmonics(&inf_window, 3);
        assert!(comps.iter().all(|c| c.amplitude.is_finite()));

        // Extrapolation over such a window stays panic-free too.
        let out = harmonic_extrapolate(&nan_window, 3, 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn pow2_matches_naive() {
        let input: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.3).cos()))
            .collect();
        assert_close(&fft(&input), &naive_dft(&input), 1e-9);
    }

    #[test]
    fn arbitrary_length_matches_naive() {
        for n in [1usize, 2, 3, 5, 7, 12, 63, 100, 504] {
            let input: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), 0.0))
                .collect();
            assert_close(&fft(&input), &naive_dft(&input), 1e-7);
        }
    }

    #[test]
    fn round_trip_pow2() {
        let input: Vec<Complex> =
            (0..64).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let back = ifft(&fft(&input));
        assert_close(&back, &input, 1e-9);
    }

    #[test]
    fn round_trip_arbitrary() {
        let input: Vec<Complex> = (0..504)
            .map(|i| Complex::new((i as f64 * 0.01).cos(), 0.0))
            .collect();
        let back = ifft(&fft(&input));
        assert_close(&back, &input, 1e-7);
    }

    #[test]
    fn empty_input() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        assert_eq!(harmonic_extrapolate(&[], 3, 4), vec![0.0; 4]);
    }

    #[test]
    fn pure_tone_recovered() {
        // 8 cycles over 128 samples, amplitude 3, phase pi/4.
        let n = 128;
        let signal: Vec<f64> = (0..n)
            .map(|t| {
                3.0 * (2.0 * std::f64::consts::PI * 8.0 * t as f64 / n as f64
                    + std::f64::consts::FRAC_PI_4)
                    .cos()
                    + 5.0
            })
            .collect();
        let (mean, harmonics) = top_harmonics(&signal, 1);
        assert!((mean - 5.0).abs() < 1e-9);
        assert_eq!(harmonics[0].bin, 8);
        assert!((harmonics[0].amplitude - 3.0).abs() < 1e-9);
        assert!(
            (harmonics[0].phase - std::f64::consts::FRAC_PI_4).abs() < 1e-9
        );
    }

    #[test]
    fn extrapolation_continues_periodic_signal() {
        let n = 256;
        let f = |t: f64| {
            2.0 * (2.0 * std::f64::consts::PI * 4.0 * t / n as f64).sin() + 1.0
        };
        let signal: Vec<f64> = (0..n).map(|t| f(t as f64)).collect();
        let pred = harmonic_extrapolate(&signal, 3, 32);
        for (h, p) in pred.iter().enumerate() {
            let truth = f((n + h) as f64);
            assert!((p - truth).abs() < 1e-6, "h={h}: {p} vs {truth}");
        }
    }

    #[test]
    fn power_spectrum_sums_to_variance() {
        let signal: Vec<f64> = (0..200)
            .map(|t| (t as f64 * 0.3).sin() + 0.5 * (t as f64 * 1.1).cos())
            .collect();
        let mean = signal.iter().sum::<f64>() / signal.len() as f64;
        let var = signal.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
            / signal.len() as f64;
        let total: f64 = power_spectrum(&signal).iter().sum();
        assert!((total - var).abs() < 1e-9, "{total} vs {var}");
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }
}

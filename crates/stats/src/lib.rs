//! Numerical substrate for the FeMux reproduction.
//!
//! This crate collects every piece of numerics the rest of the workspace
//! depends on, implemented from scratch so that the reproduction has no
//! opaque numerical dependencies:
//!
//! - [`rng`]: deterministic xoshiro256++ PRNG and distribution samplers
//!   (normal, Poisson, Pareto, Zipf) used by the trace synthesizers.
//! - [`fft`]: radix-2 and Bluestein FFTs, harmonic extraction, and
//!   harmonic extrapolation (the FFT forecaster's engine).
//! - [`matrix`]: dense linear algebra (LU, Cholesky, OLS) for the AR/SETAR
//!   fits and the ADF regression.
//! - [`desc`]: descriptive statistics — quantiles, ECDFs, histograms,
//!   coefficient of variation — used across the characterization figures.
//! - [`acf`]: autocovariance, Levinson-Durbin (Yule-Walker solver), and
//!   Ljung-Box.
//! - [`adf`]: Augmented Dickey-Fuller stationarity test (block feature).
//! - [`bds`]: Broock-Dechert-Scheinkman independence test (block
//!   linearity feature).

pub mod acf;
pub mod adf;
pub mod bds;
pub mod desc;
pub mod fft;
pub mod matrix;
pub mod rng;

pub use desc::{Ecdf, Summary};
pub use fft::Complex;
pub use matrix::Matrix;
pub use rng::Rng;

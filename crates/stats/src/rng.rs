//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in this workspace (trace synthesis, k-means
//! initialization, sampling) draws from [`Rng`], a xoshiro256++ generator
//! seeded through SplitMix64. Using our own small generator keeps every
//! experiment bit-reproducible across platforms and toolchain upgrades,
//! which matters when regenerating paper figures.

/// A seedable xoshiro256++ pseudo-random number generator.
///
/// xoshiro256++ is a fast, high-quality, non-cryptographic generator with a
/// period of 2^256 - 1. It must never be used for security purposes.
///
/// # Examples
///
/// ```
/// use femux_stats::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed using SplitMix64 expansion.
    ///
    /// SplitMix64 guarantees that even adjacent seeds produce well-separated
    /// initial states, and that the all-zero state (which would be a fixed
    /// point of xoshiro) can never occur.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent child generator.
    ///
    /// This is the mechanism used to hand one stream per application to the
    /// trace synthesizers so that adding or removing applications does not
    /// perturb the traffic of the others.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad range");
        lo + (hi - lo) * self.f64()
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below requires n > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples a standard normal variate via the Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Samples `N(mean, std^2)`.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        assert!(std >= 0.0, "standard deviation must be non-negative");
        mean + std * self.normal()
    }

    /// Samples a log-normal variate with the given parameters of the
    /// underlying normal distribution.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// Samples an exponential variate with rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`.
    pub fn exp(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        // `1 - f64()` is in (0, 1], avoiding ln(0).
        -(1.0 - self.f64()).ln() / lambda
    }

    /// Samples a Poisson variate with mean `lambda`.
    ///
    /// Uses Knuth's product method for small means and a normal
    /// approximation with continuity correction for large means, which is
    /// accurate to well under a percent for `lambda > 64` and keeps sampling
    /// O(1) for the heavy-traffic applications in the fleet generators.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0 && lambda.is_finite(), "bad Poisson mean");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 64.0 {
            let limit = (-lambda).exp();
            let mut product = self.f64();
            let mut count = 0u64;
            while product > limit {
                product *= self.f64();
                count += 1;
            }
            count
        } else {
            let x = self.normal_with(lambda, lambda.sqrt());
            if x < 0.0 {
                0
            } else {
                (x + 0.5) as u64
            }
        }
    }

    /// Samples a Pareto variate with scale `xm > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed samples model the long-tail cold-start durations and
    /// execution times the paper reports (p99 delays above 100 s).
    ///
    /// # Panics
    ///
    /// Panics if `xm <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0, "bad Pareto parameters");
        xm / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to a
    /// non-positive total.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights
            .iter()
            .inspect(|&w| {
                assert!(*w >= 0.0, "weights must be non-negative");
            })
            .sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Performs an in-place Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir sampling).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.index(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

/// A Zipf-distributed sampler over ranks `1..=n` with exponent `s`.
///
/// The popularity of serverless applications is heavily skewed (a handful of
/// applications dominate traffic; Fig. 15 of the paper), which a Zipf law
/// captures. This sampler precomputes the normalization constant and uses
/// inverse-CDF sampling over a cumulative table, trading O(n) memory for
/// O(log n) draws.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf requires at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Returns the number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there are no ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `[0, n)` (0 is the most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Returns the probability mass of rank `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(5);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::seed_from_u64(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exp(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 =
            (0..n).map(|_| rng.poisson(3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = Rng::seed_from_u64(8);
        let n = 50_000;
        let mean: f64 =
            (0..n).map(|_| rng.poisson(500.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = Rng::seed_from_u64(9);
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn pareto_exceeds_scale() {
        let mut rng = Rng::seed_from_u64(10);
        for _ in 0..1_000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from_u64(11);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(12);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from_u64(13);
        let mut idx = rng.sample_indices(100, 20);
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 20);
        assert!(idx.iter().all(|i| *i < 100));
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut rng = Rng::seed_from_u64(14);
        let zipf = Zipf::new(100, 1.2);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let zipf = Zipf::new(50, 0.9);
        let total: f64 = (0..50).map(|k| zipf.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(15);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn below_zero_panics() {
        Rng::seed_from_u64(0).below(0);
    }
}

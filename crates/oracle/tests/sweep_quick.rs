//! The quick property sweep must come back clean, and its rendered
//! report must be byte-identical at different thread counts.

use femux_oracle::{run_sweep, SweepConfig};

#[test]
fn quick_sweep_is_clean() {
    let report = run_sweep(&SweepConfig::quick(0x04AC1E));
    assert!(report.is_clean(), "{}", report.render());
}

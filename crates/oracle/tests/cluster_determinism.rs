//! Tier-1 contract tests for the cluster fault domain:
//!
//! 1. **Thread invariance** — a seeded IBM fleet on a memory-tight
//!    cluster with node crashes enabled produces identical per-app
//!    results (costs, delay vectors, spans, and the full cluster
//!    ledger) at 1 worker and at 8 workers, and the run actually
//!    exercises eviction, node crashes, and backoff restarts.
//! 2. **Zero node-crash rate ≡ no fault layer** — a fault plan with
//!    every rate zero installed next to a finite cluster is
//!    indistinguishable from running the same cluster with no fault
//!    plan at all: the node-crash draws happen but never perturb the
//!    run.
//! 3. **Backward compat** — a single unbounded node is bit-exact with
//!    the historical free-floating accounting (`cluster: None`) on
//!    every pre-cluster observable, and its ledger shows zero
//!    evictions, overcommits, and denials.

use std::sync::Mutex;

use femux_fault::FaultConfig;
use femux_obs::span::SpanConfig;
use femux_sim::{
    run_fleet_detailed, ClusterConfig, KnativeDefaultPolicy, NodeConfig,
    SimConfig, SimResult,
};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

/// One test instruments the process-global obs collector; the others
/// run engines that would emit into it while enabled. Serialize the
/// whole file so the captured telemetry stays deterministic.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Two nodes of ~2 typical pods each: enough room that fleets make
/// progress, tight enough that bursty apps hit eviction and
/// saturation.
fn tight_cluster() -> ClusterConfig {
    ClusterConfig::uniform(
        2,
        NodeConfig {
            cpu_milli: u64::MAX,
            mem_mb: 400,
        },
    )
}

fn cluster_cfg(
    cluster: Option<ClusterConfig>,
    faults: Option<FaultConfig>,
) -> SimConfig {
    SimConfig {
        record_delays: true,
        spans: Some(SpanConfig { rate: 1.0, seed: 0x5EED }),
        cluster,
        faults,
        ..SimConfig::default()
    }
}

fn run_fleet(cfg: &SimConfig, threads: usize) -> Vec<SimResult> {
    // 40 apps over a day keep the file tier-1-fast while still firing
    // dozens of node crashes and evictions at the rates below.
    let trace = generate(&IbmFleetConfig {
        n_apps: 40,
        span_days: 1,
        ..IbmFleetConfig::small(31)
    });
    let _guard = femux_par::override_threads(threads);
    run_fleet_detailed(&trace, cfg, |_, _| Box::new(KnativeDefaultPolicy))
}

#[test]
fn tight_cluster_with_node_crashes_is_thread_invariant() {
    let _lock = OBS_LOCK.lock().expect("obs test lock");
    let faults = FaultConfig {
        node_crash_rate: 0.02,
        node_recovery_ticks: 2,
        ..FaultConfig::off(0xC1A5)
    };
    let cfg = SimConfig {
        // Pin the track prefix: the run epoch is a per-process counter,
        // so two successive runs would otherwise land on different
        // lanes.
        obs_track_prefix: Some("cluster-det".to_string()),
        ..cluster_cfg(Some(tight_cluster()), Some(faults))
    };

    let capture = |threads: usize| {
        femux_obs::set_enabled(true);
        femux_obs::set_events(true);
        drop(femux_obs::collect());
        let results = run_fleet(&cfg, threads);
        let report = femux_obs::collect();
        femux_obs::set_enabled(false);
        femux_obs::set_events(false);
        (results, report.metrics_json(), report.chrome_trace_json())
    };

    let (res1, metrics1, trace1) = capture(1);
    let (res8, metrics8, trace8) = capture(8);
    assert_eq!(
        res1, res8,
        "per-app results (incl. cluster ledger) must not depend on the \
         worker count"
    );
    assert_eq!(metrics1, metrics8, "metrics JSON must be byte-identical");
    assert_eq!(trace1, trace8, "Chrome trace must be byte-identical");

    // The cluster layer's new flow stages (node-crash anchors with
    // pod-restart steps) and instants pass the validator round-trip.
    let summary = femux_obs::validate::validate_chrome_trace(&trace1)
        .expect("cluster-instrumented trace validates");
    assert!(summary.flows > 0, "fleet run must emit flow events");
    for stage in ["\"node-crash\"", "\"pod-restart\"", "\"pod-evict\""] {
        assert!(
            trace1.contains(stage),
            "trace must record {stage} events"
        );
    }

    // The fleet must actually exercise every cluster code path, or the
    // invariance above is vacuous.
    let ledger = |f: fn(&femux_sim::ClusterOutcome) -> u64| -> u64 {
        res1.iter()
            .filter_map(|r| r.cluster.as_ref())
            .map(f)
            .sum()
    };
    assert!(ledger(|c| c.evictions) > 0, "no eviction exercised");
    assert!(ledger(|c| c.node_crashes) > 0, "no node crash exercised");
    assert!(ledger(|c| c.node_restarts) > 0, "no restart exercised");
    assert!(
        ledger(|c| c.pods_displaced) > 0,
        "no displacement exercised"
    );
    // Plan-vs-telemetry accounting: the engine's fault stats and the
    // cluster ledger describe the same injections.
    let stat_crashes: u64 =
        res1.iter().map(|r| r.faults.node_crashes).sum();
    assert_eq!(
        stat_crashes,
        ledger(|c| c.node_crashes),
        "fault stats and cluster ledger disagree on crash count"
    );
}

#[test]
fn zero_rate_fault_plan_is_inert_next_to_a_cluster() {
    let _lock = OBS_LOCK.lock().expect("obs test lock");
    let with_plan =
        cluster_cfg(Some(tight_cluster()), Some(FaultConfig::off(0xFA17)));
    let without = cluster_cfg(Some(tight_cluster()), None);
    let a = run_fleet(&with_plan, 4);
    let b = run_fleet(&without, 4);
    assert_eq!(
        a, b,
        "a zero-rate node fault layer must be indistinguishable from \
         no fault layer"
    );
}

#[test]
fn unbounded_single_node_is_bit_exact_with_cluster_none() {
    let _lock = OBS_LOCK.lock().expect("obs test lock");
    let clustered =
        cluster_cfg(Some(ClusterConfig::unbounded()), None);
    let free = cluster_cfg(None, None);
    let mut a = run_fleet(&clustered, 4);
    let b = run_fleet(&free, 4);
    for res in &a {
        let c = res.cluster.as_ref().expect("clustered run has ledger");
        assert_eq!(c.evictions, 0, "unbounded node must never evict");
        assert_eq!(c.saturated_overcommits, 0);
        assert_eq!(c.placement_denials, 0);
        assert!(c.conserved(), "placement ledger must balance");
    }
    // Strip the (necessarily present) ledger; everything else must be
    // bit-identical to the pre-cluster accounting.
    for res in &mut a {
        res.cluster = None;
    }
    assert_eq!(
        a, b,
        "one unbounded node must reproduce free-floating results"
    );
}

//! Hand-built agreement cases: each scenario pins one of the engine
//! behaviors the oracle must mirror exactly, including the four bugs
//! fixed alongside this crate (phantom min-scale event, replay past the
//! span, burst admission vs warming pods, dropped tail interval).

use femux_oracle::{compare_results, reference_simulate, PolicyKind};
use femux_sim::{simulate_app, SimConfig};
use femux_trace::types::{
    AppConfig, AppId, AppRecord, Invocation, WorkloadKind,
};

fn app(
    concurrency: u32,
    min_scale: u32,
    invocations: Vec<(u64, u32)>,
) -> AppRecord {
    AppRecord {
        id: AppId(7),
        kind: WorkloadKind::Application,
        config: AppConfig {
            concurrency,
            min_scale,
            ..AppConfig::default()
        },
        mem_used_mb: 150,
        cold_start_ms: 808,
        invocations: invocations
            .into_iter()
            .map(|(start_ms, duration_ms)| Invocation {
                start_ms,
                duration_ms,
                delay_ms: 0,
            })
            .collect(),
    }
}

fn assert_agreement(app: &AppRecord, span_ms: u64, interval_ms: u64) {
    let cfg = SimConfig {
        interval_ms,
        record_delays: true,
        ..SimConfig::default()
    };
    for policy in PolicyKind::ALL {
        let engine =
            simulate_app(app, policy.build().as_mut(), span_ms, &cfg);
        let oracle = reference_simulate(
            app,
            policy.build().as_mut(),
            span_ms,
            &cfg,
        );
        if let Some(d) = compare_results(&engine, &oracle, interval_ms) {
            panic!(
                "policy {} interval {interval_ms}ms span {span_ms}ms: {d}",
                policy.label()
            );
        }
    }
}

#[test]
fn idle_min_scale_app_agrees() {
    // Pins the phantom-scale-event fix on both sides: initial_pods
    // seeds the scale-event diff.
    let app = app(100, 2, vec![]);
    assert_agreement(&app, 180_000, 60_000);
}

#[test]
fn invocations_past_the_span_agree() {
    // Pins the replay clamp: only the first invocation is served; the
    // one at the span edge and the one far beyond it are dropped.
    let app =
        app(100, 0, vec![(10_000, 500), (120_000, 500), (400_000, 500)]);
    assert_agreement(&app, 120_000, 60_000);
}

#[test]
fn same_ms_burst_agrees() {
    // Pins burst admission: one warming pod absorbs queued arrivals up
    // to its concurrency instead of spawning a pod per request.
    let app = app(
        100,
        0,
        vec![(5_000, 2_500), (5_000, 2_500), (5_000, 2_500)],
    );
    assert_agreement(&app, 60_000, 60_000);
}

#[test]
fn odd_span_tail_interval_agrees() {
    // Pins the pro-rated tail close on a span that is not a whole
    // number of intervals.
    let app = app(100, 0, vec![(70_000, 20_000)]);
    assert_agreement(&app, 90_000, 60_000);
}

#[test]
fn concurrency_one_overlap_agrees() {
    let app = app(
        1,
        0,
        vec![(2_000, 25_000), (11_500, 25_000), (21_000, 25_000)],
    );
    assert_agreement(&app, 130_000, 10_000);
}

#[test]
fn zero_duration_requests_agree() {
    // Zero-duration warm requests complete inside their arrival
    // millisecond; the lazy completion pop must match on both sides.
    let app = app(
        2,
        0,
        vec![(3_000, 0), (3_000, 1_300), (3_701, 0), (3_701, 1_300)],
    );
    assert_agreement(&app, 60_000, 60_000);
}

#[test]
fn span_overhang_work_agrees() {
    // Requests admitted just before the cut drain past the span end.
    let app = app(100, 1, vec![(59_500, 30_000), (59_800, 30_000)]);
    assert_agreement(&app, 60_000, 60_000);
}

#[test]
fn sub_minute_interval_agrees() {
    let app = app(
        100,
        0,
        vec![(9_999, 5_000), (10_000, 5_000), (10_001, 5_000)],
    );
    assert_agreement(&app, 50_000, 10_000);
}

//! Tier-1 contract tests for the causal span layer:
//!
//! 1. **Thread invariance** — a seeded IBM fleet instrumented at
//!    sample rate 1 produces byte-identical metrics, Chrome trace, and
//!    span table at 1 worker and at 8 workers.
//! 2. **Rate-0 ≡ compiled out** — a span config with rate 0 is
//!    indistinguishable from no span config at all, field for field.
//! 3. **Exact accounting** — for every sampled span, `queue_wait_ms +
//!    cold_wait_ms` converted to seconds equals the engine's recorded
//!    delay for the same invocation to exact `f64` equality (same
//!    rounding operation, bitwise-equal result), and the independent
//!    per-millisecond oracle re-derives the identical span table.

use std::sync::Mutex;

use femux_obs::span::SpanConfig;
use femux_oracle::{compare_results, reference_simulate};
use femux_sim::{
    run_fleet_detailed, simulate_app, KeepAlivePolicy,
    KnativeDefaultPolicy, SimConfig,
};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

/// Serializes the tests that toggle the process-global obs switches.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn spans_cfg(rate: f64) -> SimConfig {
    SimConfig {
        record_delays: true,
        spans: Some(SpanConfig { rate, seed: 0x5EED }),
        ..SimConfig::default()
    }
}

#[test]
fn instrumented_fleet_is_byte_identical_across_thread_counts() {
    let _lock = OBS_LOCK.lock().expect("obs test lock");
    let trace = generate(&IbmFleetConfig::small(21));
    // Pin the track prefix: the run epoch is a per-process counter, so
    // two successive runs would otherwise land on different lanes.
    let cfg = SimConfig {
        obs_track_prefix: Some("det".to_string()),
        ..spans_cfg(1.0)
    };

    let capture = |threads: usize| {
        femux_obs::set_enabled(true);
        femux_obs::set_events(true);
        drop(femux_obs::collect());
        let results = {
            let _guard = femux_par::override_threads(threads);
            run_fleet_detailed(&trace, &cfg, |_, _| {
                Box::new(KeepAlivePolicy::ten_minutes())
            })
        };
        let report = femux_obs::collect();
        femux_obs::set_enabled(false);
        femux_obs::set_events(false);
        (
            results,
            report.metrics_json(),
            report.chrome_trace_json(),
            report.span_table_json(),
        )
    };

    let (res1, metrics1, trace1, table1) = capture(1);
    let (res8, metrics8, trace8, table8) = capture(8);

    assert_eq!(res1, res8, "SimResults (including spans) must match");
    assert_eq!(metrics1, metrics8, "metrics JSON must be byte-identical");
    assert_eq!(trace1, trace8, "Chrome trace must be byte-identical");
    assert_eq!(table1, table8, "span table must be byte-identical");
    assert!(
        table1.lines().count() > 0,
        "rate-1 sampling over a non-empty fleet must record spans"
    );
    // The emitted trace (complete spans, instants, and flow events)
    // passes the validator round-trip.
    let summary = femux_obs::validate::validate_chrome_trace(&trace1)
        .expect("instrumented trace validates");
    assert!(summary.flows > 0, "fleet run must emit flow events");
}

#[test]
fn rate_zero_is_indistinguishable_from_no_span_config() {
    let _lock = OBS_LOCK.lock().expect("obs test lock");
    let trace = generate(&IbmFleetConfig::small(22));
    let off = SimConfig {
        record_delays: true,
        ..SimConfig::default()
    };
    let zero = spans_cfg(0.0);
    for app in trace.apps.iter().filter(|a| !a.invocations.is_empty()) {
        let a = simulate_app(
            app,
            &mut KeepAlivePolicy::ten_minutes(),
            trace.span_ms,
            &off,
        );
        let b = simulate_app(
            app,
            &mut KeepAlivePolicy::ten_minutes(),
            trace.span_ms,
            &zero,
        );
        assert_eq!(a, b, "rate 0 must compile the layer out ({})", app.id);
        assert!(b.spans.is_empty(), "rate 0 must record no spans");
    }
}

#[test]
fn span_segments_sum_to_the_engine_delay_exactly_and_match_the_oracle() {
    let trace = generate(&IbmFleetConfig::small(23));
    // The per-millisecond oracle steps every ms of the span, so clamp
    // the replay window (the clamp itself is part of the contract) and
    // the app count to keep this tier-1-fast; the full-span sweep runs
    // in the release-mode oracle job.
    let span_ms = 200_000.min(trace.span_ms);
    let cfg = spans_cfg(1.0);
    let mut checked_spans = 0usize;
    for app in trace
        .apps
        .iter()
        .filter(|a| !a.invocations.is_empty())
        .take(6)
    {
        let engine =
            simulate_app(app, &mut KnativeDefaultPolicy, span_ms, &cfg);
        // Rate 1 samples every replayed invocation.
        assert_eq!(
            engine.spans.len() as u64,
            engine.costs.invocations,
            "rate-1 sampling must span every invocation ({})",
            app.id
        );
        for span in &engine.spans {
            // Exact accounting: the same `ms as f64 / 1_000.0`
            // rounding the engine applies to its delay, applied to the
            // segment sum, must be bitwise-equal.
            let sum_secs = span.delay_secs();
            let engine_delay = engine.delays_secs[span.index as usize];
            assert_eq!(
                sum_secs.to_bits(),
                engine_delay.to_bits(),
                "segment sum {} != engine delay {} for inv {} of {}",
                sum_secs,
                engine_delay,
                span.index,
                app.id
            );
            // Exactly one wait segment may be nonzero.
            assert!(
                span.queue_wait_ms == 0 || span.cold_wait_ms == 0,
                "both wait segments nonzero for inv {} of {}",
                span.index,
                app.id
            );
            checked_spans += 1;
        }
        // The independent per-millisecond oracle derives the identical
        // span table (pod identities, origins, and segments included).
        let oracle = reference_simulate(
            app,
            &mut KnativeDefaultPolicy,
            span_ms,
            &cfg,
        );
        assert_eq!(
            compare_results(&engine, &oracle, cfg.interval_ms),
            None,
            "oracle disagrees on {}",
            app.id
        );
    }
    assert!(
        checked_spans > 0,
        "the seeded fleet must exercise the accounting identity"
    );
}

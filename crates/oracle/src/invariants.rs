//! Metamorphic invariants of the simulation semantics.
//!
//! These properties must hold for *any* correct implementation of the
//! pinned engine contract, independent of the differential oracle:
//!
//! - **Cost conservation** ([`check_conservation`]): execution time
//!   never exceeds the capacity that was allocated
//!   (`exec_seconds ≤ alive-pod-seconds × per-pod concurrency`), the
//!   structural [`femux_rum::CostRecord::check`] passes, and the
//!   cold-start count equals the number of requests that waited.
//! - **Headroom monotonicity** ([`check_headroom_monotone`]): holding
//!   more fixed pods never causes *more* cold starts.
//! - **Time-shift invariance** ([`check_time_shift`]): delaying a
//!   min-scale-0 workload by whole intervals leaves every cost
//!   identical and merely prefixes the observation series with zeros.
//!   (Checked for policies whose decisions depend only on the trailing
//!   window — keep-alive and zero; forecasters with absolute history
//!   windows are legitimately shift-sensitive.)
//! - **Id-shift invariance** ([`check_id_shift`]): the application id
//!   is an identity, not an input — relabeling changes nothing in a
//!   fault-free run. (Spans are excluded: the span sampler is keyed by
//!   app id by design, so the check runs with the layer off.)
//! - **Min-scale floor** ([`check_min_scale_floor`]): the pod timeline
//!   never dips below `min_scale`, starting from the floor itself (no
//!   phantom 0 → min_scale event).
//! - **Rate-0 fault inertness** ([`check_rate0_inert`]): installing a
//!   fault plan with every rate at zero is byte-identical to running
//!   with no plan at all.
//! - **Cluster ledger conservation** ([`check_cluster_accounting`]):
//!   every placed pod is accounted for exactly once
//!   (`placed = evicted + scaled_down + displaced + resident_end`) and
//!   the per-node occupancy integrals sum to the engine's alive-pod
//!   time (the quantity `allocated_gb_seconds` is billed from).

use femux_sim::{
    simulate_app, FixedPolicy, ScalingPolicy, SimConfig, SimResult,
};
use femux_trace::types::AppRecord;

/// Relative/absolute slack for the one inequality computed from
/// already-rounded quantities; every equality check is exact.
const EPS: f64 = 1e-6;

/// Cost conservation for a single fault-free result.
pub fn check_conservation(
    app: &AppRecord,
    res: &SimResult,
    recorded_delays: bool,
) -> Result<(), String> {
    res.costs.check()?;
    let mem_gb = app.mem_used_mb as f64 / 1_024.0;
    let concurrency = f64::from(app.config.concurrency.max(1));
    if mem_gb > 0.0 {
        let capacity_secs =
            res.costs.allocated_gb_seconds / mem_gb * concurrency;
        if res.costs.exec_seconds > capacity_secs * (1.0 + EPS) + EPS {
            return Err(format!(
                "exec {}s exceeds allocated capacity {}s",
                res.costs.exec_seconds, capacity_secs
            ));
        }
    }
    if recorded_delays {
        let waited =
            res.delays_secs.iter().filter(|&&d| d > 0.0).count() as u64;
        if waited != res.costs.cold_starts {
            return Err(format!(
                "{} requests waited but {} cold starts were counted",
                waited, res.costs.cold_starts
            ));
        }
    }
    Ok(())
}

/// More fixed pods ⇒ no more cold starts.
pub fn check_headroom_monotone(
    app: &AppRecord,
    span_ms: u64,
    cfg: &SimConfig,
    lo_pods: usize,
    hi_pods: usize,
) -> Result<(), String> {
    assert!(lo_pods < hi_pods, "lo must be the smaller headroom");
    let lo = simulate_app(app, &mut FixedPolicy(lo_pods), span_ms, cfg);
    let hi = simulate_app(app, &mut FixedPolicy(hi_pods), span_ms, cfg);
    if hi.costs.cold_starts > lo.costs.cold_starts {
        return Err(format!(
            "fixed-{hi_pods} pays {} cold starts, fixed-{lo_pods} only {}",
            hi.costs.cold_starts, lo.costs.cold_starts
        ));
    }
    Ok(())
}

/// Shifting a min-scale-0 workload by `k` whole intervals prefixes the
/// series with `k` zero samples and changes no cost.
///
/// `make_policy` must build a window-relative policy (keep-alive,
/// zero). The check disables the scale-out rate limit: the limit's
/// wall-clock minute buckets are legitimately not shift-invariant.
pub fn check_time_shift(
    app: &AppRecord,
    span_ms: u64,
    cfg: &SimConfig,
    make_policy: &dyn Fn() -> Box<dyn ScalingPolicy>,
    k: u64,
) -> Result<(), String> {
    let mut base_cfg = cfg.clone();
    base_cfg.scale_limit = None;
    let mut base_app = app.clone();
    base_app.config.min_scale = 0;

    let delta = k * base_cfg.interval_ms;
    let mut shifted_app = base_app.clone();
    for inv in &mut shifted_app.invocations {
        inv.start_ms += delta;
    }

    let base = simulate_app(
        &base_app,
        make_policy().as_mut(),
        span_ms,
        &base_cfg,
    );
    let shifted = simulate_app(
        &shifted_app,
        make_policy().as_mut(),
        span_ms + delta,
        &base_cfg,
    );

    if shifted.costs != base.costs {
        return Err(format!(
            "costs changed under a {delta} ms shift: {:?} vs {:?}",
            shifted.costs, base.costs
        ));
    }
    let k = k as usize;
    for (name, shifted_series, base_series) in [
        (
            "avg_concurrency",
            &shifted.avg_concurrency,
            &base.avg_concurrency,
        ),
        (
            "peak_concurrency",
            &shifted.peak_concurrency,
            &base.peak_concurrency,
        ),
        ("arrivals", &shifted.arrivals, &base.arrivals),
    ] {
        if shifted_series.len() != base_series.len() + k
            || shifted_series[..k].iter().any(|&v| v != 0.0)
            || shifted_series[k..] != base_series[..]
        {
            return Err(format!(
                "{name} is not the base series with {k} zero samples \
                 prefixed"
            ));
        }
    }
    if shifted.pod_counts.len() != base.pod_counts.len() + k
        || shifted.pod_counts[..k].iter().any(|&p| p != 0)
        || shifted.pod_counts[k..] != base.pod_counts[..]
    {
        return Err(
            "pod_counts is not the base timeline with a zero prefix"
                .to_string(),
        );
    }
    if shifted.delays_secs != base.delays_secs {
        return Err("per-request delays changed under shift".to_string());
    }
    Ok(())
}

/// Relabeling the application id changes nothing in a fault-free run.
pub fn check_id_shift(
    app: &AppRecord,
    span_ms: u64,
    cfg: &SimConfig,
    make_policy: &dyn Fn() -> Box<dyn ScalingPolicy>,
) -> Result<(), String> {
    // The span sampler is deliberately keyed by `(app id, index)` and
    // each span records its app id, so the span layer is legitimately
    // id-sensitive; run the check with spans off.
    let mut cfg = cfg.clone();
    cfg.spans = None;
    let cfg = &cfg;
    let mut relabeled = app.clone();
    relabeled.id = femux_trace::types::AppId(app.id.0 ^ 0x5EED);
    let base = simulate_app(app, make_policy().as_mut(), span_ms, cfg);
    let moved =
        simulate_app(&relabeled, make_policy().as_mut(), span_ms, cfg);
    if base != moved {
        return Err("result depends on the application id".to_string());
    }
    Ok(())
}

/// The pod timeline starts at and never dips below the min-scale floor,
/// and the reconstructed scale events honor it too.
pub fn check_min_scale_floor(
    app: &AppRecord,
    res: &SimResult,
    cfg: &SimConfig,
) -> Result<(), String> {
    if !cfg.respect_min_scale {
        return Ok(());
    }
    // Memory pressure is physical and overrides the floor: a cluster
    // too small for the floor denies the initial placements, and
    // eviction deliberately ignores the floor. The invariant only
    // applies while the cluster never had to push back.
    if let Some(cl) = &res.cluster {
        if cl.placement_denials > 0 || cl.evictions > 0 {
            return Ok(());
        }
    }
    let floor = app.config.min_scale as usize;
    if res.initial_pods != floor {
        return Err(format!(
            "initial pod count {} is not the min-scale floor {floor}",
            res.initial_pods
        ));
    }
    if let Some(p) = res.pod_counts.iter().find(|&&p| p < floor) {
        return Err(format!(
            "pod count {p} dips below the min-scale floor {floor}"
        ));
    }
    for ev in res.scale_events(cfg.interval_ms) {
        if ev.to < floor || ev.from < floor {
            return Err(format!(
                "scale event {ev:?} crosses the min-scale floor {floor}"
            ));
        }
    }
    Ok(())
}

/// Cluster ledger conservation plus occupancy-integral agreement with
/// the billed allocation, for any result carrying a cluster outcome.
pub fn check_cluster_accounting(
    app: &AppRecord,
    res: &SimResult,
) -> Result<(), String> {
    let Some(cl) = &res.cluster else {
        return Ok(());
    };
    if !cl.conserved() {
        return Err(format!(
            "cluster ledger not conserved: placed {} != evicted {} + \
             scaled_down {} + displaced {} + resident_end {}",
            cl.placed,
            cl.evictions,
            cl.scaled_down,
            cl.pods_displaced,
            cl.resident_end
        ));
    }
    let mem_gb = app.mem_used_mb as f64 / 1_024.0;
    if mem_gb > 0.0 {
        let alive_secs = res.costs.allocated_gb_seconds / mem_gb;
        let occupancy_secs: f64 = cl.node_pod_seconds.iter().sum();
        if (occupancy_secs - alive_secs).abs()
            > EPS * alive_secs.abs() + EPS
        {
            return Err(format!(
                "per-node occupancy sums to {occupancy_secs}s but the \
                 engine billed {alive_secs}s of pod time"
            ));
        }
    }
    Ok(())
}

/// An infinite-capacity single-node cluster never denies, evicts, or
/// saturates, so every non-cluster observable must be byte-identical
/// to running with no cluster at all (the backward-compat gate for the
/// cluster layer).
pub fn check_unbounded_cluster_transparent(
    app: &AppRecord,
    span_ms: u64,
    cfg: &SimConfig,
    make_policy: &dyn Fn() -> Box<dyn ScalingPolicy>,
) -> Result<(), String> {
    assert!(
        cfg.cluster.is_none(),
        "pass the cluster-free configuration"
    );
    let base = simulate_app(app, make_policy().as_mut(), span_ms, cfg);
    let mut clustered_cfg = cfg.clone();
    clustered_cfg.cluster =
        Some(femux_sim::ClusterConfig::unbounded());
    let clustered = simulate_app(
        app,
        make_policy().as_mut(),
        span_ms,
        &clustered_cfg,
    );
    let Some(outcome) = &clustered.cluster else {
        return Err(
            "clustered run produced no cluster outcome".to_string()
        );
    };
    if outcome.evictions != 0
        || outcome.saturated_overcommits != 0
        || outcome.placement_denials != 0
    {
        return Err(format!(
            "an unbounded node pushed back: {outcome:?}"
        ));
    }
    let mut stripped = clustered.clone();
    stripped.cluster = None;
    if format!("{stripped:?}") != format!("{base:?}") {
        return Err(
            "an unbounded single-node cluster changed the simulation"
                .to_string(),
        );
    }
    Ok(())
}

/// A fault plan with all rates zero must be byte-identical to no plan.
pub fn check_rate0_inert(
    app: &AppRecord,
    span_ms: u64,
    cfg: &SimConfig,
    make_policy: &dyn Fn() -> Box<dyn ScalingPolicy>,
    seed: u64,
) -> Result<(), String> {
    assert!(cfg.faults.is_none(), "pass the fault-free configuration");
    let clean = simulate_app(app, make_policy().as_mut(), span_ms, cfg);
    let mut zeroed_cfg = cfg.clone();
    zeroed_cfg.faults = Some(femux_fault::FaultConfig::off(seed));
    let zeroed =
        simulate_app(app, make_policy().as_mut(), span_ms, &zeroed_cfg);
    if format!("{clean:?}") != format!("{zeroed:?}") {
        return Err(
            "a rate-0 fault plan changed the simulation".to_string()
        );
    }
    if zeroed.faults != femux_fault::FaultStats::default() {
        return Err(format!(
            "a rate-0 plan reported injections: {:?}",
            zeroed.faults
        ));
    }
    Ok(())
}

//! Structural comparison of engine and oracle results.
//!
//! Equality is **exact**: every `f64` must match bit-for-bit (fault-free
//! runs never produce `NaN`, so `==` is the right comparison). A
//! divergence names the first observable that differs and, for series,
//! the first divergent interval index and its wall-clock tick — the
//! "first divergent tick" half of a minimal counterexample.

use femux_sim::SimResult;

/// First observed disagreement between the engine and the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Observable that differs (`"costs.cold_starts"`,
    /// `"avg_concurrency"`, `"pod_counts"`, `"scale_events"`, …).
    pub observable: String,
    /// First differing series index, when the observable is a series.
    pub index: Option<usize>,
    /// Simulated time of the first divergence, when derivable from the
    /// index (an interval boundary), in ms.
    pub at_ms: Option<u64>,
    /// Engine-side value, rendered.
    pub engine: String,
    /// Oracle-side value, rendered.
    pub oracle: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} diverges", self.observable)?;
        if let Some(i) = self.index {
            write!(f, " at index {i}")?;
        }
        if let Some(ms) = self.at_ms {
            write!(f, " (t = {ms} ms)")?;
        }
        write!(f, ": engine {} vs oracle {}", self.engine, self.oracle)
    }
}

fn scalar(
    observable: &str,
    engine: impl std::fmt::Debug,
    oracle: impl std::fmt::Debug,
) -> Divergence {
    Divergence {
        observable: observable.to_string(),
        index: None,
        at_ms: None,
        engine: format!("{engine:?}"),
        oracle: format!("{oracle:?}"),
    }
}

/// First index where two equally-long series differ, or a length
/// mismatch. `interval_ms` converts indices to boundary times.
fn series<T: PartialEq + std::fmt::Debug>(
    observable: &str,
    a: &[T],
    b: &[T],
    interval_ms: u64,
) -> Option<Divergence> {
    if a.len() != b.len() {
        return Some(Divergence {
            observable: format!("{observable}.len"),
            index: None,
            at_ms: None,
            engine: a.len().to_string(),
            oracle: b.len().to_string(),
        });
    }
    let i = a.iter().zip(b).position(|(x, y)| x != y)?;
    Some(Divergence {
        observable: observable.to_string(),
        index: Some(i),
        at_ms: Some((i as u64 + 1) * interval_ms),
        engine: format!("{:?}", a[i]),
        oracle: format!("{:?}", b[i]),
    })
}

/// Compares every observable of two results; `None` means exact
/// agreement. `interval_ms` is the scaling interval both ran at (used
/// to timestamp series divergences and reconstruct scale events).
pub fn compare_results(
    engine: &SimResult,
    oracle: &SimResult,
    interval_ms: u64,
) -> Option<Divergence> {
    let e = &engine.costs;
    let o = &oracle.costs;
    if e.invocations != o.invocations {
        return Some(scalar(
            "costs.invocations",
            e.invocations,
            o.invocations,
        ));
    }
    if e.cold_starts != o.cold_starts {
        return Some(scalar(
            "costs.cold_starts",
            e.cold_starts,
            o.cold_starts,
        ));
    }
    if e.cold_start_seconds != o.cold_start_seconds {
        return Some(scalar(
            "costs.cold_start_seconds",
            e.cold_start_seconds,
            o.cold_start_seconds,
        ));
    }
    if e.exec_seconds != o.exec_seconds {
        return Some(scalar(
            "costs.exec_seconds",
            e.exec_seconds,
            o.exec_seconds,
        ));
    }
    if e.service_seconds != o.service_seconds {
        return Some(scalar(
            "costs.service_seconds",
            e.service_seconds,
            o.service_seconds,
        ));
    }
    if e.allocated_gb_seconds != o.allocated_gb_seconds {
        return Some(scalar(
            "costs.allocated_gb_seconds",
            e.allocated_gb_seconds,
            o.allocated_gb_seconds,
        ));
    }
    if e.wasted_gb_seconds != o.wasted_gb_seconds {
        return Some(scalar(
            "costs.wasted_gb_seconds",
            e.wasted_gb_seconds,
            o.wasted_gb_seconds,
        ));
    }
    if engine.initial_pods != oracle.initial_pods {
        return Some(scalar(
            "initial_pods",
            engine.initial_pods,
            oracle.initial_pods,
        ));
    }
    // Cluster observables (per-node occupancy integrals and the full
    // placement/eviction/crash ledger) are compared exactly like every
    // other f64: bit-for-bit.
    if engine.cluster != oracle.cluster {
        return Some(scalar(
            "cluster",
            &engine.cluster,
            &oracle.cluster,
        ));
    }
    series(
        "avg_concurrency",
        &engine.avg_concurrency,
        &oracle.avg_concurrency,
        interval_ms,
    )
    .or_else(|| {
        series(
            "peak_concurrency",
            &engine.peak_concurrency,
            &oracle.peak_concurrency,
            interval_ms,
        )
    })
    .or_else(|| {
        series(
            "arrivals",
            &engine.arrivals,
            &oracle.arrivals,
            interval_ms,
        )
    })
    .or_else(|| {
        series(
            "pod_counts",
            &engine.pod_counts,
            &oracle.pod_counts,
            interval_ms,
        )
    })
    .or_else(|| {
        series(
            "delays_secs",
            &engine.delays_secs,
            &oracle.delays_secs,
            0,
        )
        .map(|mut d| {
            d.at_ms = None; // per-request, not per-interval
            d
        })
    })
    .or_else(|| {
        // Sampled lifecycle spans: identity, exact wait segments, and
        // causal attribution must all agree (the span layer's
        // exact-accounting contract, re-derived independently by the
        // oracle's per-millisecond replay).
        series("spans", &engine.spans, &oracle.spans, 0).map(|mut d| {
            d.at_ms = d.index.and_then(|i| {
                engine
                    .spans
                    .get(i)
                    .or_else(|| oracle.spans.get(i))
                    .map(|s| s.arrival_ms)
            });
            d
        })
    })
    .or_else(|| {
        // Derived observable: the reconstructed scale-event timeline.
        let ee = engine.scale_events(interval_ms);
        let oe = oracle.scale_events(interval_ms);
        if ee != oe {
            let i = ee
                .iter()
                .zip(&oe)
                .position(|(x, y)| x != y)
                .unwrap_or_else(|| ee.len().min(oe.len()));
            Some(Divergence {
                observable: "scale_events".to_string(),
                index: Some(i),
                at_ms: ee
                    .get(i)
                    .or_else(|| oe.get(i))
                    .map(|ev| ev.at_ms),
                engine: format!("{:?}", ee.get(i)),
                oracle: format!("{:?}", oe.get(i)),
            })
        } else {
            None
        }
    })
}

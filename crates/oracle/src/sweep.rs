//! Seeded, shrinking property runner.
//!
//! [`run_sweep`] drives synthetic IBM and Azure application streams —
//! plus a fixed battery of adversarial hand-rolled apps (same-ms
//! bursts, boundary-time arrivals, tick-crossing durations,
//! invocations past the span end, zero-duration requests, min-scale
//! floors) — through [`femux_sim::simulate_app`],
//! [`crate::reference_simulate`], and the frozen pre-event-queue
//! per-tick engine [`femux_sim::simulate_app_tickwise`] under every
//! policy × interval combination, checks exact three-way agreement and
//! the metamorphic [`crate::invariants`], and shrinks any divergent
//! case to a minimal counterexample (seed + app + first divergent
//! tick).
//!
//! Cases run through [`femux_par::par_map`], which preserves input
//! order, so [`SweepReport::render`] is byte-identical at any
//! `FEMUX_THREADS` setting.

use crate::diff::{compare_results, Divergence};
use crate::engine::reference_simulate;
use crate::invariants;
use femux_sim::{
    simulate_app, simulate_app_tickwise, ClusterConfig, FixedPolicy,
    ForecastPolicy, KeepAlivePolicy, KnativeDefaultPolicy, NodeConfig,
    PlacementKind, ScalingPolicy, SimConfig, SimResult, ZeroPolicy,
};
use femux_stats::rng::Rng;
use femux_trace::types::{
    AppConfig, AppId, AppRecord, Invocation, WorkloadKind,
};

/// A scaling policy to sweep, nameable and rebuildable (policies are
/// stateful, so every simulation gets a fresh instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// 10-minute keep-alive (the paper's normalization baseline).
    KeepAlive,
    /// Knative's default concurrency-tracking autoscaler.
    KnativeDefault,
    /// Forecast-driven scaling with the Knative moving average.
    Forecast,
    /// A constant pod count.
    Fixed(usize),
    /// Never holds pods: every request is a cold start.
    Zero,
}

impl PolicyKind {
    /// The sweep's default policy battery.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::KeepAlive,
        PolicyKind::KnativeDefault,
        PolicyKind::Forecast,
        PolicyKind::Fixed(2),
        PolicyKind::Zero,
    ];

    /// Builds a fresh policy instance.
    pub fn build(self) -> Box<dyn ScalingPolicy> {
        match self {
            PolicyKind::KeepAlive => {
                Box::new(KeepAlivePolicy::ten_minutes())
            }
            PolicyKind::KnativeDefault => Box::new(KnativeDefaultPolicy),
            PolicyKind::Forecast => Box::new(ForecastPolicy::new(
                Box::new(
                    femux_forecast::simple::MovingAverageForecaster::knative(),
                ),
            )),
            PolicyKind::Fixed(n) => Box::new(FixedPolicy(n)),
            PolicyKind::Zero => Box::new(ZeroPolicy),
        }
    }

    /// Stable label used in reports.
    pub fn label(self) -> String {
        match self {
            PolicyKind::KeepAlive => "keep-alive-600s".to_string(),
            PolicyKind::KnativeDefault => "knative-default".to_string(),
            PolicyKind::Forecast => "forecast-ma".to_string(),
            PolicyKind::Fixed(n) => format!("fixed-{n}"),
            PolicyKind::Zero => "zero".to_string(),
        }
    }
}

/// Cluster configurations swept alongside the free-floating default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterVariant {
    /// No cluster layer: the historical free-floating pod accounting.
    Free,
    /// A single unbounded node: placement always succeeds, so every
    /// non-cluster observable must stay byte-identical to [`Free`]
    /// (the backward-compat gate).
    ///
    /// [`Free`]: ClusterVariant::Free
    Unbounded,
    /// Two small nodes under best-fit: bursty apps hit placement
    /// denials, evictions, and saturated overcommits.
    Tight,
    /// The same two small nodes under round-robin placement.
    TightRoundRobin,
}

impl ClusterVariant {
    /// The variants that actually install a cluster.
    pub const CLUSTERED: [ClusterVariant; 3] = [
        ClusterVariant::Unbounded,
        ClusterVariant::Tight,
        ClusterVariant::TightRoundRobin,
    ];

    /// The [`SimConfig::cluster`] value for this variant.
    pub fn config(self) -> Option<ClusterConfig> {
        let tight = || NodeConfig {
            cpu_milli: u64::MAX,
            mem_mb: 600,
        };
        match self {
            ClusterVariant::Free => None,
            ClusterVariant::Unbounded => {
                Some(ClusterConfig::unbounded())
            }
            ClusterVariant::Tight => {
                Some(ClusterConfig::uniform(2, tight()))
            }
            ClusterVariant::TightRoundRobin => {
                let mut cc = ClusterConfig::uniform(2, tight());
                cc.placement = PlacementKind::RoundRobin;
                Some(cc)
            }
        }
    }

    /// Stable label used in case names.
    pub fn label(self) -> &'static str {
        match self {
            ClusterVariant::Free => "free",
            ClusterVariant::Unbounded => "cluster-unbounded",
            ClusterVariant::Tight => "cluster-tight",
            ClusterVariant::TightRoundRobin => "cluster-tight-rr",
        }
    }
}

/// Sweep parameters. The same config and seed always produce the same
/// report.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed; forked into fleet generation and fuzz apps.
    pub seed: u64,
    /// Applications sampled from each synthetic source (IBM, Azure).
    pub apps_per_source: usize,
    /// Simulated span per case in ms. Synthetic fleets generate days of
    /// traffic; the replay clamp makes a short window legal and also
    /// exercises the clamp itself.
    pub span_ms: u64,
    /// Scaling intervals to sweep (the evaluation uses 60 s and 10 s).
    pub intervals: Vec<u64>,
    /// Cap on successful shrink reductions per counterexample.
    pub max_shrink_rounds: usize,
}

impl SweepConfig {
    /// A configuration small enough for tier-1 (debug) test runs.
    pub fn quick(seed: u64) -> Self {
        SweepConfig {
            seed,
            apps_per_source: 3,
            span_ms: 130_000,
            intervals: vec![60_000, 10_000],
            max_shrink_rounds: 40,
        }
    }

    /// The release-mode CI sweep.
    pub fn thorough(seed: u64) -> Self {
        SweepConfig {
            seed,
            apps_per_source: 12,
            span_ms: 310_000,
            intervals: vec![60_000, 10_000],
            max_shrink_rounds: 200,
        }
    }
}

/// A shrunk divergent case: everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Master seed of the sweep that found it.
    pub seed: u64,
    /// Stable case label (`source/app-id/policy/interval`).
    pub case: String,
    /// Policy under which the engines disagree.
    pub policy: PolicyKind,
    /// Scaling interval in ms.
    pub interval_ms: u64,
    /// Simulated span in ms (after shrinking).
    pub span_ms: u64,
    /// The minimized application.
    pub app: AppRecord,
    /// First divergent observable/tick.
    pub divergence: Divergence,
    /// Successful reductions applied by the shrinker.
    pub shrink_rounds: usize,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "counterexample [{}] seed={} policy={} interval={}ms \
             span={}ms (shrunk {} steps)",
            self.case,
            self.seed,
            self.policy.label(),
            self.interval_ms,
            self.span_ms,
            self.shrink_rounds,
        )?;
        writeln!(
            f,
            "  app {} cfg={:?} cold={}ms mem={}MB invocations={}",
            self.app.id,
            self.app.config,
            self.app.cold_start_ms,
            self.app.mem_used_mb,
            self.app.invocations.len(),
        )?;
        for inv in self.app.invocations.iter().take(20) {
            writeln!(
                f,
                "    t={}ms dur={}ms",
                inv.start_ms, inv.duration_ms
            )?;
        }
        if self.app.invocations.len() > 20 {
            writeln!(
                f,
                "    … {} more",
                self.app.invocations.len() - 20
            )?;
        }
        write!(f, "  {}", self.divergence)
    }
}

/// Outcome of a full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Master seed.
    pub seed: u64,
    /// Engine-vs-oracle cases executed.
    pub cases: usize,
    /// Individual invariant checks executed.
    pub invariant_checks: usize,
    /// Shrunk divergences, in case order.
    pub counterexamples: Vec<Counterexample>,
    /// Invariant violations (`case: message`), in case order.
    pub invariant_failures: Vec<String>,
}

impl SweepReport {
    /// True when every case agreed and every invariant held.
    pub fn is_clean(&self) -> bool {
        self.counterexamples.is_empty()
            && self.invariant_failures.is_empty()
    }

    /// Deterministic human-readable summary (byte-identical across
    /// thread counts).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "oracle sweep: seed={} cases={} invariant-checks={} \
             divergences={} invariant-failures={}",
            self.seed,
            self.cases,
            self.invariant_checks,
            self.counterexamples.len(),
            self.invariant_failures.len(),
        );
        for cex in &self.counterexamples {
            let _ = writeln!(out, "{cex}");
        }
        for fail in &self.invariant_failures {
            let _ = writeln!(out, "invariant violated: {fail}");
        }
        if self.is_clean() {
            let _ = writeln!(out, "all cases agree exactly");
        }
        out
    }
}

fn sim_config(interval_ms: u64, cluster: ClusterVariant) -> SimConfig {
    SimConfig {
        interval_ms,
        record_delays: true,
        // Sample every invocation's lifecycle span: the per-ms oracle
        // re-derives each span (segments, pod identity, wait cause)
        // independently and `compare_results` checks them exactly. The
        // frozen tickwise twin predates the layer, so its comparisons
        // strip spans — which also re-asserts that enabling the layer
        // perturbs no other observable.
        spans: Some(femux_obs::span::SpanConfig::all(
            0x5EED ^ interval_ms,
        )),
        cluster: cluster.config(),
        ..SimConfig::default()
    }
}

/// The engine result with its span table stripped, for comparison
/// against the span-less tickwise reference.
fn sans_spans(res: &SimResult) -> SimResult {
    let mut res = res.clone();
    res.spans = Vec::new();
    res
}

/// Runs one case through all three engines; `None` means exact
/// agreement (engine vs per-ms oracle, then engine vs the frozen
/// per-tick reference).
fn diverges(
    app: &AppRecord,
    policy: PolicyKind,
    interval_ms: u64,
    span_ms: u64,
    cluster: ClusterVariant,
) -> Option<Divergence> {
    let cfg = sim_config(interval_ms, cluster);
    let engine =
        simulate_app(app, policy.build().as_mut(), span_ms, &cfg);
    let oracle =
        reference_simulate(app, policy.build().as_mut(), span_ms, &cfg);
    compare_results(&engine, &oracle, interval_ms).or_else(|| {
        let tickwise = simulate_app_tickwise(
            app,
            policy.build().as_mut(),
            span_ms,
            &cfg,
        );
        compare_results(&sans_spans(&engine), &tickwise, interval_ms)
    })
}

/// ddmin-lite: removes invocation chunks, then halves durations, then
/// halves the span, keeping each reduction only while the divergence
/// persists. Deterministic and bounded by `max_rounds` successful
/// reductions.
fn shrink(
    mut app: AppRecord,
    policy: PolicyKind,
    interval_ms: u64,
    mut span_ms: u64,
    max_rounds: usize,
    cluster: ClusterVariant,
) -> (AppRecord, u64, Divergence, usize) {
    let mut divergence =
        diverges(&app, policy, interval_ms, span_ms, cluster)
            .expect("shrink requires a divergent case");
    let mut rounds = 0;

    // Invocation-chunk removal, halving the chunk size each pass.
    let mut chunk = app.invocations.len().div_ceil(2).max(1);
    while chunk >= 1 && rounds < max_rounds {
        let mut i = 0;
        let mut removed_any = false;
        while i < app.invocations.len() && rounds < max_rounds {
            let mut candidate = app.clone();
            let hi = (i + chunk).min(candidate.invocations.len());
            candidate.invocations.drain(i..hi);
            if let Some(d) = diverges(
                &candidate, policy, interval_ms, span_ms, cluster,
            ) {
                app = candidate;
                divergence = d;
                rounds += 1;
                removed_any = true;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Duration halving (keeps arrival pattern, simplifies overlap).
    let mut changed = true;
    while changed && rounds < max_rounds {
        changed = false;
        for j in 0..app.invocations.len() {
            if app.invocations[j].duration_ms == 0 {
                continue;
            }
            let mut candidate = app.clone();
            candidate.invocations[j].duration_ms /= 2;
            if let Some(d) = diverges(
                &candidate, policy, interval_ms, span_ms, cluster,
            ) {
                app = candidate;
                divergence = d;
                rounds += 1;
                changed = true;
                if rounds >= max_rounds {
                    break;
                }
            }
        }
    }

    // Span halving, floored at one interval.
    while span_ms / 2 >= interval_ms && rounds < max_rounds {
        let candidate_span = span_ms / 2;
        match diverges(&app, policy, interval_ms, candidate_span, cluster)
        {
            Some(d) => {
                span_ms = candidate_span;
                divergence = d;
                rounds += 1;
            }
            None => break,
        }
    }

    (app, span_ms, divergence, rounds)
}

fn adversarial_app(id: u32, which: usize, span_ms: u64) -> AppRecord {
    let mut config = AppConfig::default();
    let mut invocations = Vec::new();
    match which {
        // Same-millisecond burst at concurrency 100: must queue on the
        // single warming pod, not fan out one pod per request.
        0 => {
            for _ in 0..8 {
                invocations.push(Invocation {
                    start_ms: 5_000,
                    duration_ms: 2_500,
                    delay_ms: 0,
                });
            }
        }
        // Arrivals exactly on tick boundaries (tick runs before the
        // same-ms arrival) and at the span edge.
        1 => {
            for k in 1..=4u64 {
                invocations.push(Invocation {
                    start_ms: k * 10_000,
                    duration_ms: 900,
                    delay_ms: 0,
                });
            }
            invocations.push(Invocation {
                start_ms: span_ms - 1,
                duration_ms: 5_000,
                delay_ms: 0,
            });
            invocations.push(Invocation {
                start_ms: span_ms, // clamped out of the replay
                duration_ms: 5_000,
                delay_ms: 0,
            });
        }
        // Tick-crossing durations at concurrency 1: every overlap is a
        // new pod, completions straddle interval closes.
        2 => {
            config.concurrency = 1;
            for k in 0..6u64 {
                invocations.push(Invocation {
                    start_ms: 2_000 + k * 9_500,
                    duration_ms: 25_000,
                    delay_ms: 0,
                });
            }
        }
        // Zero-duration requests, some sharing a millisecond with
        // ordinary work (exercise the lazy completion pop).
        3 => {
            config.concurrency = 2;
            for k in 0..5u64 {
                invocations.push(Invocation {
                    start_ms: 3_000 + k * 701,
                    duration_ms: 0,
                    delay_ms: 0,
                });
                invocations.push(Invocation {
                    start_ms: 3_000 + k * 701,
                    duration_ms: 1_300,
                    delay_ms: 0,
                });
            }
        }
        // Min-scale floor with sparse traffic: the floor must hold and
        // no phantom 0 → min_scale event may appear.
        4 => {
            config.min_scale = 2;
            invocations.push(Invocation {
                start_ms: 15_000,
                duration_ms: 400,
                delay_ms: 0,
            });
            invocations.push(Invocation {
                start_ms: 95_000,
                duration_ms: 400,
                delay_ms: 0,
            });
        }
        // Work that overhangs the span end: admitted before the cut,
        // finishes in the drain.
        _ => {
            invocations.push(Invocation {
                start_ms: span_ms.saturating_sub(500),
                duration_ms: 30_000,
                delay_ms: 0,
            });
            invocations.push(Invocation {
                start_ms: span_ms.saturating_sub(200),
                duration_ms: 30_000,
                delay_ms: 0,
            });
        }
    }
    AppRecord {
        id: AppId(id),
        kind: WorkloadKind::Application,
        config,
        mem_used_mb: 150,
        cold_start_ms: 808,
        invocations,
    }
}

fn fuzz_app(id: u32, rng: &mut Rng, span_ms: u64) -> AppRecord {
    let config = AppConfig {
        concurrency: [1u32, 2, 100][rng.index(3)],
        min_scale: rng.below(3) as u32,
        ..AppConfig::default()
    };
    let n = 5 + rng.index(40);
    let mut invocations: Vec<Invocation> = (0..n)
        .map(|_| Invocation {
            // Deliberately up to 20 % past the span to hit the clamp.
            start_ms: rng.below(span_ms + span_ms / 5),
            duration_ms: [0u32, 1, 750, 8_000, 45_000][rng.index(5)],
            delay_ms: 0,
        })
        .collect();
    invocations.sort_by_key(|inv| inv.start_ms);
    AppRecord {
        id: AppId(id),
        kind: WorkloadKind::Application,
        config,
        mem_used_mb: 100 + rng.below(400) as u32,
        cold_start_ms: [250u32, 808, 4_000][rng.index(3)],
        invocations,
    }
}

/// Deterministically samples `count` non-empty apps spread across a
/// fleet.
fn sample_apps(apps: &[AppRecord], count: usize) -> Vec<AppRecord> {
    let candidates: Vec<&AppRecord> =
        apps.iter().filter(|a| !a.invocations.is_empty()).collect();
    if candidates.is_empty() || count == 0 {
        return Vec::new();
    }
    let step = (candidates.len() / count).max(1);
    candidates
        .iter()
        .step_by(step)
        .take(count)
        .map(|a| (*a).clone())
        .collect()
}

struct Case {
    label: String,
    app: AppRecord,
    policy: PolicyKind,
    interval_ms: u64,
    cluster: ClusterVariant,
}

#[allow(clippy::type_complexity)]
struct CaseOutcome {
    divergence: Option<(
        String,
        PolicyKind,
        u64,
        AppRecord,
        ClusterVariant,
        Divergence,
    )>,
    invariant_failures: Vec<String>,
    invariant_checks: usize,
}

fn run_case(case: &Case, cfg: &SweepConfig) -> CaseOutcome {
    let sim_cfg = sim_config(case.interval_ms, case.cluster);
    let span_ms = cfg.span_ms;
    let engine = simulate_app(
        &case.app,
        case.policy.build().as_mut(),
        span_ms,
        &sim_cfg,
    );
    let oracle = reference_simulate(
        &case.app,
        case.policy.build().as_mut(),
        span_ms,
        &sim_cfg,
    );
    let divergence = compare_results(&engine, &oracle, case.interval_ms)
        .map(|d| {
            (
                case.label.clone(),
                case.policy,
                case.interval_ms,
                case.app.clone(),
                case.cluster,
                d,
            )
        })
        .or_else(|| {
            // Second reference: the frozen pre-event-queue per-tick
            // engine must agree byte-exactly too.
            let tickwise = simulate_app_tickwise(
                &case.app,
                case.policy.build().as_mut(),
                span_ms,
                &sim_cfg,
            );
            compare_results(
                &sans_spans(&engine),
                &tickwise,
                case.interval_ms,
            )
            .map(
                |d| {
                    (
                        format!("{} [tickwise]", case.label),
                        case.policy,
                        case.interval_ms,
                        case.app.clone(),
                        case.cluster,
                        d,
                    )
                },
            )
        });

    let mut failures = Vec::new();
    let mut checks = 0;
    let mut record =
        |name: &str, res: Result<(), String>, checks: &mut usize| {
            *checks += 1;
            if let Err(msg) = res {
                failures.push(format!("{}: {name}: {msg}", case.label));
            }
        };

    record(
        "conservation",
        invariants::check_conservation(&case.app, &engine, true),
        &mut checks,
    );
    record(
        "min-scale-floor",
        invariants::check_min_scale_floor(&case.app, &engine, &sim_cfg),
        &mut checks,
    );
    record(
        "cluster-accounting",
        invariants::check_cluster_accounting(&case.app, &engine),
        &mut checks,
    );

    // The engine-vs-engine metamorphic checks re-simulate, so gate the
    // expensive ones to one policy each (they do not depend on the
    // swept policy beyond what each check prescribes).
    let make: Box<dyn Fn() -> Box<dyn ScalingPolicy>> = {
        let kind = case.policy;
        Box::new(move || kind.build())
    };
    match case.policy {
        PolicyKind::KeepAlive => {
            record(
                "time-shift",
                invariants::check_time_shift(
                    &case.app, span_ms, &sim_cfg, &make, 2,
                ),
                &mut checks,
            );
            record(
                "id-shift",
                invariants::check_id_shift(
                    &case.app, span_ms, &sim_cfg, &make,
                ),
                &mut checks,
            );
        }
        PolicyKind::KnativeDefault => {
            record(
                "rate0-inert",
                invariants::check_rate0_inert(
                    &case.app, span_ms, &sim_cfg, &make, cfg.seed,
                ),
                &mut checks,
            );
        }
        PolicyKind::Forecast => {
            record(
                "headroom-monotone",
                invariants::check_headroom_monotone(
                    &case.app, span_ms, &sim_cfg, 1, 4,
                ),
                &mut checks,
            );
        }
        PolicyKind::Zero => {
            record(
                "time-shift",
                invariants::check_time_shift(
                    &case.app, span_ms, &sim_cfg, &make, 1,
                ),
                &mut checks,
            );
        }
        PolicyKind::Fixed(_) => {
            // Backward-compat gate: an infinite-capacity single-node
            // cluster must be observationally transparent.
            if case.cluster == ClusterVariant::Free {
                record(
                    "unbounded-cluster-transparent",
                    invariants::check_unbounded_cluster_transparent(
                        &case.app, span_ms, &sim_cfg, &make,
                    ),
                    &mut checks,
                );
            }
        }
    }

    CaseOutcome {
        divergence,
        invariant_failures: failures,
        invariant_checks: checks,
    }
}

/// Runs the full sweep described by `cfg`.
pub fn run_sweep(cfg: &SweepConfig) -> SweepReport {
    let mut apps: Vec<(String, AppRecord)> = Vec::new();

    let ibm = femux_trace::synth::ibm::generate(
        &femux_trace::synth::ibm::IbmFleetConfig::small(cfg.seed),
    );
    for app in sample_apps(&ibm.apps, cfg.apps_per_source) {
        apps.push((format!("ibm/{}", app.id), app));
    }

    let azure = femux_trace::synth::azure::generate(
        &femux_trace::synth::azure::AzureFleetConfig::small(
            cfg.seed ^ 0xA2E,
        ),
    )
    .to_trace();
    for app in sample_apps(&azure.apps, cfg.apps_per_source) {
        apps.push((format!("azure/{}", app.id), app));
    }

    for which in 0..6 {
        let app = adversarial_app(90_000 + which as u32, which, cfg.span_ms);
        apps.push((format!("adversarial/{which}"), app));
    }

    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xF0_22);
    for i in 0..4u32 {
        let app = fuzz_app(95_000 + i, &mut rng, cfg.span_ms);
        apps.push((format!("fuzz/{i}"), app));
    }

    let mut cases = Vec::new();
    for (label, app) in &apps {
        for &policy in &PolicyKind::ALL {
            for &interval_ms in &cfg.intervals {
                cases.push(Case {
                    label: format!(
                        "{label}/{}/{}ms",
                        policy.label(),
                        interval_ms
                    ),
                    app: app.clone(),
                    policy,
                    interval_ms,
                    cluster: ClusterVariant::Free,
                });
            }
        }
    }

    // Cluster variants ride on the adversarial + fuzz apps (the ones
    // that exercise bursts, floors, and span edges — exactly what
    // placement, eviction, and saturation react to), under three
    // policies at the primary interval. Three-way exact agreement is
    // checked for these cases like any other.
    let cluster_policies = [
        PolicyKind::KeepAlive,
        PolicyKind::KnativeDefault,
        PolicyKind::Fixed(2),
    ];
    let primary_interval = cfg.intervals[0];
    for (label, app) in apps.iter().filter(|(l, _)| {
        l.starts_with("adversarial/") || l.starts_with("fuzz/")
    }) {
        for &cluster in &ClusterVariant::CLUSTERED {
            for &policy in &cluster_policies {
                cases.push(Case {
                    label: format!(
                        "{label}/{}/{}ms/{}",
                        policy.label(),
                        primary_interval,
                        cluster.label()
                    ),
                    app: app.clone(),
                    policy,
                    interval_ms: primary_interval,
                    cluster,
                });
            }
        }
    }

    // Order-preserving parallel map: the report is identical at any
    // FEMUX_THREADS setting.
    let outcomes =
        femux_par::par_map(&cases, |_i, case| run_case(case, cfg));

    let mut report = SweepReport {
        seed: cfg.seed,
        cases: cases.len(),
        invariant_checks: 0,
        counterexamples: Vec::new(),
        invariant_failures: Vec::new(),
    };
    for outcome in outcomes {
        report.invariant_checks += outcome.invariant_checks;
        report
            .invariant_failures
            .extend(outcome.invariant_failures);
        if let Some((label, policy, interval_ms, app, cluster, _)) =
            outcome.divergence
        {
            let (app, span_ms, divergence, shrink_rounds) = shrink(
                app,
                policy,
                interval_ms,
                cfg.span_ms,
                cfg.max_shrink_rounds,
                cluster,
            );
            report.counterexamples.push(Counterexample {
                seed: cfg.seed,
                case: label,
                policy,
                interval_ms,
                span_ms,
                app,
                divergence,
                shrink_rounds,
            });
        }
    }
    report
}

//! The per-millisecond reference simulator.
//!
//! This is the "deliberately slow, obviously correct" half of the
//! oracle: a straight-line state machine that advances virtual time one
//! millisecond at a time and re-derives every observable of
//! [`femux_sim::simulate_app`] without sharing its event-driven
//! structure (no binary heap, no piecewise trapezoid integration, no
//! partition of the arrival stream). All event times in the model are
//! integer milliseconds, so stepping every millisecond loses nothing.
//!
//! The semantics implemented here are the pinned engine contract (see
//! the `femux_sim::engine` module docs; both files must change
//! together):
//!
//! 1. At each millisecond, completed requests leave the in-flight pool
//!    first.
//! 2. If the millisecond is a scaling boundary within the span, the
//!    interval closes (average = accrued concurrency-ms / interval
//!    length), the policy decides, and the decision is applied — scale
//!    ups under the AWS rate limit, scale downs never below in-flight
//!    need, protected pods, or the min-scale floor, evicting
//!    shortest-warm pods first.
//! 3. Arrivals at that millisecond are admitted in input order: warm
//!    capacity first (counting only requests *executing* on warm pods),
//!    then queueing on the soonest-warm joinable cold-start pod with
//!    spare per-pod concurrency, else spawning a fresh pod for the full
//!    cold-start latency. Queued admissions count as cold starts and
//!    pay the pod's remaining warm-up.
//! 4. Invocations at or after `span_ms` are never replayed; a partial
//!    tail interval is closed with a pro-rated divisor; pods stay
//!    allocated until the last admitted request finishes.
//!
//! Exact `f64` agreement holds because concurrency-ms and pod-ms are
//! integer-valued (accumulated here in `u64`, exact in `f64` below
//! 2^53) and every inexact term (`/ 1000.0` seconds conversions) is
//! added in the same per-arrival order as the production engine.

use femux_obs::span::{
    InvocationSpan, PodOrigin, SpanSampler, WaitCause,
};
use femux_rum::CostRecord;
use femux_sim::{
    Cluster, PodRequest, PolicyCtx, ReleaseReason, ScalingPolicy,
    SimConfig, SimResult,
};
use femux_trace::types::AppRecord;

/// Reference pod state; mirrors the engine's pod fields one-to-one.
#[derive(Debug, Clone, Copy)]
struct RefPod {
    /// Stable identity, assigned in spawn order exactly as the engine
    /// assigns its uids (min-scale pods first, then every reactive or
    /// proactive spawn in chronological order), so sampled spans can
    /// name the same pod on both sides.
    uid: u64,
    /// How this pod came to exist; feeds sampled spans' wait causes.
    origin: PodOrigin,
    warm_at: u64,
    keep_until: u64,
    /// Requests pinned to this pod while it warms.
    queued: u64,
    /// Whether arrivals may queue on this pod while it warms (true only
    /// for reactively spawned cold-start pods).
    joinable: bool,
}

/// Simulates one application by brute-force millisecond stepping.
///
/// Must produce a [`SimResult`] equal (exact `f64` equality, field by
/// field) to `femux_sim::simulate_app(app, policy, span_ms, cfg)` for
/// every fault-free configuration.
///
/// # Panics
///
/// Panics if `cfg.faults` is set: the oracle contract covers fault-free
/// runs only (rate-0 inertness is checked engine-vs-engine in
/// [`crate::invariants`]).
pub fn reference_simulate(
    app: &AppRecord,
    policy: &mut dyn ScalingPolicy,
    span_ms: u64,
    cfg: &SimConfig,
) -> SimResult {
    assert!(
        cfg.faults.is_none(),
        "the oracle models fault-free runs only"
    );
    let cold_ms = u64::from(cfg.cold_start_ms.unwrap_or(app.cold_start_ms));
    let min_scale = if cfg.respect_min_scale {
        app.config.min_scale as usize
    } else {
        0
    };
    let concurrency = u64::from(app.config.concurrency.max(1));
    let mem_gb = app.mem_used_mb as f64 / 1_024.0;
    let interval = cfg.interval_ms;

    // Cluster layer, re-derived independently: same placement policy,
    // same uid stream, but driven by the per-ms loop. The occupancy
    // integral accrues one millisecond at a time (step 6), so exactness
    // is trivial here and the engine's segment-based accrual is the
    // thing under test.
    let mut cluster = cfg.cluster.as_ref().map(|cc| {
        Cluster::new(
            cc,
            PodRequest {
                cpu_milli: app.config.cpu_milli as u64,
                mem_mb: app.mem_used_mb as u64,
            },
        )
    });
    let mut pods: Vec<RefPod> = Vec::with_capacity(min_scale);
    for uid in 0..min_scale as u64 {
        if let Some(cl) = cluster.as_mut() {
            if cl.try_place(uid).is_none() {
                cl.placement_denials += 1;
                continue;
            }
        }
        pods.push(RefPod {
            uid,
            origin: PodOrigin::MinScale,
            warm_at: 0,
            keep_until: 0,
            queued: 0,
            joinable: false,
        });
    }
    let placed_initial = pods.len();
    let mut next_uid = min_scale as u64;
    // In-flight completion times (queued + executing), unsorted.
    let mut inflight: Vec<u64> = Vec::new();

    // Integer integrals, exact in f64 below 2^53.
    let mut conc_ms: u64 = 0;
    let mut pod_ms: u64 = 0;
    let mut peak: f64 = 0.0;
    let mut arrivals_in_interval: f64 = 0.0;

    let mut avg_concurrency: Vec<f64> = Vec::new();
    let mut peak_concurrency: Vec<f64> = Vec::new();
    let mut arrivals: Vec<f64> = Vec::new();
    let mut pod_counts: Vec<usize> = Vec::new();
    let mut costs = CostRecord::default();
    let mut delays: Vec<f64> = Vec::new();

    // Independent re-derivation of the span layer: same seeded sampler,
    // same `(app, replay-index)` key, but causes reconstructed from the
    // reference pod vector rather than the engine's event-queue state.
    let app_id = app.id.0 as u64;
    let sampler = cfg.spans.as_ref().and_then(SpanSampler::new);
    let mut spans: Vec<InvocationSpan> = Vec::new();

    // AWS-style proactive rate limiting (mirrors the engine's counter,
    // including its minute-0 initialization).
    let mut spawn_minute: u64 = 0;
    let mut spawns_this_minute: usize = 0;

    // `span_ms` bounds the replay; invocations are time-sorted.
    let n_replay = app
        .invocations
        .partition_point(|i| i.start_ms < span_ms);
    let replay = &app.invocations[..n_replay];

    // Cached minimum completion time so the per-ms loop only scans the
    // pool when something actually completes (a zero-duration warm
    // request can complete within its own arrival millisecond, and the
    // production engine pops it before the *next* event observes the
    // pool — the pop-checks below sit at exactly those points).
    let mut next_end: u64 = u64::MAX;
    macro_rules! pop_completions {
        ($t:expr) => {
            if next_end <= $t {
                inflight.retain(|&end| end > $t);
                next_end =
                    inflight.iter().copied().min().unwrap_or(u64::MAX);
            }
        };
    }

    let mut idx = 0usize;
    let mut next_tick = interval;
    let mut last_close: u64 = 0;
    let mut t: u64 = 0;
    loop {
        // 1. Completions at exactly t leave the pool before anything
        //    else observes it.
        pop_completions!(t);

        // 2. Scaling boundary within the span: close the interval,
        //    consult the policy, apply the decision.
        if t == next_tick && t <= span_ms {
            avg_concurrency.push(conc_ms as f64 / interval as f64);
            peak_concurrency.push(peak);
            arrivals.push(arrivals_in_interval);
            conc_ms = 0;
            peak = inflight.len() as f64;
            arrivals_in_interval = 0.0;
            last_close = t;

            let ctx = PolicyCtx {
                now_ms: t,
                interval_ms: interval,
                avg_concurrency: &avg_concurrency,
                peak_concurrency: &peak_concurrency,
                arrivals: &arrivals,
                config: &app.config,
                current_pods: pods.len(),
                inflight: inflight.len(),
            };
            let mut target = policy.target_pods(&ctx);
            if cfg.respect_min_scale {
                target = target.max(min_scale);
            }
            apply_target(
                &mut pods,
                &inflight,
                target,
                t,
                cold_ms,
                concurrency,
                min_scale,
                cfg,
                &mut spawn_minute,
                &mut spawns_this_minute,
                &mut next_uid,
                cluster.as_mut(),
            );
            pod_counts.push(pods.len());
            next_tick += interval;
        }

        // 3. A span that is not a whole number of intervals closes its
        //    partial tail with a pro-rated divisor (no policy decision,
        //    no pod-count sample).
        if t == span_ms && last_close < span_ms {
            let tail_ms = (span_ms - last_close) as f64;
            avg_concurrency.push(conc_ms as f64 / tail_ms);
            peak_concurrency.push(peak);
            arrivals.push(arrivals_in_interval);
            conc_ms = 0;
            peak = inflight.len() as f64;
            arrivals_in_interval = 0.0;
            last_close = span_ms;
        }

        // 4. Arrivals at t, in input order. Each admission re-checks
        //    completions first: the engine's lazy `advance(t)` pops a
        //    same-millisecond zero-duration completion before the next
        //    arrival observes the pool.
        while idx < replay.len() && replay[idx].start_ms == t {
            pop_completions!(t);
            let inv = replay[idx];
            let index = idx as u64;
            idx += 1;
            arrivals_in_interval += 1.0;
            let interval_end = next_tick.min(span_ms);
            let dur = u64::from(inv.duration_ms);
            let warm_pods =
                pods.iter().filter(|p| p.warm_at <= t).count() as u64;
            let warm = warm_pods * concurrency;
            let waiting: u64 = pods
                .iter()
                .filter(|p| p.warm_at > t)
                .map(|p| p.queued)
                .sum();
            let executing = inflight.len() as u64 - waiting;
            let sampled = sampler
                .as_ref()
                .is_some_and(|s| s.sample(app_id, index));
            let mut cause: Option<WaitCause> = None;
            let delay_ms = if executing < warm {
                if sampled {
                    cause = Some(warm_origin_mix(&pods, t));
                }
                0u64
            } else if let Some(slot) = joinable_pod(&pods, t, concurrency)
            {
                // Queue on the soonest-warm cold-start pod.
                let pod = &mut pods[slot];
                let wait = pod.warm_at - t;
                let end = pod.warm_at + dur;
                pod.queued += 1;
                pod.keep_until =
                    pod.keep_until.max(interval_end).max(end);
                if sampled {
                    cause = Some(WaitCause::JoinedWarmingPod {
                        pod_uid: pod.uid,
                        origin: pod.origin,
                    });
                }
                costs.cold_starts += 1;
                costs.cold_start_seconds += wait as f64 / 1_000.0;
                wait
            } else {
                // Cluster room for the spawn: direct placement, else
                // eviction of the minimum-`(warm_at, uid)` warm
                // (`warm_at <= t`) unprotected (`keep_until <= t`)
                // pod, else saturation — full cold penalty, no pod —
                // mirroring the engine's `place_reactive` exactly.
                let mut evicted: Option<(u64, usize)> = None;
                let mut saturated = false;
                if let Some(cl) = cluster.as_mut() {
                    if cl.try_place(next_uid).is_none() {
                        let mut victim: Option<(u64, u64, usize)> = None;
                        for (i, p) in pods.iter().enumerate() {
                            if p.warm_at <= t && p.keep_until <= t {
                                let key = (p.warm_at, p.uid);
                                if victim
                                    .is_none_or(|(w, u, _)| key < (w, u))
                                {
                                    victim =
                                        Some((p.warm_at, p.uid, i));
                                }
                            }
                        }
                        match victim {
                            None => {
                                cl.saturated_overcommits += 1;
                                saturated = true;
                            }
                            Some((_, victim_uid, victim_idx)) => {
                                let node = cl.release(
                                    victim_uid,
                                    ReleaseReason::Evicted,
                                );
                                pods.remove(victim_idx);
                                let placed = cl.try_place(next_uid);
                                debug_assert_eq!(
                                    placed,
                                    Some(node),
                                    "eviction frees the victim's node"
                                );
                                evicted = Some((victim_uid, node));
                            }
                        }
                    }
                }
                if saturated {
                    if sampled {
                        cause = Some(WaitCause::Saturated);
                    }
                } else {
                    // Spawn a fresh pod for the full cold start.
                    let end = t + cold_ms + dur;
                    let uid = next_uid;
                    next_uid += 1;
                    pods.push(RefPod {
                        uid,
                        origin: PodOrigin::Reactive { at_ms: t },
                        warm_at: t + cold_ms,
                        keep_until: interval_end.max(end),
                        queued: 1,
                        joinable: true,
                    });
                    if sampled {
                        cause = Some(match evicted {
                            Some((victim_pod, node)) => {
                                WaitCause::Evicted {
                                    node: node as u64,
                                    victim_pod,
                                }
                            }
                            None => {
                                WaitCause::FreshSpawn { pod_uid: uid }
                            }
                        });
                    }
                }
                costs.cold_starts += 1;
                costs.cold_start_seconds += cold_ms as f64 / 1_000.0;
                cold_ms
            };
            let end = t + delay_ms + dur;
            inflight.push(end);
            next_end = next_end.min(end);
            peak = peak.max(inflight.len() as f64);
            costs.invocations += 1;
            costs.exec_seconds += dur as f64 / 1_000.0;
            costs.service_seconds += (delay_ms + dur) as f64 / 1_000.0;
            if cfg.record_delays {
                delays.push(delay_ms as f64 / 1_000.0);
            }
            if let Some(cause) = cause {
                // Exactly one wait segment is nonzero — queue wait for
                // joins, cold wait for fresh spawns — matching the
                // engine's exact-accounting identity by construction.
                let (queue_wait_ms, cold_wait_ms) = match cause {
                    WaitCause::Warm { .. } => (0, 0),
                    WaitCause::JoinedWarmingPod { .. } => (delay_ms, 0),
                    WaitCause::FreshSpawn { .. }
                    | WaitCause::Evicted { .. }
                    | WaitCause::Saturated => (0, delay_ms),
                };
                spans.push(InvocationSpan {
                    app: app_id,
                    index,
                    arrival_ms: t,
                    queue_wait_ms,
                    cold_wait_ms,
                    exec_ms: dur,
                    cause,
                });
            }
        }

        // 5. Done once the span is exhausted and no work is in flight
        //    (pods stay allocated exactly until the last completion).
        pop_completions!(t);
        if t >= span_ms && inflight.is_empty() {
            break;
        }

        // 6. Accrue the [t, t+1) millisecond. The cluster ledger
        //    advances in lockstep: residency changes happened at t, so
        //    this accrues the post-change occupancy over [t, t+1).
        conc_ms += inflight.len() as u64;
        pod_ms += pods.len() as u64;
        if let Some(cl) = cluster.as_mut() {
            cl.advance(t + 1);
        }
        t += 1;
    }

    let alive_secs = pod_ms as f64 / 1_000.0;
    costs.allocated_gb_seconds = mem_gb * alive_secs;
    let busy_pod_secs = costs.exec_seconds / concurrency as f64;
    costs.wasted_gb_seconds =
        (costs.allocated_gb_seconds - mem_gb * busy_pod_secs).max(0.0);
    let cluster_outcome = cluster.map(|cl| {
        debug_assert_eq!(
            cl.total_pod_ms(),
            pod_ms,
            "per-node occupancy must sum to the alive-time integral"
        );
        cl.into_outcome(t)
    });
    SimResult {
        costs,
        delays_secs: delays,
        avg_concurrency,
        peak_concurrency,
        arrivals,
        pod_counts,
        initial_pods: placed_initial,
        faults: femux_fault::FaultStats::default(),
        cluster: cluster_outcome,
        spans,
    }
}

/// Provenance breakdown of the currently warm pods, as a
/// [`WaitCause::Warm`]; mirrors the engine's sampled-warm-admission
/// scan.
fn warm_origin_mix(pods: &[RefPod], t: u64) -> WaitCause {
    let (mut min_scale, mut reactive, mut proactive, mut restarted) =
        (0, 0, 0, 0);
    for p in pods.iter().filter(|p| p.warm_at <= t) {
        match p.origin {
            PodOrigin::MinScale => min_scale += 1,
            PodOrigin::Reactive { .. } => reactive += 1,
            PodOrigin::Proactive { .. } => proactive += 1,
            // Unreachable in the oracle (restarts require a node fault
            // plan, and the oracle is fault-free), kept for exhaustive
            // agreement with the engine's scan.
            PodOrigin::Restarted { .. } => restarted += 1,
        }
    }
    WaitCause::Warm { min_scale, reactive, proactive, restarted }
}

/// The soonest-warm joinable warming pod with spare per-pod
/// concurrency; ties broken by pod-vector order.
fn joinable_pod(
    pods: &[RefPod],
    t: u64,
    concurrency: u64,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, p) in pods.iter().enumerate() {
        if p.joinable && p.warm_at > t && p.queued < concurrency {
            match best {
                Some(b) if pods[b].warm_at <= p.warm_at => {}
                _ => best = Some(i),
            }
        }
    }
    best
}

/// Applies a scaling decision exactly as the production engine does:
/// rate-limited proactive scale-up, or scale-down respecting in-flight
/// need, protected pods, and the min-scale floor (evicting
/// shortest-warm unprotected pods first, stable order).
#[allow(clippy::too_many_arguments)]
fn apply_target(
    pods: &mut Vec<RefPod>,
    inflight: &[u64],
    target: usize,
    t: u64,
    cold_ms: u64,
    concurrency: u64,
    min_scale: usize,
    cfg: &SimConfig,
    spawn_minute: &mut u64,
    spawns_this_minute: &mut usize,
    next_uid: &mut u64,
    mut cluster: Option<&mut Cluster>,
) {
    let current = pods.len();
    if target > current {
        for _ in current..target {
            // Placement-denial check precedes the rate-limit check
            // (denials never consume rate-limit slots).
            if let Some(cl) = cluster.as_deref_mut() {
                if !cl.can_place() {
                    cl.placement_denials += 1;
                    break;
                }
            }
            let allowed = match cfg.scale_limit {
                None => true,
                Some(limit) => {
                    if pods.len() < limit.threshold {
                        true
                    } else {
                        let minute = t / 60_000;
                        if minute != *spawn_minute {
                            *spawn_minute = minute;
                            *spawns_this_minute = 0;
                        }
                        if *spawns_this_minute < limit.per_minute {
                            *spawns_this_minute += 1;
                            true
                        } else {
                            false
                        }
                    }
                }
            };
            if !allowed {
                break;
            }
            let uid = *next_uid;
            *next_uid += 1;
            if let Some(cl) = cluster.as_deref_mut() {
                let placed = cl.try_place(uid);
                debug_assert!(placed.is_some(), "can_place pre-checked");
            }
            pods.push(RefPod {
                uid,
                origin: PodOrigin::Proactive { at_ms: t },
                warm_at: t + cold_ms,
                keep_until: t,
                queued: 0,
                joinable: false,
            });
        }
    } else if target < current {
        let needed =
            (inflight.len() as u64).div_ceil(concurrency) as usize;
        let protected =
            pods.iter().filter(|p| p.keep_until > t).count();
        let floor = target.max(needed).max(protected).max(
            if cfg.respect_min_scale { min_scale } else { 0 },
        );
        if floor < current {
            pods.sort_by_key(|p| {
                (std::cmp::Reverse(p.keep_until > t), p.warm_at)
            });
            let keep = floor.max(protected);
            if let Some(cl) = cluster {
                for p in &pods[keep..] {
                    cl.release(p.uid, ReleaseReason::ScaledDown);
                }
            }
            pods.truncate(keep);
        }
    }
}

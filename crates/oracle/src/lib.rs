//! Correctness oracle for the `femux-sim` discrete-event engine.
//!
//! Every number this reproduction reports flows through
//! [`femux_sim::simulate_app`]. This crate pins what "correct" means for
//! that engine, so later performance rewrites of the hot path can be
//! diffed against an independent implementation instead of hand-picked
//! unit tests:
//!
//! - [`engine::reference_simulate`]: a deliberately-slow, obviously
//!   correct reference simulator. It advances time one millisecond at a
//!   time with a straight-line state machine — no heap, no event
//!   sorting, no piecewise integration — and must agree with the
//!   production engine on **every observable to exact `f64` equality**:
//!   all [`femux_rum::CostRecord`] fields, the per-interval
//!   `avg_concurrency` / `peak_concurrency` / `arrivals` series,
//!   `pod_counts`, per-request delays, and the reconstructed scale
//!   events.
//! - [`diff`]: structural comparison of two [`femux_sim::SimResult`]s
//!   naming the first divergent observable and tick.
//! - [`invariants`]: metamorphic properties that hold regardless of
//!   implementation — cost conservation, scale-headroom monotonicity,
//!   time- and id-shift invariance, the `min_scale` floor, and rate-0
//!   fault-plan inertness.
//! - [`sweep`]: a seeded property runner over synthetic IBM/Azure app
//!   streams, parallelized through `femux_par`, that shrinks any
//!   failure to a minimal counterexample (seed + app + first divergent
//!   tick).
//!
//! # Contract
//!
//! The oracle covers **fault-free** runs (`SimConfig::faults == None`).
//! Fault plans with every rate at zero are required to be byte-identical
//! to fault-free runs, and that equivalence is checked engine-vs-engine
//! by [`invariants::check_rate0_inert`]; non-zero fault rates change the
//! engine's deterministic draw sequence and are pinned by
//! `tests/fault_determinism.rs` instead.
//!
//! Exact `f64` agreement is achievable — not just approximate — because
//! every accumulated quantity is either an integer-valued sum (pod-ms
//! and concurrency-ms integrals of integer event times, exact in `f64`
//! far below 2^53) or a sum of per-event terms (`cold_ms / 1000.0`,
//! `duration_ms / 1000.0`) that both simulators add in the same
//! arrival order. The reference engine therefore mirrors the production
//! engine's *sequence of rounding operations* while sharing none of its
//! event-driven structure.

pub mod diff;
pub mod engine;
pub mod invariants;
pub mod sweep;

pub use diff::{compare_results, Divergence};
pub use engine::reference_simulate;
pub use sweep::{
    run_sweep, Counterexample, PolicyKind, SweepConfig, SweepReport,
};

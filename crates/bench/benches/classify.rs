//! Criterion micro-benchmarks: classifier training and prediction.
//!
//! K-means training over thousands of blocks completes in minutes at
//! fleet scale in the paper; prediction happens once per block and must
//! be microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use femux_classify::{KMeans, KMeansConfig, StandardScaler};
use femux_stats::rng::Rng;
use std::hint::black_box;

fn rows(n: usize) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(11);
    (0..n)
        .map(|_| (0..4).map(|_| rng.normal()).collect())
        .collect()
}

fn bench_classify(c: &mut Criterion) {
    let data = rows(2_000);
    let scaler = StandardScaler::fit(&data);
    let scaled = scaler.transform(&data);
    c.bench_function("kmeans_fit_2000x4", |b| {
        b.iter(|| {
            black_box(KMeans::fit(
                black_box(&scaled),
                &KMeansConfig {
                    restarts: 1,
                    ..KMeansConfig::default()
                },
            ))
        })
    });
    let model = KMeans::fit(&scaled, &KMeansConfig::default());
    c.bench_function("kmeans_predict", |b| {
        b.iter(|| black_box(model.predict(black_box(&scaled[0]))))
    });
    c.bench_function("scaler_fit_2000x4", |b| {
        b.iter(|| black_box(StandardScaler::fit(black_box(&data))))
    });
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);

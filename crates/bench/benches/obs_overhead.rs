//! Criterion smoke-benchmark: telemetry overhead on the labelling
//! stage.
//!
//! The observability layer's contract is "inert by default": with the
//! switches off, every recording call is one relaxed atomic load. This
//! bench runs `label_fleet` three ways — obs off, metrics on, and
//! metrics+events on — so a regression that makes the disabled path
//! allocate (or the enabled path exceed the ~5 % budget) shows up as a
//! ratio between adjacent bench lines rather than needing an absolute
//! threshold on a shared CI machine.

use criterion::{criterion_group, criterion_main, Criterion};
use femux::config::FemuxConfig;
use femux::model::{label_fleet, TrainApp};
use femux_stats::rng::Rng;
use std::hint::black_box;

fn fleet(n: usize) -> Vec<TrainApp> {
    let mut rng = Rng::seed_from_u64(33);
    (0..n)
        .map(|i| TrainApp {
            concurrency: (0..600)
                .map(|t| {
                    (2.0 + ((t + i * 13) as f64 * 0.2).sin()
                        + 0.2 * rng.normal())
                    .max(0.0)
                })
                .collect(),
            exec_secs: 0.5,
            mem_gb: 0.25,
            pod_concurrency: 1,
        })
        .collect()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let cfg = FemuxConfig::for_tests();
    let apps = fleet(8);

    femux_obs::set_enabled(false);
    c.bench_function("label_fleet_obs_off", |b| {
        b.iter(|| black_box(label_fleet(black_box(&apps), &cfg)))
    });

    {
        let _g = femux_obs::scoped(false);
        c.bench_function("label_fleet_obs_metrics", |b| {
            b.iter(|| black_box(label_fleet(black_box(&apps), &cfg)))
        });
    }

    {
        let _g = femux_obs::scoped(true);
        c.bench_function("label_fleet_obs_events", |b| {
            b.iter(|| black_box(label_fleet(black_box(&apps), &cfg)))
        });
        // Periodically drain so event memory stays bounded across iters.
        drop(femux_obs::collect());
    }
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

//! Criterion micro-benchmarks: block feature extraction.
//!
//! The paper budgets <5 ms per 504-minute block for feature extraction
//! (§4.3.2); these benches measure each feature and the full default
//! vector.

use criterion::{criterion_group, criterion_main, Criterion};
use femux_features::{extract, Block, FeatureKind, BLOCK_MINUTES};
use femux_stats::rng::Rng;
use std::hint::black_box;

fn block() -> Block {
    let mut rng = Rng::seed_from_u64(7);
    Block {
        app_index: 0,
        seq: 0,
        series: (0..BLOCK_MINUTES)
            .map(|t| {
                (2.0 + (t as f64 * 0.05).sin() + 0.3 * rng.normal()).max(0.0)
            })
            .collect(),
        exec_secs: 0.4,
    }
}

fn bench_features(c: &mut Criterion) {
    let b = block();
    let mut group = c.benchmark_group("feature_504min_block");
    for kind in FeatureKind::ALL {
        group.bench_function(kind.name(), |bch| {
            bch.iter(|| black_box(extract(black_box(&b), &[kind])))
        });
    }
    group.bench_function("default_vector", |bch| {
        bch.iter(|| black_box(extract(black_box(&b), &FeatureKind::DEFAULT)))
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);

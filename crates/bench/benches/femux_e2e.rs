//! Criterion macro-benchmarks: FeMux end-to-end decision latency and
//! training-pipeline stages on a small fleet.

use criterion::{criterion_group, criterion_main, Criterion};
use femux::config::FemuxConfig;
use femux::manager::AppManager;
use femux::model::{label_fleet, train, train_from_labels, ClassifierKind, TrainApp};
use femux_stats::rng::Rng;
use std::hint::black_box;
use std::sync::Arc;

fn fleet(n: usize) -> Vec<TrainApp> {
    let mut rng = Rng::seed_from_u64(21);
    (0..n)
        .map(|i| TrainApp {
            concurrency: (0..600)
                .map(|t| {
                    (2.0 + ((t + i * 13) as f64 * 0.2).sin()
                        + 0.2 * rng.normal())
                    .max(0.0)
                })
                .collect(),
            exec_secs: 0.5,
            mem_gb: 0.25,
            pod_concurrency: 1,
        })
        .collect()
}

fn bench_femux(c: &mut Criterion) {
    let cfg = FemuxConfig::for_tests();
    let apps = fleet(8);
    c.bench_function("femux_train_8apps", |b| {
        b.iter(|| {
            black_box(train(
                black_box(&apps),
                &cfg,
                ClassifierKind::KMeans,
            ))
        })
    });
    let labelled = label_fleet(&apps, &cfg);
    c.bench_function("femux_classifier_fit_only", |b| {
        b.iter(|| {
            black_box(train_from_labels(
                black_box(&labelled),
                &cfg,
                ClassifierKind::KMeans,
            ))
        })
    });
    let model = Arc::new(
        train(&apps, &cfg, ClassifierKind::KMeans).expect("model"),
    );
    c.bench_function("femux_online_observe_and_forecast", |b| {
        let mut mgr = AppManager::new(model.clone(), 0.5);
        let mut t = 0usize;
        b.iter(|| {
            mgr.observe((2.0 + (t as f64 * 0.2).sin()).max(0.0));
            t += 1;
            black_box(mgr.forecast(1))
        })
    });
}

criterion_group!(benches, bench_femux);
criterion_main!(benches);

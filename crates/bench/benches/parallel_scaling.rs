//! Parallel-scaling benchmark: the two dominant offline-pipeline stages
//! (forecast labelling and feature extraction) on a 64-app fleet at
//! 1/2/4/8 worker threads, so the speedup from the `femux-par` substrate
//! is a recorded number rather than prose.
//!
//! Run with `cargo bench --bench parallel_scaling`; each benchmark name
//! carries its thread count (`label_fleet_64apps/t4`).

use criterion::{criterion_group, criterion_main, Criterion};
use femux::config::FemuxConfig;
use femux::model::{label_fleet, TrainApp};
use femux_features::{extract_all, split_blocks, Block, FeatureKind};
use femux_stats::rng::Rng;
use std::hint::black_box;

/// A 64-app fleet mixing periodic and noisy-stationary series, matching
/// the e2e bench's generator but 8x wider.
fn fleet(n: usize) -> Vec<TrainApp> {
    let mut rng = Rng::seed_from_u64(64);
    (0..n)
        .map(|i| TrainApp {
            concurrency: (0..600)
                .map(|t| {
                    (2.0 + ((t + i * 13) as f64 * 0.2).sin()
                        + 0.2 * rng.normal())
                    .max(0.0)
                })
                .collect(),
            exec_secs: 0.5,
            mem_gb: 0.25,
            pod_concurrency: 1,
        })
        .collect()
}

/// Blocks for the feature-extraction benchmark: 504-minute windows from
/// varied synthetic series.
fn blocks(n: usize) -> Vec<Block> {
    let mut rng = Rng::seed_from_u64(65);
    (0..n)
        .flat_map(|i| {
            let series: Vec<f64> = (0..504)
                .map(|t| {
                    (1.0 + (i % 5) as f64
                        + (t as f64 * 0.11).sin().abs()
                        + 0.3 * rng.normal())
                    .max(0.0)
                })
                .collect();
            split_blocks(i, &series, 504, 0.5)
        })
        .collect()
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let apps = fleet(64);
    let cfg = FemuxConfig::for_tests();
    let mut group = c.benchmark_group("label_fleet_64apps");
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("t{threads}"), |b| {
            let _guard = femux_par::override_threads(threads);
            b.iter(|| black_box(label_fleet(black_box(&apps), &cfg)))
        });
    }
    group.finish();

    let blocks = blocks(64);
    let mut group = c.benchmark_group("extract_all_64blocks");
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("t{threads}"), |b| {
            let _guard = femux_par::override_threads(threads);
            b.iter(|| {
                black_box(extract_all(
                    black_box(&blocks),
                    &FeatureKind::DEFAULT,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);

//! Criterion micro-benchmarks: simulator replay throughput.
//!
//! §5.1-scale studies replay hundreds of thousands of invocations per
//! policy; replay throughput (invocations/second) is what bounds
//! experiment turnaround.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use femux_sim::{simulate_app, KeepAlivePolicy, KnativeDefaultPolicy, SimConfig};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let trace = generate(&IbmFleetConfig::small(77));
    let app = trace
        .apps
        .iter()
        .max_by_key(|a| a.invocations.len())
        .expect("non-empty")
        .clone();
    let n = app.invocations.len() as u64;
    let mut group = c.benchmark_group("simulate_app");
    group.throughput(Throughput::Elements(n));
    group.bench_function("knative_default", |b| {
        b.iter(|| {
            let mut policy = KnativeDefaultPolicy;
            black_box(simulate_app(
                black_box(&app),
                &mut policy,
                trace.span_ms,
                &SimConfig::default(),
            ))
        })
    });
    group.bench_function("keepalive_10min", |b| {
        b.iter(|| {
            let mut policy = KeepAlivePolicy::ten_minutes();
            black_box(simulate_app(
                black_box(&app),
                &mut policy,
                trace.span_ms,
                &SimConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);

//! Criterion micro-benchmarks: simulator replay throughput.
//!
//! §5.1-scale studies replay hundreds of thousands of invocations per
//! policy; replay throughput (invocations/second) is what bounds
//! experiment turnaround.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use femux_sim::{simulate_app, KeepAlivePolicy, KnativeDefaultPolicy, SimConfig};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use femux_trace::types::{AppId, AppRecord, Invocation, WorkloadKind};
use std::hint::black_box;

/// A sparse app: one 3-request burst every 6 hours across `days` days.
/// Wall time here is dominated by idle handling, the event-queue
/// engine's headline case.
fn idle_heavy_app(days: u64) -> AppRecord {
    let mut app = AppRecord::new(AppId(0), WorkloadKind::Application);
    app.config.concurrency = 1;
    app.mem_used_mb = 256;
    let mut t = 1_000u64;
    while t < days * 86_400_000 {
        for k in 0..3u64 {
            app.invocations.push(Invocation {
                start_ms: t + k * 500,
                duration_ms: 800,
                delay_ms: 0,
            });
        }
        t += 6 * 3_600_000;
    }
    app
}

/// A bursty app: 400-request same-second bursts every 10 minutes for a
/// day — stresses the arrival path (join/spawn) rather than ticks.
fn burst_heavy_app() -> AppRecord {
    let mut app = AppRecord::new(AppId(1), WorkloadKind::Application);
    app.config.concurrency = 10;
    app.mem_used_mb = 256;
    let mut t = 5_000u64;
    while t < 86_400_000 {
        for k in 0..400u64 {
            app.invocations.push(Invocation {
                start_ms: t + k % 1_000,
                duration_ms: 2_000,
                delay_ms: 0,
            });
        }
        t += 600_000;
    }
    app
}

fn bench_simulator(c: &mut Criterion) {
    let trace = generate(&IbmFleetConfig::small(77));
    let app = trace
        .apps
        .iter()
        .max_by_key(|a| a.invocations.len())
        .expect("non-empty")
        .clone();
    let n = app.invocations.len() as u64;
    let mut group = c.benchmark_group("simulate_app");
    group.throughput(Throughput::Elements(n));
    group.bench_function("knative_default", |b| {
        b.iter(|| {
            let mut policy = KnativeDefaultPolicy;
            black_box(simulate_app(
                black_box(&app),
                &mut policy,
                trace.span_ms,
                &SimConfig::default(),
            ))
        })
    });
    group.bench_function("keepalive_10min", |b| {
        b.iter(|| {
            let mut policy = KeepAlivePolicy::ten_minutes();
            black_box(simulate_app(
                black_box(&app),
                &mut policy,
                trace.span_ms,
                &SimConfig::default(),
            ))
        })
    });

    let idle = idle_heavy_app(62);
    let idle_span = 62 * 86_400_000;
    group.throughput(Throughput::Elements(idle.invocations.len() as u64));
    group.bench_function("idle_heavy_62d_keepalive", |b| {
        b.iter(|| {
            let mut policy = KeepAlivePolicy::ten_minutes();
            black_box(simulate_app(
                black_box(&idle),
                &mut policy,
                idle_span,
                &SimConfig::default(),
            ))
        })
    });

    let bursty = burst_heavy_app();
    let bursty_span = 86_400_000;
    group.throughput(Throughput::Elements(
        bursty.invocations.len() as u64,
    ));
    group.bench_function("burst_heavy_1d_knative", |b| {
        b.iter(|| {
            let mut policy = KnativeDefaultPolicy;
            black_box(simulate_app(
                black_box(&bursty),
                &mut policy,
                bursty_span,
                &SimConfig::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);

//! Criterion micro-benchmarks: per-forecast inference latency.
//!
//! The paper's scalability claims rest on lightweight forecasters
//! (<7 ms mean inference, §5.2); these benches pin the per-model cost on
//! the paper's 120-minute history window.

use criterion::{criterion_group, criterion_main, Criterion};
use femux_forecast::ForecasterKind;
use std::hint::black_box;

fn history(len: usize) -> Vec<f64> {
    (0..len)
        .map(|t| 2.0 + ((t as f64) * 0.21).sin().abs() * 3.0)
        .collect()
}

fn bench_forecasters(c: &mut Criterion) {
    let window = history(120);
    let mut group = c.benchmark_group("forecast_120min_window");
    for kind in ForecasterKind::ALL {
        let mut forecaster = kind.build();
        group.bench_function(kind.name(), |b| {
            b.iter(|| black_box(forecaster.forecast(black_box(&window), 1)))
        });
    }
    group.finish();
}

fn bench_horizons(c: &mut Criterion) {
    let window = history(120);
    let mut group = c.benchmark_group("fft_horizon");
    for horizon in [1usize, 10, 60] {
        let mut f = ForecasterKind::Fft.build();
        group.bench_function(format!("h{horizon}"), |b| {
            b.iter(|| black_box(f.forecast(black_box(&window), horizon)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forecasters, bench_horizons);
criterion_main!(benches);

//! Audit-throughput benchmark: one full workspace scan through the v2
//! pipeline (lex, parse, per-file rules in parallel, then symbol
//! table, call graph, and interprocedural rules), at 1 and 8 threads.
//!
//! The CI perf job records this next to the simulator numbers so the
//! analysis stage has an explicit budget: a full-workspace scan must
//! stay well under 5 s, or the audit gate starts taxing every push.
//!
//! Run with `cargo bench --bench audit_full_workspace`.

use criterion::{criterion_group, criterion_main, Criterion};
use femux_audit::{find_workspace_root, render_json, scan_workspace};
use std::hint::black_box;
use std::path::Path;

fn bench_audit_full_workspace(c: &mut Criterion) {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    // One warm-up scan outside measurement, doubling as a sanity
    // check that the tree under benchmark actually audits clean.
    let warm = scan_workspace(&root).expect("scan");
    assert!(warm.files_scanned > 100, "walk found the workspace");

    let mut group = c.benchmark_group("audit_full_workspace");
    for threads in [1usize, 8] {
        group.bench_function(format!("t{threads}"), |b| {
            let _guard = femux_par::override_threads(threads);
            b.iter(|| black_box(scan_workspace(black_box(&root)).expect("scan")))
        });
    }
    group.bench_function("t8_json", |b| {
        let _guard = femux_par::override_threads(8);
        b.iter(|| {
            render_json(&black_box(scan_workspace(black_box(&root)).expect("scan")))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_audit_full_workspace);
criterion_main!(benches);

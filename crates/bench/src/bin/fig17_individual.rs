//! Fig. 17 (App. C) — FeMux vs its individual forecasters.
//!
//! Each single-forecaster deployment lands somewhere on the cold-start /
//! wasted-memory plane (AR conservative, exponential smoothing lean,
//! etc.); FeMux's multiplexed combination should dominate on RUM. The
//! paper also reports switching statistics: >65 % of applications
//! switched forecasters at least once, 20 % used 4 or more.

use femux_bench::capacity::{eval_femux_fleet, eval_forecaster_fleet};
use femux_bench::table::{f1, pct, print_table};
use femux_bench::{azure_setup, Scale};
use femux::manager::AppManager;
use femux_rum::RumSpec;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let apps = setup.test_apps();
    let cfg = setup.femux_config();
    let rum = RumSpec::default_paper();

    eprintln!("training FeMux...");
    let model = setup.train_femux(&cfg);

    let mut rows = Vec::new();
    for kind in &cfg.forecasters {
        let costs = eval_forecaster_fleet(
            &apps,
            *kind,
            cfg.history,
            cfg.label_stride,
            cfg.cold_start_secs,
        );
        let total = femux_rum::aggregate(&costs);
        rows.push(vec![
            kind.to_string(),
            f1(total.cold_start_seconds),
            f1(total.wasted_gb_seconds),
            f1(rum.evaluate_fleet(&costs)),
        ]);
    }
    let femux_costs =
        eval_femux_fleet(&apps, &model, cfg.cold_start_secs);
    let femux_total = femux_rum::aggregate(&femux_costs);
    rows.push(vec![
        "FEMUX (multiplexed)".into(),
        f1(femux_total.cold_start_seconds),
        f1(femux_total.wasted_gb_seconds),
        f1(rum.evaluate_fleet(&femux_costs)),
    ]);
    print_table(
        "Fig. 17 — cold-start seconds vs wasted GB-s per deployment \
         (paper: FeMux dominates on RUM; AR/keep-alive conservative, \
         smoothing lean)",
        &["deployment", "cold-start s", "wasted GB-s", "RUM"],
        &rows,
    );

    // Switching statistics from replaying the managers. Replays are
    // independent per app, so fan out across FEMUX_THREADS workers.
    let stats = femux_par::par_map(&apps, |_, app| {
        if app.concurrency.len() < cfg.block_len {
            return None;
        }
        let mut mgr = AppManager::new(model.clone(), app.exec_secs);
        for &v in &app.concurrency {
            mgr.observe(v);
        }
        Some((mgr.switches() > 0, mgr.distinct_forecasters() >= 4))
    });
    let counted = stats.iter().flatten().count();
    let switched = stats.iter().flatten().filter(|(s, _)| *s).count();
    let four_plus = stats.iter().flatten().filter(|(_, f)| *f).count();
    print_table(
        "Fig. 17 — switching statistics (paper: >65% of apps switched; \
         20% used 4+ forecasters)",
        &["metric", "value"],
        &[
            vec![
                "apps that switched at least once".into(),
                pct(switched as f64 / counted.max(1) as f64),
            ],
            vec![
                "apps using 4+ forecasters".into(),
                pct(four_plus as f64 / counted.max(1) as f64),
            ],
            vec!["apps with >=1 block".into(), counted.to_string()],
        ],
    );
}

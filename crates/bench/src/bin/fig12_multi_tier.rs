//! Fig. 12 — Supporting multiple RUMs simultaneously (§5.1.2).
//!
//! 10 % of applications are *premium* and run under FeMux-CS; the
//! remaining 90 % are *regular* under the default RUM. The paper: the
//! tiered deployment cuts premium cold-start seconds by ~45 % relative
//! to running everyone on default FeMux, while wasting ~35 % less memory
//! than running everyone on FeMux-CS.

use femux::config::FemuxConfig;
use femux_bench::capacity::eval_femux_fleet;
use femux_bench::table::{delta_pct, f1, print_table};
use femux_bench::{azure_setup, Scale};
use femux_stats::rng::Rng;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let apps = setup.test_apps();

    // Premium selection: 10 % of test apps, seeded.
    let mut rng = Rng::seed_from_u64(0xF1612);
    let n_premium = (apps.len() / 10).max(1);
    let premium_idx = rng.sample_indices(apps.len(), n_premium);
    let is_premium: Vec<bool> = {
        let mut v = vec![false; apps.len()];
        for &i in &premium_idx {
            v[i] = true;
        }
        v
    };

    // Two models: default RUM ("orange") and FeMux-CS ("blue").
    let base = setup.femux_config();
    let default_cfg = FemuxConfig {
        block_len: base.block_len,
        history: base.history,
        label_stride: base.label_stride,
        ..FemuxConfig::default()
    };
    let cs_cfg = FemuxConfig {
        block_len: base.block_len,
        history: base.history,
        label_stride: base.label_stride,
        ..FemuxConfig::cs_variant()
    };
    eprintln!("training default-RUM model...");
    let default_model = setup.train_femux(&default_cfg);
    eprintln!("training FeMux-CS model...");
    let cs_model = setup.train_femux(&cs_cfg);

    let default_costs = eval_femux_fleet(&apps, &default_model, 0.808);
    let cs_costs = eval_femux_fleet(&apps, &cs_model, 0.808);

    // Deployments: all-default, all-CS, tiered (premium on CS).
    let premium_cs_secs: f64 = premium_idx
        .iter()
        .map(|&i| cs_costs[i].cold_start_seconds)
        .sum();
    let premium_default_secs: f64 = premium_idx
        .iter()
        .map(|&i| default_costs[i].cold_start_seconds)
        .sum();
    let tiered_waste: f64 = apps
        .iter()
        .enumerate()
        .map(|(i, _)| {
            if is_premium[i] {
                cs_costs[i].wasted_gb_seconds
            } else {
                default_costs[i].wasted_gb_seconds
            }
        })
        .sum();
    let all_cs_waste: f64 =
        cs_costs.iter().map(|c| c.wasted_gb_seconds).sum();
    let all_default_waste: f64 =
        default_costs.iter().map(|c| c.wasted_gb_seconds).sum();

    print_table(
        "Fig. 12 — tiered RUMs (paper: premium cold-start seconds -45% \
         under FeMux-CS; tiered waste = 64.6% of all-CS waste)",
        &["deployment", "premium cold-start s", "fleet wasted GB-s"],
        &[
            vec![
                "all default RUM".into(),
                f1(premium_default_secs),
                f1(all_default_waste),
            ],
            vec![
                "all FeMux-CS".into(),
                f1(premium_cs_secs),
                f1(all_cs_waste),
            ],
            vec![
                "tiered (10% premium on CS)".into(),
                f1(premium_cs_secs),
                f1(tiered_waste),
            ],
        ],
    );
    println!(
        "premium cold-start seconds: {} (tiered vs all-default)",
        delta_pct(premium_cs_secs, premium_default_secs)
    );
    println!(
        "fleet waste: {} (tiered vs all-CS)",
        delta_pct(tiered_waste, all_cs_waste)
    );
    println!(
        "premium apps: {} of {}",
        premium_idx.len(),
        apps.len()
    );
}

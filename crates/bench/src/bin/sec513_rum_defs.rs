//! §5.1.3 — Different RUM definitions.
//!
//! FeMux trained on the default RUM vs FeMux-Exec trained on the
//! execution-time-aware RUM (Eq. 2) with the added execution-time
//! feature. The paper: default FeMux incurs 33 % fewer cold-start
//! seconds and 7 % lower default-RUM; FeMux-Exec wastes 25 % less memory
//! and achieves 19 % lower exec-RUM — each wins on the objective it was
//! trained for.

use femux::config::FemuxConfig;
use femux_bench::capacity::eval_femux_fleet;
use femux_bench::table::{delta_pct, f1, print_table};
use femux_bench::{azure_setup, Scale};
use femux_rum::RumSpec;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let apps = setup.test_apps();
    let base = setup.femux_config();

    let default_cfg = FemuxConfig {
        block_len: base.block_len,
        history: base.history,
        label_stride: base.label_stride,
        ..FemuxConfig::default()
    };
    let exec_cfg = FemuxConfig {
        block_len: base.block_len,
        history: base.history,
        label_stride: base.label_stride,
        ..FemuxConfig::exec_variant()
    };
    eprintln!("training default-RUM model...");
    let default_model = setup.train_femux(&default_cfg);
    eprintln!("training exec-RUM model...");
    let exec_model = setup.train_femux(&exec_cfg);

    let default_costs = eval_femux_fleet(&apps, &default_model, 0.808);
    let exec_costs = eval_femux_fleet(&apps, &exec_model, 0.808);

    let default_rum = RumSpec::default_paper();
    let exec_rum = RumSpec::femux_exec();
    let sum =
        |v: &[femux_rum::CostRecord], f: &dyn Fn(&femux_rum::CostRecord) -> f64| {
            v.iter().map(f).sum::<f64>()
        };

    let d_cs = sum(&default_costs, &|c| c.cold_start_seconds);
    let e_cs = sum(&exec_costs, &|c| c.cold_start_seconds);
    let d_waste = sum(&default_costs, &|c| c.wasted_gb_seconds);
    let e_waste = sum(&exec_costs, &|c| c.wasted_gb_seconds);
    let d_drum = default_rum.evaluate_fleet(&default_costs);
    let e_drum = default_rum.evaluate_fleet(&exec_costs);
    let d_erum = exec_rum.evaluate_fleet(&default_costs);
    let e_erum = exec_rum.evaluate_fleet(&exec_costs);

    print_table(
        "§5.1.3 — FeMux (default RUM) vs FeMux-Exec (paper: default \
         -33% cold-start s and -7% default-RUM; exec -25% waste and \
         -19% exec-RUM)",
        &["metric", "femux", "femux-exec", "femux vs exec"],
        &[
            vec![
                "cold-start seconds".into(),
                f1(d_cs),
                f1(e_cs),
                delta_pct(d_cs, e_cs),
            ],
            vec![
                "wasted GB-s".into(),
                f1(d_waste),
                f1(e_waste),
                delta_pct(d_waste, e_waste),
            ],
            vec![
                "default RUM".into(),
                f1(d_drum),
                f1(e_drum),
                delta_pct(d_drum, e_drum),
            ],
            vec![
                "exec RUM".into(),
                f1(d_erum),
                f1(e_erum),
                delta_pct(d_erum, e_erum),
            ],
        ],
    );
}

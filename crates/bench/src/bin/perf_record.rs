//! Records the committed simulator performance baseline
//! (`BENCH_sim.json` at the repository root).
//!
//! Seeded fleets — a dense IBM-like fleet, a sparse/idle-heavy 62-day
//! IBM-like fleet, and a bursty Azure-like fleet — run through both the
//! event-queue engine (`simulate_app`) and the frozen pre-event-queue
//! per-tick reference (`simulate_app_tickwise`), per policy, recording
//! wall time and simulated invocations/second. Case order is fixed, so
//! the document layout is deterministic; only the two wall-derived
//! fields vary between machines.
//!
//! Usage: `perf_record [--quick] [--schema-only] [--out PATH]
//! [--check PATH]`
//!
//! - `--quick`: smaller fleets (CI-sized; identical case labels).
//! - `--schema-only`: skip the simulations and zero the wall-derived
//!   fields — everything left is deterministic, so two runs diff clean
//!   at any `FEMUX_THREADS` setting.
//! - `--out PATH`: write the document to PATH instead of stdout.
//! - `--check PATH`: validate that the document at PATH (the committed
//!   baseline) carries the current schema version, every expected
//!   (fleet, policy, engine) case, and the wall fields; exits nonzero
//!   on drift without recording anything.

use std::fmt::Write as _;

use femux_sim::{
    simulate_app, simulate_app_tickwise, KeepAlivePolicy,
    KnativeDefaultPolicy, ScalingPolicy, SimConfig,
};
use femux_trace::synth::azure::{self, AzureFleetConfig};
use femux_trace::synth::ibm::{self, IbmFleetConfig};
use femux_trace::types::Trace;

const SCHEMA: &str = "femux-bench-sim/v1";
const ENGINES: [&str; 2] = ["event", "tickwise"];
const POLICIES: [&str; 2] = ["keepalive-10min", "knative-default"];

fn build_policy(name: &str) -> Box<dyn ScalingPolicy> {
    match name {
        "keepalive-10min" => Box::new(KeepAlivePolicy::ten_minutes()),
        "knative-default" => Box::new(KnativeDefaultPolicy),
        other => unreachable!("unknown policy {other}"),
    }
}

fn fleets(quick: bool) -> Vec<(&'static str, Trace)> {
    let dense = ibm::generate(&IbmFleetConfig {
        n_apps: if quick { 30 } else { 120 },
        span_days: 3,
        seed: 77,
        max_invocations_per_app: 20_000,
        rate_scale: 0.05,
    });
    // The headline case: a 62-day IBM-scale sparse fleet whose wall
    // time is dominated by idle intervals.
    let sparse = ibm::generate(&IbmFleetConfig {
        n_apps: if quick { 8 } else { 40 },
        span_days: 62,
        seed: 1_977,
        max_invocations_per_app: 500,
        rate_scale: 0.005,
    });
    let bursty = azure::generate(&AzureFleetConfig {
        n_apps: if quick { 15 } else { 60 },
        days: 4,
        seed: 0xA2E,
        rate_scale: 0.5,
    })
    .to_trace();
    vec![
        ("ibm-dense-3d", dense),
        ("ibm-sparse-62d", sparse),
        ("azure-bursty-4d", bursty),
    ]
}

struct CaseRecord {
    fleet: &'static str,
    policy: &'static str,
    engine: &'static str,
    apps: usize,
    invocations: u64,
    span_ms: u64,
    wall_ms: f64,
    inv_per_sec: f64,
}

fn run_case(
    fleet: &'static str,
    trace: &Trace,
    policy: &'static str,
    engine: &'static str,
    schema_only: bool,
) -> CaseRecord {
    let cfg = SimConfig::default();
    let (wall_ms, inv_per_sec) = if schema_only {
        (0.0, 0.0)
    } else {
        let t0 = femux_obs::walltime::monotonic_micros();
        let mut simulated = 0u64;
        for app in &trace.apps {
            let mut p = build_policy(policy);
            let res = match engine {
                "event" => {
                    simulate_app(app, p.as_mut(), trace.span_ms, &cfg)
                }
                _ => simulate_app_tickwise(
                    app,
                    p.as_mut(),
                    trace.span_ms,
                    &cfg,
                ),
            };
            simulated += res.costs.invocations;
        }
        assert_eq!(
            simulated,
            trace.total_invocations(),
            "conservation violated in perf case"
        );
        let secs = femux_obs::walltime::elapsed_secs(t0);
        (secs * 1_000.0, simulated as f64 / secs.max(1e-9))
    };
    CaseRecord {
        fleet,
        policy,
        engine,
        apps: trace.apps.len(),
        invocations: trace.total_invocations(),
        span_ms: trace.span_ms,
        wall_ms,
        inv_per_sec,
    }
}

fn render(cases: &[CaseRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"fleet\": \"{}\", \"policy\": \"{}\", \
             \"engine\": \"{}\", \"apps\": {}, \"invocations\": {}, \
             \"span_ms\": {}, \"wall_ms\": {:.3}, \
             \"inv_per_sec\": {:.0}}}",
            c.fleet,
            c.policy,
            c.engine,
            c.apps,
            c.invocations,
            c.span_ms,
            c.wall_ms,
            c.inv_per_sec,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Validates the committed baseline's shape: schema version, one entry
/// per expected (fleet, policy, engine) case, wall fields present.
fn check(text: &str) -> Result<(), String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("schema marker missing (expected {SCHEMA})"));
    }
    let fleet_names =
        ["ibm-dense-3d", "ibm-sparse-62d", "azure-bursty-4d"];
    let mut expected = 0;
    for fleet in fleet_names {
        for policy in POLICIES {
            for engine in ENGINES {
                expected += 1;
                let needle = format!(
                    "\"fleet\": \"{fleet}\", \"policy\": \"{policy}\", \
                     \"engine\": \"{engine}\"",
                );
                if !text.contains(&needle) {
                    return Err(format!("case missing: {needle}"));
                }
            }
        }
    }
    for field in ["\"wall_ms\":", "\"inv_per_sec\":"] {
        let n = text.matches(field).count();
        if n != expected {
            return Err(format!(
                "{field} appears {n} times, expected {expected}"
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut quick = false;
    let mut schema_only = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--schema-only" => schema_only = true,
            "--out" => {
                out_path = Some(args.next().expect("--out needs a path"));
            }
            "--check" => {
                check_path =
                    Some(args.next().expect("--check needs a path"));
            }
            other => panic!("unknown argument {other}"),
        }
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match check(&text) {
            Ok(()) => {
                println!("{path}: schema {SCHEMA} ok");
                return;
            }
            Err(msg) => {
                eprintln!("{path}: schema drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    let mut cases = Vec::new();
    for (fleet, trace) in fleets(quick) {
        for policy in POLICIES {
            for engine in ENGINES {
                eprintln!("running {fleet} / {policy} / {engine} ...");
                cases.push(run_case(
                    fleet,
                    &trace,
                    policy,
                    engine,
                    schema_only,
                ));
            }
        }
    }
    let doc = render(&cases);
    debug_assert!(check(&doc).is_ok(), "self-check must pass");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &doc)
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }
}

//! Records the committed simulator performance baseline
//! (`BENCH_sim.json` at the repository root).
//!
//! Seeded fleets — a dense IBM-like fleet, a sparse/idle-heavy 62-day
//! IBM-like fleet, and a bursty Azure-like fleet — run through both the
//! event-queue engine (`simulate_app`) and the frozen pre-event-queue
//! per-tick reference (`simulate_app_tickwise`), per policy, recording
//! wall time and simulated invocations/second. Two extra cases re-run
//! the dense fleet with a layer enabled so its overhead is priced in
//! the committed baseline: every invocation's lifecycle span sampled
//! (engine `event-spans`), and a finite 16-node cluster with node
//! crashes injected (engine `event-cluster` — placement, eviction
//! scans, and the node fault domain all on the hot path). Both pair
//! with `(ibm-dense-3d, keepalive-10min, event)`. Case order is fixed,
//! so the document layout is deterministic; only the two wall-derived
//! fields vary between machines.
//!
//! Usage: `perf_record [--quick] [--schema-only] [--out PATH]
//! [--check PATH] [--compare PATH [--tolerance T]]`
//!
//! - `--quick`: smaller fleets (CI-sized; identical case labels).
//! - `--schema-only`: skip the simulations and zero the wall-derived
//!   fields — everything left is deterministic, so two runs diff clean
//!   at any `FEMUX_THREADS` setting.
//! - `--out PATH`: write the document to PATH instead of stdout.
//! - `--check PATH`: validate that the document at PATH (the committed
//!   baseline) carries the current schema version, every expected
//!   (fleet, policy, engine) case, and the wall fields; exits nonzero
//!   on drift without recording anything.
//! - `--compare PATH`: run the cases fresh and diff `inv_per_sec`
//!   against the baseline at PATH, case by case; exits nonzero if any
//!   case falls below `baseline × (1 − tolerance)`. `--tolerance`
//!   defaults to 0.6 — a wide band, because CI machines differ from
//!   the recording machine; the gate catches collapses, not noise.

use std::fmt::Write as _;

use femux_sim::{
    simulate_app, simulate_app_tickwise, ClusterConfig, KeepAlivePolicy,
    KnativeDefaultPolicy, NodeConfig, ScalingPolicy, SimConfig,
};
use femux_trace::synth::azure::{self, AzureFleetConfig};
use femux_trace::synth::ibm::{self, IbmFleetConfig};
use femux_trace::types::Trace;

const SCHEMA: &str = "femux-bench-sim/v2";
const ENGINES: [&str; 2] = ["event", "tickwise"];
const POLICIES: [&str; 2] = ["keepalive-10min", "knative-default"];
const FLEET_NAMES: [&str; 3] =
    ["ibm-dense-3d", "ibm-sparse-62d", "azure-bursty-4d"];

/// `(fleet, policy, engine)` labels in recorded order: the full
/// fleet × policy × engine grid, then the span-overhead case that
/// pairs with `(ibm-dense-3d, keepalive-10min, event)`.
fn case_labels() -> Vec<(&'static str, &'static str, &'static str)> {
    let mut labels = Vec::new();
    for fleet in FLEET_NAMES {
        for policy in POLICIES {
            for engine in ENGINES {
                labels.push((fleet, policy, engine));
            }
        }
    }
    labels.push(("ibm-dense-3d", "keepalive-10min", "event-spans"));
    labels.push(("ibm-dense-3d", "keepalive-10min", "event-cluster"));
    labels
}

fn build_policy(name: &str) -> Box<dyn ScalingPolicy> {
    match name {
        "keepalive-10min" => Box::new(KeepAlivePolicy::ten_minutes()),
        "knative-default" => Box::new(KnativeDefaultPolicy),
        other => unreachable!("unknown policy {other}"),
    }
}

fn fleets(quick: bool) -> Vec<(&'static str, Trace)> {
    let dense = ibm::generate(&IbmFleetConfig {
        n_apps: if quick { 30 } else { 120 },
        span_days: 3,
        seed: 77,
        max_invocations_per_app: 20_000,
        rate_scale: 0.05,
    });
    // The headline case: a 62-day IBM-scale sparse fleet whose wall
    // time is dominated by idle intervals.
    let sparse = ibm::generate(&IbmFleetConfig {
        n_apps: if quick { 8 } else { 40 },
        span_days: 62,
        seed: 1_977,
        max_invocations_per_app: 500,
        rate_scale: 0.005,
    });
    let bursty = azure::generate(&AzureFleetConfig {
        n_apps: if quick { 15 } else { 60 },
        days: 4,
        seed: 0xA2E,
        rate_scale: 0.5,
    })
    .to_trace();
    vec![
        ("ibm-dense-3d", dense),
        ("ibm-sparse-62d", sparse),
        ("azure-bursty-4d", bursty),
    ]
}

struct CaseRecord {
    fleet: &'static str,
    policy: &'static str,
    engine: &'static str,
    apps: usize,
    invocations: u64,
    span_ms: u64,
    wall_ms: f64,
    inv_per_sec: f64,
}

fn run_case(
    fleet: &'static str,
    trace: &Trace,
    policy: &'static str,
    engine: &'static str,
    schema_only: bool,
) -> CaseRecord {
    let cfg = match engine {
        // The overhead case: sample every invocation's lifecycle span
        // (telemetry switches stay off, so this prices exactly the
        // always-on part of the layer — sampling, cause derivation,
        // span recording).
        "event-spans" => SimConfig {
            spans: Some(femux_obs::span::SpanConfig::all(0x5EED)),
            ..SimConfig::default()
        },
        // The cluster-overhead case: finite nodes with memory-pressure
        // eviction live and the node fault domain drawing every tick.
        "event-cluster" => SimConfig {
            cluster: Some(ClusterConfig::uniform(
                16,
                NodeConfig {
                    cpu_milli: u64::MAX,
                    mem_mb: 600,
                },
            )),
            faults: Some(femux_fault::FaultConfig {
                node_crash_rate: 0.01,
                node_recovery_ticks: 2,
                ..femux_fault::FaultConfig::off(0xC1A5)
            }),
            ..SimConfig::default()
        },
        _ => SimConfig::default(),
    };
    let (wall_ms, inv_per_sec) = if schema_only {
        (0.0, 0.0)
    } else {
        let t0 = femux_obs::walltime::monotonic_micros();
        let mut simulated = 0u64;
        for app in &trace.apps {
            let mut p = build_policy(policy);
            let res = match engine {
                "tickwise" => simulate_app_tickwise(
                    app,
                    p.as_mut(),
                    trace.span_ms,
                    &cfg,
                ),
                _ => simulate_app(app, p.as_mut(), trace.span_ms, &cfg),
            };
            simulated += res.costs.invocations;
        }
        assert_eq!(
            simulated,
            trace.total_invocations(),
            "conservation violated in perf case"
        );
        let secs = femux_obs::walltime::elapsed_secs(t0);
        (secs * 1_000.0, simulated as f64 / secs.max(1e-9))
    };
    CaseRecord {
        fleet,
        policy,
        engine,
        apps: trace.apps.len(),
        invocations: trace.total_invocations(),
        span_ms: trace.span_ms,
        wall_ms,
        inv_per_sec,
    }
}

fn render(cases: &[CaseRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"fleet\": \"{}\", \"policy\": \"{}\", \
             \"engine\": \"{}\", \"apps\": {}, \"invocations\": {}, \
             \"span_ms\": {}, \"wall_ms\": {:.3}, \
             \"inv_per_sec\": {:.0}}}",
            c.fleet,
            c.policy,
            c.engine,
            c.apps,
            c.invocations,
            c.span_ms,
            c.wall_ms,
            c.inv_per_sec,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Validates the committed baseline's shape: schema version, one entry
/// per expected (fleet, policy, engine) case, wall fields present.
fn check(text: &str) -> Result<(), String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("schema marker missing (expected {SCHEMA})"));
    }
    let labels = case_labels();
    for (fleet, policy, engine) in &labels {
        let needle = format!(
            "\"fleet\": \"{fleet}\", \"policy\": \"{policy}\", \
             \"engine\": \"{engine}\"",
        );
        if !text.contains(&needle) {
            return Err(format!("case missing: {needle}"));
        }
    }
    for field in ["\"wall_ms\":", "\"inv_per_sec\":"] {
        let n = text.matches(field).count();
        if n != labels.len() {
            return Err(format!(
                "{field} appears {n} times, expected {}",
                labels.len()
            ));
        }
    }
    Ok(())
}

/// The baseline's `inv_per_sec` for one case, by label lookup.
fn baseline_inv_per_sec(
    text: &str,
    fleet: &str,
    policy: &str,
    engine: &str,
) -> Option<f64> {
    let needle = format!(
        "\"fleet\": \"{fleet}\", \"policy\": \"{policy}\", \
         \"engine\": \"{engine}\"",
    );
    let rest = &text[text.find(&needle)?..];
    let rest = &rest[..rest.find('}')?];
    let pat = "\"inv_per_sec\": ";
    let start = rest.find(pat)? + pat.len();
    let num: String = rest[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// Diffs fresh measurements against the committed baseline. Returns the
/// regressed case labels (fresh below `baseline × (1 − tolerance)`).
fn compare(
    baseline: &str,
    fresh: &[CaseRecord],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let mut regressions = Vec::new();
    println!(
        "{:<16} {:<16} {:<12} {:>14} {:>14} {:>7}",
        "fleet", "policy", "engine", "baseline i/s", "fresh i/s", "ratio"
    );
    for c in fresh {
        let base = baseline_inv_per_sec(
            baseline, c.fleet, c.policy, c.engine,
        )
        .ok_or_else(|| {
            format!(
                "baseline lacks case {}/{}/{} (re-record it?)",
                c.fleet, c.policy, c.engine
            )
        })?;
        let ratio = if base > 0.0 { c.inv_per_sec / base } else { 1.0 };
        println!(
            "{:<16} {:<16} {:<12} {:>14.0} {:>14.0} {:>7.2}",
            c.fleet, c.policy, c.engine, base, c.inv_per_sec, ratio
        );
        if base > 0.0 && c.inv_per_sec < base * (1.0 - tolerance) {
            regressions.push(format!(
                "{}/{}/{}: {:.0} inv/s vs baseline {:.0} \
                 (floor {:.0})",
                c.fleet,
                c.policy,
                c.engine,
                c.inv_per_sec,
                base,
                base * (1.0 - tolerance),
            ));
        }
    }
    Ok(regressions)
}

fn run_all_cases(quick: bool, schema_only: bool) -> Vec<CaseRecord> {
    // Consume each fleet in turn so its trace drops before the next
    // fleet's cases run: the short sparse/azure cases otherwise measure
    // allocator refill against ~10^6 dense-fleet events still resident,
    // which inflates their wall time ~2x.
    let labels = case_labels();
    let mut cases = Vec::new();
    for (fleet, trace) in fleets(quick) {
        for (_, policy, engine) in
            labels.iter().filter(|(f, _, _)| *f == fleet)
        {
            eprintln!("running {fleet} / {policy} / {engine} ...");
            cases.push(run_case(
                fleet,
                &trace,
                policy,
                engine,
                schema_only,
            ));
        }
    }
    cases
}

fn main() {
    let mut quick = false;
    let mut schema_only = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut tolerance = 0.6f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--schema-only" => schema_only = true,
            "--out" => {
                out_path = Some(args.next().expect("--out needs a path"));
            }
            "--check" => {
                check_path =
                    Some(args.next().expect("--check needs a path"));
            }
            "--compare" => {
                compare_path =
                    Some(args.next().expect("--compare needs a path"));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance needs a number in [0, 1)");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match check(&text) {
            Ok(()) => {
                println!("{path}: schema {SCHEMA} ok");
                return;
            }
            Err(msg) => {
                eprintln!("{path}: schema drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = compare_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        if let Err(msg) = check(&baseline) {
            eprintln!("{path}: schema drift: {msg}");
            std::process::exit(1);
        }
        let fresh = run_all_cases(quick, false);
        match compare(&baseline, &fresh, tolerance) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "{path}: all {} cases within tolerance {tolerance}",
                    fresh.len()
                );
                return;
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!("perf regression: {r}");
                }
                std::process::exit(1);
            }
            Err(msg) => {
                eprintln!("{path}: {msg}");
                std::process::exit(1);
            }
        }
    }

    let cases = run_all_cases(quick, schema_only);
    let doc = render(&cases);
    debug_assert!(check(&doc).is_ok(), "self-check must pass");
    match out_path {
        Some(path) => {
            std::fs::write(&path, &doc)
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_doc(slow: bool) -> String {
        let cases: Vec<CaseRecord> = case_labels()
            .into_iter()
            .map(|(fleet, policy, engine)| CaseRecord {
                fleet,
                policy,
                engine,
                apps: 1,
                invocations: 10,
                span_ms: 1000,
                wall_ms: 1.0,
                inv_per_sec: if slow { 100.0 } else { 1000.0 },
            })
            .collect();
        render(&cases)
    }

    #[test]
    fn self_check_accepts_the_rendered_grid() {
        assert!(check(&fake_doc(false)).is_ok());
    }

    #[test]
    fn check_rejects_a_missing_span_overhead_case() {
        let doc = fake_doc(false).replace("event-spans", "event-gone");
        assert!(check(&doc).unwrap_err().contains("case missing"));
    }

    #[test]
    fn baseline_lookup_finds_each_case_exactly() {
        let doc = fake_doc(false);
        for (fleet, policy, engine) in case_labels() {
            assert_eq!(
                baseline_inv_per_sec(&doc, fleet, policy, engine),
                Some(1000.0)
            );
        }
        assert_eq!(
            baseline_inv_per_sec(&doc, "no-such-fleet", "p", "e"),
            None
        );
    }

    #[test]
    fn compare_flags_only_cases_below_the_tolerance_floor() {
        let baseline = fake_doc(false); // 1000 inv/s everywhere
        let fresh: Vec<CaseRecord> = case_labels()
            .into_iter()
            .map(|(fleet, policy, engine)| CaseRecord {
                fleet,
                policy,
                engine,
                apps: 1,
                invocations: 10,
                span_ms: 1000,
                wall_ms: 1.0,
                // One collapsed case, the rest well inside the band.
                inv_per_sec: if engine == "event-spans" {
                    100.0
                } else {
                    900.0
                },
            })
            .collect();
        let regressions = compare(&baseline, &fresh, 0.6).unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("event-spans"));
        assert!(compare(&baseline, &fresh, 0.95).unwrap().is_empty());
    }
}

//! §4.3.6 / §5.1.1 — Training and inference overhead.
//!
//! Measures FeMux's offline pipeline (forecast labelling, feature
//! extraction, classifier fit) and per-forecast inference latency, and
//! compares with Aquatope's per-application LSTM training and inference.
//! The paper: FeMux feature extraction <5 ms/block, classification
//! <10 min for 13 k apps, inference <7 ms mean; Aquatope trains 4x
//! slower and infers 109-308 ms (~28x slower).

use std::time::Instant;

use femux::model::{label_fleet, train_from_labels, ClassifierKind};
use femux_baselines::aquatope::AquatopePolicy;
use femux_bench::table::{f1, f3, print_table};
use femux_bench::{azure_setup, Scale};
use femux_forecast::{Forecaster, ForecasterKind};

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let cfg = setup.femux_config();
    let train_apps = setup.train_apps();

    // --- FeMux offline pipeline. ---
    eprintln!("labelling {} training apps...", train_apps.len());
    let labelled = label_fleet(&train_apps, &cfg);
    let model =
        train_from_labels(&labelled, &cfg, ClassifierKind::KMeans)
            .expect("model trains");
    print_table(
        "FeMux offline training (paper: feature extraction <5 ms/block; \
         clustering <10 min for 13k apps)",
        &["stage", "seconds", "per block ms"],
        &[
            vec![
                "forecast labelling".into(),
                f1(model.stats.labelling_secs),
                f3(1_000.0 * model.stats.labelling_secs
                    / model.stats.n_blocks.max(1) as f64),
            ],
            vec![
                "feature extraction".into(),
                f3(model.stats.feature_secs),
                f3(1_000.0 * model.stats.feature_secs
                    / model.stats.n_blocks.max(1) as f64),
            ],
            vec![
                "classifier fit".into(),
                f3(model.stats.fit_secs),
                f3(1_000.0 * model.stats.fit_secs
                    / model.stats.n_blocks.max(1) as f64),
            ],
        ],
    );
    println!(
        "blocks: {}, apps: {}",
        model.stats.n_blocks, model.stats.n_apps
    );

    // --- Inference latency per forecaster (2-hour window). ---
    let history: Vec<f64> = (0..120)
        .map(|t| 2.0 + (t as f64 * 0.21).sin().abs() * 3.0)
        .collect();
    let mut rows = Vec::new();
    for kind in ForecasterKind::FEMUX_SET {
        let mut f = kind.build();
        // Warm up, then time.
        let _ = f.forecast(&history, 1);
        let n = 50;
        let t0 = Instant::now();
        for _ in 0..n {
            std::hint::black_box(f.forecast(&history, 1));
        }
        let ms = t0.elapsed().as_secs_f64() * 1_000.0 / n as f64;
        rows.push(vec![kind.to_string(), f3(ms)]);
    }
    print_table(
        "FeMux per-forecast inference latency (paper: <7 ms mean)",
        &["forecaster", "mean ms"],
        &rows,
    );

    // --- Aquatope cost profile. ---
    // Deliberately sequential: this loop *measures* per-app training
    // wall clock, and concurrent LSTM fits would contend for cores and
    // inflate the very numbers being reported. The FeMux side above
    // already exercises the parallel pipeline via `label_fleet`.
    let n_lstm = match scale {
        Scale::Small => 5,
        _ => 20,
    };
    let mut train_total = 0.0;
    let mut infer_total_ms = 0.0;
    let mut inferences = 0usize;
    for (i, app) in train_apps.iter().take(n_lstm).enumerate() {
        let t0 = Instant::now();
        let (policy, _) =
            AquatopePolicy::train(&app.concurrency, 0xAC0A + i as u64);
        train_total += t0.elapsed().as_secs_f64();
        // Inference timing through the underlying LSTM-backed policy is
        // exercised via its forecaster; reuse the public API by timing
        // one decision-equivalent forecast window.
        drop(policy);
        let mut lstm = femux_forecast::lstm::LstmForecaster::new(
            femux_forecast::lstm::LstmConfig::default(),
        );
        lstm.train(&app.concurrency);
        let window = &app.concurrency[..120.min(app.concurrency.len())];
        let t1 = Instant::now();
        for _ in 0..10 {
            std::hint::black_box(lstm.forecast(window, 1));
        }
        infer_total_ms += t1.elapsed().as_secs_f64() * 100.0;
        inferences += 10;
    }
    let femux_train =
        model.stats.labelling_secs + model.stats.feature_secs + model.stats.fit_secs;
    print_table(
        "Aquatope vs FeMux cost profile (paper: training 4x slower, \
         inference ~28x slower)",
        &["metric", "value"],
        &[
            vec![
                format!("aquatope train s ({n_lstm} apps)"),
                f1(train_total),
            ],
            vec![
                "aquatope train s/app".into(),
                f3(train_total / n_lstm as f64),
            ],
            vec![
                "femux train s (whole fleet)".into(),
                f1(femux_train),
            ],
            vec![
                "femux train s/app".into(),
                f3(femux_train / model.stats.n_apps.max(1) as f64),
            ],
            vec![
                "aquatope inference ms".into(),
                f3(infer_total_ms / inferences.max(1) as f64),
            ],
        ],
    );
}

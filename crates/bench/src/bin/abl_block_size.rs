//! App. C — Block-size sensitivity.
//!
//! Sweeps the block length from ~2 hours to 16+ hours. The paper:
//! increasing block size lowers RUM slightly (<3 %, larger patterns are
//! captured) but slows adaptation; 504 minutes balances the two and
//! divides the 14-day Azure trace into an integer 40 blocks.

use femux::config::FemuxConfig;
use femux_bench::capacity::eval_femux_fleet;
use femux_bench::table::{delta_pct, f1, print_table};
use femux_bench::{azure_setup, Scale};
use femux_rum::RumSpec;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let apps = setup.test_apps();
    let base = setup.femux_config();
    let rum = RumSpec::default_paper();

    let minutes_available = setup.fleet.days * 1_440 - base.history;
    let candidates: Vec<usize> = [120usize, 240, 360, 504, 720, 1_008]
        .into_iter()
        .filter(|b| *b * 2 <= minutes_available)
        .collect();

    let mut results = Vec::new();
    for &block_len in &candidates {
        let cfg = FemuxConfig {
            block_len,
            ..base.clone()
        };
        eprintln!("training with block length {block_len}...");
        let model = setup.train_femux(&cfg);
        let costs =
            eval_femux_fleet(&apps, &model, cfg.cold_start_secs);
        results.push((block_len, rum.evaluate_fleet(&costs)));
    }
    let baseline = results
        .iter()
        .find(|(b, _)| *b == 504)
        .or(results.last())
        .map(|(_, r)| *r)
        .unwrap_or(f64::NAN);
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(b, r)| {
            vec![
                format!("{b} min ({:.1} h)", *b as f64 / 60.0),
                f1(*r),
                delta_pct(*r, baseline),
            ]
        })
        .collect();
    print_table(
        "App. C — block-size sensitivity (paper: <3% RUM spread across \
         7-24 h; 504 min chosen)",
        &["block size", "test RUM", "vs 504 min"],
        &rows,
    );
}

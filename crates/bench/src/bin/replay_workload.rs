//! Wall-clock workload replay (the prototype's FaaSProfiler component).
//!
//! §5.2 drives the Knative deployment with FaaSProfiler: each invocation
//! runs a function that allocates memory and busy-waits its traced
//! execution time. This binary replays the 100-app evaluation subtrace
//! in compressed wall-clock time against real worker threads and reports
//! throughput and end-to-end latency at several capacity levels — the
//! under-provisioned runs show the queuing the lifetime manager exists
//! to avoid.

use femux_bench::table::{f1, print_table};
use femux_bench::Scale;
use femux_knative::{replay, ReplayConfig};
use femux_trace::ops::select_apps;
use femux_trace::split::representative_sample;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps().min(300),
        span_days: 1,
        seed: 0x8E91A,
        max_invocations_per_app: 5_000,
        rate_scale: 0.1,
    });
    // The paper's 100-app representative subtrace.
    let volumes: Vec<u64> = trace
        .apps
        .iter()
        .map(|a| a.invocations.len() as u64)
        .collect();
    let chosen = representative_sample(&volumes, 100.min(volumes.len()), 7);
    let sub = select_apps(&trace, &chosen);
    println!(
        "replaying {} invocations from {} apps (compressed wall clock)\n",
        sub.total_invocations(),
        sub.apps.len()
    );

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let cfg = ReplayConfig {
            speedup: 20_000.0,
            workers,
            max_invocations: match scale {
                Scale::Small => 10_000,
                _ => 40_000,
            },
            ..ReplayConfig::default()
        };
        let res = replay(&sub, &cfg);
        rows.push(vec![
            workers.to_string(),
            res.issued.to_string(),
            res.completed.to_string(),
            f1(res.latency_ms.p50),
            f1(res.latency_ms.p99),
            f1(res.wall.as_secs_f64()),
        ]);
    }
    print_table(
        "Wall-clock replay: capacity vs end-to-end latency (queuing \
         under under-provisioning is real, not simulated)",
        &["workers", "issued", "completed", "p50 ms", "p99 ms", "wall s"],
        &rows,
    );
}

//! Fig. 18 (App. C) — Feature-combination ablation.
//!
//! Trains FeMux with every non-empty subset of the four default block
//! features and reports test RUM. The paper: more features help with
//! diminishing returns; combinations including harmonics (periodicity)
//! do best; complementary features beat individually-strong pairs.

use femux::config::FemuxConfig;
use femux::model::train_from_labels;
use femux::model::{label_fleet, ClassifierKind};
use femux_bench::capacity::eval_femux_fleet;
use femux_bench::table::{f1, print_table};
use femux_bench::{azure_setup, Scale};
use femux_features::FeatureKind;
use femux_rum::RumSpec;
use std::sync::Arc;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let apps = setup.test_apps();
    let base_cfg = setup.femux_config();
    let rum = RumSpec::default_paper();

    // Label once; refit the classifier per feature subset.
    eprintln!("labelling training blocks...");
    let labelled = label_fleet(&setup.train_apps(), &base_cfg);
    eprintln!(
        "{} blocks labelled in {:.1}s",
        labelled.blocks.len(),
        labelled.labelling_secs
    );

    let all = FeatureKind::DEFAULT;
    let mut rows = Vec::new();
    for mask in 1u32..(1 << all.len()) {
        let features: Vec<FeatureKind> = all
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .collect();
        let cfg = FemuxConfig {
            features: features.clone(),
            ..base_cfg.clone()
        };
        let Some(model) =
            train_from_labels(&labelled, &cfg, ClassifierKind::KMeans)
        else {
            continue;
        };
        let costs =
            eval_femux_fleet(&apps, &Arc::new(model), cfg.cold_start_secs);
        let names: Vec<&str> =
            features.iter().map(|f| f.name()).collect();
        rows.push((
            features.len(),
            rum.evaluate_fleet(&costs),
            names.join("+"),
        ));
    }
    rows.sort_by(|a, b| {
        a.0.cmp(&b.0).then(
            a.1.partial_cmp(&b.1).expect("finite RUM"),
        )
    });
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(n, rum_val, name)| {
            vec![n.to_string(), name.clone(), f1(*rum_val)]
        })
        .collect();
    print_table(
        "Fig. 18 — test RUM per feature combination (paper: more \
         features help with diminishing returns; harmonic combinations \
         lead)",
        &["#features", "combination", "test RUM"],
        &table_rows,
    );

    // Highlight the paper's specific observation.
    let find = |name: &str| {
        rows.iter().find(|(_, _, n)| n == name).map(|(_, r, _)| *r)
    };
    if let (Some(dh), Some(sh)) = (
        find("periodicity+density"),
        find("stationarity+periodicity"),
    ) {
        println!(
            "\ndensity+harmonics {dh:.1} vs stationarity+harmonics {sh:.1} \
             (paper: the complementary pair wins)"
        );
    }
}

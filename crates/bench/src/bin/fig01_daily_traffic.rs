//! Fig. 1 — Fleet traffic over the 62-day trace.
//!
//! The paper observes a peak-to-trough span of roughly 60 % on weekdays
//! and 40 % on weekends relative to peak traffic, plus a seasonal
//! January rise. The figure needs intra-day resolution (the daily cycle
//! is what creates the span), so we emit an hourly series computed
//! analytically from the fleet's arrival-rate functions — materializing
//! 1.9 B invocations is neither possible nor necessary here — plus the
//! daily totals.

use femux_bench::table::{pct, print_series, print_table};
use femux_bench::Scale;
use femux_stats::rng::Rng;
use femux_trace::synth::patterns::ArrivalPattern;
use femux_trace::types::{MS_PER_DAY, MS_PER_HOUR};

/// Builds a fleet-level diurnal rate envelope representative of the
/// synthetic IBM fleet's heavy tier (which dominates volume).
fn fleet_pattern(rng: &mut Rng) -> Vec<ArrivalPattern> {
    (0..40)
        .map(|_| ArrivalPattern::Diurnal {
            base_rate: rng.lognormal((15.0f64).ln(), 0.8),
            daily_amp: rng.range_f64(0.40, 0.46),
            weekend_factor: rng.range_f64(0.62, 0.72),
            ramp: rng.range_f64(0.1, 0.4),
            peak_hour: rng.range_f64(10.0, 16.0),
        })
        .collect()
}

fn main() {
    let _obs = femux_bench::obs::session();
    let _ = Scale::from_env();
    let span_days = 62u64;
    let span_ms = span_days * MS_PER_DAY;
    let mut rng = Rng::seed_from_u64(0xF1601);
    let patterns = fleet_pattern(&mut rng);

    // Hourly expected fleet volume.
    let hours = (span_days * 24) as usize;
    let mut hourly = vec![0.0f64; hours];
    for pat in &patterns {
        for (h, slot) in hourly.iter_mut().enumerate() {
            *slot += expected_hourly(pat, h as u64, span_ms);
        }
    }
    let series: Vec<(f64, f64)> = hourly
        .iter()
        .enumerate()
        .step_by(3)
        .map(|(h, &v)| (h as f64 / 24.0, v))
        .collect();
    print_series("fleet traffic per hour (x = day)", &series);

    // Span statistics per the paper's phrasing: peak-to-trough span
    // relative to peak, weekdays vs weekends (computed over the middle
    // fortnight to avoid the seasonal ramp mixing in).
    let mid = &hourly[24 * 28..24 * 42];
    let mut weekday = Vec::new();
    let mut weekend = Vec::new();
    for (h, &v) in mid.iter().enumerate() {
        let day = 28 + h / 24;
        if day % 7 >= 5 {
            weekend.push(v);
        } else {
            weekday.push(v);
        }
    }
    let span = |xs: &[f64]| {
        let peak = xs.iter().cloned().fold(0.0f64, f64::max);
        let trough = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        (peak - trough) / peak
    };
    let peak_all = hourly.iter().cloned().fold(0.0f64, f64::max);
    let weekend_peak = weekend.iter().cloned().fold(0.0f64, f64::max);
    let first: f64 = hourly[..24 * 14].iter().sum::<f64>() / (24.0 * 14.0);
    let last: f64 = hourly[hourly.len() - 24 * 14..].iter().sum::<f64>()
        / (24.0 * 14.0);
    print_table(
        "Fig. 1 summary (paper: weekday peak-to-trough span ~60%, \
         weekend ~40% relative to peak; January seasonal rise)",
        &["metric", "value"],
        &[
            vec!["weekday peak-to-trough span".into(), pct(span(&weekday))],
            vec![
                "weekend peak-to-trough span (vs fleet peak)".into(),
                pct((weekend_peak
                    - weekend
                        .iter()
                        .cloned()
                        .fold(f64::INFINITY, f64::min))
                    / peak_all),
            ],
            vec![
                "weekend peak / weekday peak".into(),
                pct(weekend_peak / peak_all),
            ],
            vec![
                "seasonal growth (last 2wk / first 2wk)".into(),
                pct(last / first),
            ],
        ],
    );
}

/// Expected arrivals of a diurnal pattern within hour `h`.
fn expected_hourly(
    pattern: &ArrivalPattern,
    hour: u64,
    span_ms: u64,
) -> f64 {
    // Evaluate the rate at the hour midpoint and integrate over 3600 s;
    // amplitude error of midpoint integration over an hour is <1 %.
    let ArrivalPattern::Diurnal {
        base_rate,
        daily_amp,
        weekend_factor,
        ramp,
        peak_hour,
    } = pattern
    else {
        return 0.0;
    };
    let t_ms = hour * MS_PER_HOUR + MS_PER_HOUR / 2;
    let day_frac = (t_ms % MS_PER_DAY) as f64 / MS_PER_DAY as f64;
    let peak_frac = peak_hour / 24.0;
    let daily = 1.0
        + daily_amp
            * (2.0 * std::f64::consts::PI * (day_frac - peak_frac)).cos();
    let day_index = t_ms / MS_PER_DAY;
    let weekly = if day_index % 7 >= 5 {
        *weekend_factor
    } else {
        1.0
    };
    let progress = t_ms as f64 / span_ms.max(1) as f64;
    base_rate * daily * weekly * (1.0 + ramp * progress) * 3_600.0
}

//! Fig. 15 (App. B.1) — Cross-dataset workload traffic shares.
//!
//! Left: CDF of each workload's share of total traffic per dataset
//! (Huawei datasets show vertical jumps from timer-triggered workload
//! classes). Right: top-1000 workloads' traffic normalized to the
//! busiest workload — the paper counts >30 IBM workloads at >=10 % of
//! the top workload, vs 18/12/10/7 for the other datasets.

use femux_bench::table::{print_series, print_table};
use femux_stats::rng::Rng;
use femux_trace::synth::compare::all_presets;

fn main() {
    let _obs = femux_bench::obs::session();
    let mut rng = Rng::seed_from_u64(0xF1615);
    let mut rows = Vec::new();
    for preset in all_presets() {
        let shares = preset.sample_traffic_shares(&mut rng);
        // Left: CDF of (share of total traffic).
        let total: f64 = shares.iter().sum();
        let fractions: Vec<f64> =
            shares.iter().map(|s| s / total).collect();
        let ecdf = femux_stats::desc::Ecdf::new(&fractions);
        let xs = femux_stats::desc::log_space(1e-8, 1.0, 30);
        print_series(
            &format!("CDF of per-workload traffic fraction — {}", preset.name),
            &ecdf.curve(&xs),
        );
        // Right: top workloads relative to the maximum.
        let top: Vec<(f64, f64)> = shares
            .iter()
            .take(1_000)
            .enumerate()
            .map(|(rank, &s)| (rank as f64 + 1.0, s))
            .collect();
        print_series(
            &format!("top workloads, share of max — {}", preset.name),
            &top[..top.len().min(50)],
        );
        let ge_10pct = shares.iter().filter(|s| **s >= 0.1).count();
        rows.push(vec![preset.name.to_string(), ge_10pct.to_string()]);
    }
    print_table(
        "Fig. 15 summary: workloads at >=10% of the busiest workload \
         (paper: IBM >30; Huawei'22 18; Azure'19 12; Azure'21 10; Huawei'24 7)",
        &["dataset", ">=10% of max"],
        &rows,
    );
}

//! Records the committed serving-capacity baseline
//! (`BENCH_serve.json` at the repository root).
//!
//! Binary-searches the largest synthetic fleet one serving shard (one
//! worker thread ≈ one vCPU) can sustain under a per-tick latency SLO.
//! A tick is one virtual trace minute: every app on the shard ingests
//! its sample, maintains incremental features, forecasts, and emits a
//! pod target. The SLO is a p99 per-tick wall budget far below the 60 s
//! a real-time deployment would have, so the recorded `max_apps` is a
//! conservative apps-per-vCPU figure comparable to the paper's claim
//! that FeMux serves 1,200+ applications per vCPU.
//!
//! Two cases, `quick` (CI-sized) and `full`, are recorded with
//! identical search logic but different fleet caps and step counts.
//! `--quick` runs (and `--compare`s) only the `quick` case, so the CI
//! gate diffs like against like.
//!
//! Usage: `serve_capacity [--quick] [--schema-only] [--out PATH]
//! [--check PATH] [--compare PATH [--tolerance T]]`
//!
//! - `--quick`: run only the `quick` case.
//! - `--schema-only`: skip the probes and zero the measured fields —
//!   everything left is deterministic, so two runs diff clean.
//! - `--out PATH`: write the document to PATH instead of stdout.
//! - `--check PATH`: validate that the committed baseline carries the
//!   current schema version, both cases, and the measured fields;
//!   exits nonzero on drift without probing anything.
//! - `--compare PATH`: probe fresh and diff `max_apps` against the
//!   baseline, case by case; exits nonzero if any case falls below
//!   `baseline × (1 − tolerance)`. `--tolerance` defaults to 0.6 —
//!   wide, because CI machines differ from the recording machine; the
//!   gate catches collapses, not noise.

use std::fmt::Write as _;
use std::sync::Arc;

use femux::config::FemuxConfig;
use femux::model::{train, ClassifierKind, FemuxModel, TrainApp};
use femux_serve::harness::{run, ServeConfig};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use femux_trace::types::Trace;

const SCHEMA: &str = "femux-bench-serve/v1";
/// p99 per-tick wall budget in µs. A tick is one virtual minute, so a
/// real deployment's budget would be 60 s; 25 ms (0.04 % of that) keeps
/// the probe honest about steady-state cost rather than scheduler
/// noise.
const SLO_P99_US: u64 = 25_000;

/// Search parameters for one recorded case.
struct Mode {
    name: &'static str,
    /// Largest fleet the search will try.
    cap: usize,
    /// Binary-search resolution in apps.
    granularity: usize,
    /// Virtual minutes served per probe (multiple of the test-config
    /// block length, so every probe crosses block boundaries).
    steps: usize,
}

const MODES: [Mode; 2] = [
    Mode {
        name: "quick",
        cap: 4_096,
        granularity: 64,
        steps: 240,
    },
    Mode {
        name: "full",
        cap: 16_384,
        granularity: 128,
        steps: 360,
    },
];

struct CaseRecord {
    mode: &'static str,
    cap: usize,
    steps: usize,
    slo_p99_us: u64,
    /// Largest fleet that met the SLO (the apps-per-vCPU figure).
    max_apps: usize,
    /// p99 tick latency at `max_apps`, µs.
    p99_us: u64,
    /// Whether the search hit `cap` without violating the SLO.
    capped: bool,
    probes: usize,
}

/// A dense IBM-like fleet truncated to `steps` virtual minutes. Probes
/// at different sizes share the seed, so growing the fleet only adds
/// apps — it never perturbs the ones already present.
fn fleet(n_apps: usize, steps: usize) -> Trace {
    let span_ms = steps as u64 * 60_000;
    let mut trace = generate(&IbmFleetConfig {
        n_apps,
        span_days: 1,
        seed: 0x5E47E,
        max_invocations_per_app: 400,
        rate_scale: 0.05,
    });
    for app in &mut trace.apps {
        app.invocations.retain(|inv| inv.start_ms < span_ms);
    }
    trace.span_ms = span_ms;
    trace
}

/// One shared model: the capacity question is about serving cost, not
/// training, so every probe reuses it.
fn model() -> Arc<FemuxModel> {
    let cfg = FemuxConfig::for_tests();
    let apps: Vec<TrainApp> = (0..32)
        .map(|i| TrainApp {
            concurrency: (0..600)
                .map(|t| {
                    2.0 + (t as f64 * (0.07 + i as f64 * 0.03)).sin()
                })
                .collect(),
            exec_secs: 0.5,
            mem_gb: 0.5,
            pod_concurrency: 1,
        })
        .collect();
    Arc::new(
        train(&apps, &cfg, ClassifierKind::KMeans)
            .expect("synthetic training fleet is trainable"),
    )
}

/// Nearest-rank p99 over the shard's per-tick wall latencies.
fn p99_us(ticks: &[u64]) -> u64 {
    assert!(!ticks.is_empty(), "a probe must serve at least one tick");
    let mut sorted = ticks.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() as f64 * 0.99).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

/// Serves `n_apps` on a single shard and returns the p99 tick latency.
fn probe(n_apps: usize, steps: usize, model: &Arc<FemuxModel>) -> u64 {
    let trace = fleet(n_apps, steps);
    let report = run(
        &trace,
        Arc::clone(model),
        &ServeConfig {
            shards: 1,
            measure_latency: true,
            ..ServeConfig::default()
        },
    )
    .expect("synthetic traces are time-sorted");
    p99_us(&report.tick_wall_us[0])
}

/// Doubling search up to the first SLO violation (or the cap), then
/// bisection down to `granularity` apps.
fn run_case(mode: &Mode, schema_only: bool) -> CaseRecord {
    if schema_only {
        return CaseRecord {
            mode: mode.name,
            cap: mode.cap,
            steps: mode.steps,
            slo_p99_us: SLO_P99_US,
            max_apps: 0,
            p99_us: 0,
            capped: false,
            probes: 0,
        };
    }
    let model = model();
    let mut probes = 0;
    let mut good = 0usize;
    let mut good_p99 = 0u64;
    let mut bad = None;
    let mut n = mode.granularity;
    while n <= mode.cap {
        let p99 = probe(n, mode.steps, &model);
        probes += 1;
        eprintln!(
            "{}: {n} apps -> p99 {p99} us ({})",
            mode.name,
            if p99 <= SLO_P99_US { "ok" } else { "over SLO" }
        );
        if p99 <= SLO_P99_US {
            good = n;
            good_p99 = p99;
            n *= 2;
        } else {
            bad = Some(n);
            break;
        }
    }
    if let Some(mut hi) = bad {
        while hi - good > mode.granularity {
            let mid = good + (hi - good) / 2;
            let p99 = probe(mid, mode.steps, &model);
            probes += 1;
            eprintln!(
                "{}: {mid} apps -> p99 {p99} us ({})",
                mode.name,
                if p99 <= SLO_P99_US { "ok" } else { "over SLO" }
            );
            if p99 <= SLO_P99_US {
                good = mid;
                good_p99 = p99;
            } else {
                hi = mid;
            }
        }
    }
    CaseRecord {
        mode: mode.name,
        cap: mode.cap,
        steps: mode.steps,
        slo_p99_us: SLO_P99_US,
        max_apps: good,
        p99_us: good_p99,
        capped: bad.is_none() && good > 0,
        probes,
    }
}

fn render(cases: &[CaseRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str("  \"cases\": [");
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"mode\": \"{}\", \"cap\": {}, \"steps\": {}, \
             \"slo_p99_us\": {}, \"max_apps\": {}, \"p99_us\": {}, \
             \"capped\": {}, \"probes\": {}}}",
            c.mode,
            c.cap,
            c.steps,
            c.slo_p99_us,
            c.max_apps,
            c.p99_us,
            c.capped,
            c.probes,
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Validates the committed baseline's shape: schema version, both
/// cases, and the measured fields.
fn check(text: &str) -> Result<(), String> {
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("schema marker missing (expected {SCHEMA})"));
    }
    for mode in &MODES {
        let needle = format!("\"mode\": \"{}\"", mode.name);
        if !text.contains(&needle) {
            return Err(format!("case missing: {needle}"));
        }
    }
    for field in ["\"max_apps\":", "\"p99_us\":", "\"slo_p99_us\":"] {
        let n = text.matches(field).count();
        if n != MODES.len() {
            return Err(format!(
                "{field} appears {n} times, expected {}",
                MODES.len()
            ));
        }
    }
    Ok(())
}

/// The baseline's `max_apps` for one case, by mode lookup.
fn baseline_max_apps(text: &str, mode: &str) -> Option<usize> {
    let needle = format!("\"mode\": \"{mode}\"");
    let rest = &text[text.find(&needle)?..];
    let rest = &rest[..rest.find('}')?];
    let pat = "\"max_apps\": ";
    let start = rest.find(pat)? + pat.len();
    let num: String = rest[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    num.parse().ok()
}

/// Diffs fresh capacities against the committed baseline. Returns the
/// regressed case labels (fresh below `baseline × (1 − tolerance)`).
fn compare(
    baseline: &str,
    fresh: &[CaseRecord],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let mut regressions = Vec::new();
    println!(
        "{:<8} {:>14} {:>12} {:>7}",
        "mode", "baseline apps", "fresh apps", "ratio"
    );
    for c in fresh {
        let base = baseline_max_apps(baseline, c.mode).ok_or_else(
            || {
                format!(
                    "baseline lacks case {} (re-record it?)",
                    c.mode
                )
            },
        )?;
        let ratio = if base > 0 {
            c.max_apps as f64 / base as f64
        } else {
            1.0
        };
        println!(
            "{:<8} {:>14} {:>12} {:>7.2}",
            c.mode, base, c.max_apps, ratio
        );
        let floor = (base as f64 * (1.0 - tolerance)) as usize;
        if base > 0 && c.max_apps < floor {
            regressions.push(format!(
                "{}: {} apps vs baseline {} (floor {})",
                c.mode, c.max_apps, base, floor,
            ));
        }
    }
    Ok(regressions)
}

fn run_all_cases(quick: bool, schema_only: bool) -> Vec<CaseRecord> {
    MODES
        .iter()
        .filter(|m| !quick || m.name == "quick")
        .map(|m| run_case(m, schema_only))
        .collect()
}

fn main() {
    let mut quick = false;
    let mut schema_only = false;
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut tolerance = 0.6f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--schema-only" => schema_only = true,
            "--out" => {
                out_path = Some(args.next().expect("--out needs a path"));
            }
            "--check" => {
                check_path =
                    Some(args.next().expect("--check needs a path"));
            }
            "--compare" => {
                compare_path =
                    Some(args.next().expect("--compare needs a path"));
            }
            "--tolerance" => {
                tolerance = args
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance needs a number in [0, 1)");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    if let Some(path) = check_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match check(&text) {
            Ok(()) => {
                println!("{path}: schema {SCHEMA} ok");
                return;
            }
            Err(msg) => {
                eprintln!("{path}: schema drift: {msg}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = compare_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        if let Err(msg) = check(&baseline) {
            eprintln!("{path}: schema drift: {msg}");
            std::process::exit(1);
        }
        let fresh = run_all_cases(quick, false);
        match compare(&baseline, &fresh, tolerance) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "{path}: all {} cases within tolerance {tolerance}",
                    fresh.len()
                );
                return;
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!("capacity regression: {r}");
                }
                std::process::exit(1);
            }
            Err(msg) => {
                eprintln!("{path}: {msg}");
                std::process::exit(1);
            }
        }
    }

    let cases = run_all_cases(quick, schema_only);
    let doc = render(&cases);
    if !quick {
        debug_assert!(check(&doc).is_ok(), "self-check must pass");
    }
    match out_path {
        Some(path) => {
            std::fs::write(&path, &doc)
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{doc}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_doc(apps: usize) -> String {
        let cases: Vec<CaseRecord> = MODES
            .iter()
            .map(|m| CaseRecord {
                mode: m.name,
                cap: m.cap,
                steps: m.steps,
                slo_p99_us: SLO_P99_US,
                max_apps: apps,
                p99_us: 1_000,
                capped: false,
                probes: 7,
            })
            .collect();
        render(&cases)
    }

    #[test]
    fn self_check_accepts_the_rendered_doc() {
        assert!(check(&fake_doc(1_024)).is_ok());
    }

    #[test]
    fn check_rejects_a_missing_case() {
        let doc = fake_doc(1_024)
            .replace("\"mode\": \"full\"", "\"mode\": \"gone\"");
        assert!(check(&doc).unwrap_err().contains("case missing"));
    }

    #[test]
    fn baseline_lookup_finds_each_case() {
        let doc = fake_doc(1_024);
        for mode in &MODES {
            assert_eq!(baseline_max_apps(&doc, mode.name), Some(1_024));
        }
        assert_eq!(baseline_max_apps(&doc, "no-such-mode"), None);
    }

    #[test]
    fn compare_flags_only_cases_below_the_tolerance_floor() {
        let baseline = fake_doc(1_000);
        let fresh: Vec<CaseRecord> = MODES
            .iter()
            .map(|m| CaseRecord {
                mode: m.name,
                cap: m.cap,
                steps: m.steps,
                slo_p99_us: SLO_P99_US,
                // quick collapses, full stays inside the band.
                max_apps: if m.name == "quick" { 100 } else { 900 },
                p99_us: 1_000,
                capped: false,
                probes: 7,
            })
            .collect();
        let regressions = compare(&baseline, &fresh, 0.6).unwrap();
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("quick"));
        assert!(compare(&baseline, &fresh, 0.95).unwrap().is_empty());
    }

    #[test]
    fn p99_is_nearest_rank() {
        let ticks: Vec<u64> = (1..=100).collect();
        assert_eq!(p99_us(&ticks), 99);
        assert_eq!(p99_us(&[5]), 5);
    }
}

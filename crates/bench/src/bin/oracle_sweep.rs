//! Differential-oracle sweep (CI gate).
//!
//! Replays synthetic IBM and Azure application streams — plus the
//! adversarial and fuzz batteries — through both the production engine
//! and the per-millisecond reference simulator under every policy ×
//! interval combination, demanding exact `f64` agreement on every
//! observable and checking the metamorphic invariants. Any divergence
//! is shrunk to a minimal counterexample (seed + app + first divergent
//! tick) and fails the run.
//!
//! Usage: `oracle_sweep [seed]` (default 0x04AC1E). The report is
//! byte-identical at any `FEMUX_THREADS` setting.

use femux_oracle::{run_sweep, SweepConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| {
            s.parse::<u64>()
                .expect("seed must be an unsigned integer")
        })
        .unwrap_or(0x04AC1E);

    // Two independent seeds double trace coverage cheaply: the second
    // regenerates entirely different synthetic fleets and fuzz apps.
    for (label, seed) in [("primary", seed), ("shifted", seed ^ 0x5EED)] {
        let report = run_sweep(&SweepConfig::thorough(seed));
        print!("[{label}] {}", report.render());
        if !report.is_clean() {
            std::process::exit(1);
        }
    }
}

//! Fig. 4 — Within-workload execution-time variability.
//!
//! The paper reports the median of per-workload *average* execution time
//! at ~10 ms while the median of per-workload *p99* execution time is
//! ~800 ms — nearly two orders of magnitude of within-app spread.

use femux_bench::table::{f1, print_series, print_table};
use femux_bench::Scale;
use femux_stats::desc::{log_space, mean, median, quantile, Ecdf};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use femux_trace::WorkloadKind;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps(),
        span_days: 2,
        seed: 0xF1604,
        max_invocations_per_app: 20_000,
        rate_scale: 0.3,
    });
    let mut means_ms = Vec::new();
    let mut p50s_ms = Vec::new();
    let mut p99s_ms = Vec::new();
    for app in &trace.apps {
        if app.kind == WorkloadKind::BatchJob || app.invocations.len() < 20
        {
            continue;
        }
        let durs = app.durations_secs();
        means_ms.push(mean(&durs) * 1_000.0);
        p50s_ms.push(median(&durs).expect("non-empty") * 1_000.0);
        p99s_ms.push(quantile(&durs, 0.99).expect("non-empty") * 1_000.0);
    }
    let xs = log_space(0.1, 1e6, 40);
    print_series(
        "CDF of per-workload mean exec (ms)",
        &Ecdf::new(&means_ms).curve(&xs),
    );
    print_series(
        "CDF of per-workload p50 exec (ms)",
        &Ecdf::new(&p50s_ms).curve(&xs),
    );
    print_series(
        "CDF of per-workload p99 exec (ms)",
        &Ecdf::new(&p99s_ms).curve(&xs),
    );
    print_table(
        "Fig. 4 summary (paper: median of means ~10 ms, median of p99s ~800 ms)",
        &["metric", "ms"],
        &[
            vec![
                "median of per-workload mean".into(),
                f1(median(&means_ms).unwrap_or(f64::NAN)),
            ],
            vec![
                "median of per-workload p50".into(),
                f1(median(&p50s_ms).unwrap_or(f64::NAN)),
            ],
            vec![
                "median of per-workload p99".into(),
                f1(median(&p99s_ms).unwrap_or(f64::NAN)),
            ],
        ],
    );
}

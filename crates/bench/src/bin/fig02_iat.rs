//! Fig. 2 — Inter-arrival-time distributions.
//!
//! Left: CDFs of per-workload median and p99 IATs (the gap evidences
//! intermittency). Right: CDF over all IATs — the paper reports 94.5 %
//! sub-second and 99.8 % sub-minute, with >96 % of workloads at CV > 1.

use femux_bench::table::{pct, print_series, print_table};
use femux_bench::Scale;
use femux_stats::desc::{
    coefficient_of_variation, log_space, median, quantile, Ecdf,
};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    // IAT marginals need unscaled rates (rate_scale alters IATs); volume
    // is bounded with the per-app cap and a short span instead.
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps(),
        span_days: 2,
        seed: 0xF1602,
        max_invocations_per_app: 50_000,
        rate_scale: 1.0,
    });

    let mut medians = Vec::new();
    let mut p99s = Vec::new();
    let mut all_iats = Vec::new();
    let mut high_cv = 0usize;
    let mut counted = 0usize;
    for app in &trace.apps {
        let iats = app.iats_secs();
        if iats.len() < 5 {
            continue;
        }
        counted += 1;
        medians.push(median(&iats).expect("non-empty"));
        p99s.push(quantile(&iats, 0.99).expect("non-empty"));
        if coefficient_of_variation(&iats) > 1.0 {
            high_cv += 1;
        }
        all_iats.extend(iats);
    }
    let xs = log_space(1e-3, 1e5, 40);
    print_series(
        "CDF of per-workload median IAT (s)",
        &Ecdf::new(&medians).curve(&xs),
    );
    print_series(
        "CDF of per-workload p99 IAT (s)",
        &Ecdf::new(&p99s).curve(&xs),
    );
    let all = Ecdf::new(&all_iats);
    print_series("CDF over all IATs (s)", &all.curve(&xs));

    print_table(
        "Fig. 2 summary (paper: 94.5% sub-second IATs, 99.8% sub-minute, \
         46%/86% of workloads sub-second/sub-minute median, 96% CV>1)",
        &["metric", "value"],
        &[
            vec![
                "invocation IATs < 1 s".into(),
                pct(all.fraction_at_or_below(1.0)),
            ],
            vec![
                "invocation IATs < 60 s".into(),
                pct(all.fraction_at_or_below(60.0)),
            ],
            vec![
                "workloads with median IAT < 1 s".into(),
                pct(Ecdf::new(&medians).fraction_at_or_below(1.0)),
            ],
            vec![
                "workloads with median IAT < 60 s".into(),
                pct(Ecdf::new(&medians).fraction_at_or_below(60.0)),
            ],
            vec![
                "workloads with IAT CV > 1".into(),
                pct(high_cv as f64 / counted.max(1) as f64),
            ],
        ],
    );
}

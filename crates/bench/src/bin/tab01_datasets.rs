//! Table 1 — Comparison of serverless datasets.
//!
//! The qualitative rows are fixed facts about the public datasets; the
//! IBM column's volume figures are computed from the synthetic fleet at
//! the configured scale (the real trace's totals are shown in
//! parentheses in the header row of the paper).

use femux_bench::table::print_table;
use femux_bench::Scale;
use femux_trace::synth::compare::all_presets;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let rows: Vec<Vec<String>> = vec![
        vec![
            "Req. time accuracy".into(),
            "min".into(),
            "ms".into(),
            "min".into(),
            "min*".into(),
            "ms".into(),
        ],
        vec![
            "Execution durations".into(),
            "ms (daily)".into(),
            "ms (per req.)".into(),
            "N/A".into(),
            "us (per min.)".into(),
            "ms (per req.)".into(),
        ],
        vec![
            "Platform delay".into(),
            "N/A".into(),
            "N/A".into(),
            "N/A".into(),
            "us".into(),
            "ms".into(),
        ],
        vec![
            "CPU/mem allocation".into(),
            "no".into(),
            "no".into(),
            "no".into(),
            "yes".into(),
            "yes".into(),
        ],
        vec![
            "Concurrency & min-scale".into(),
            "N/A".into(),
            "N/A".into(),
            "N/A".into(),
            "no".into(),
            "yes".into(),
        ],
        vec![
            "Scale up/down events".into(),
            "no".into(),
            "no".into(),
            "no".into(),
            "yes/no".into(),
            "yes".into(),
        ],
        vec![
            "Duration (days)".into(),
            "14".into(),
            "14".into(),
            "26".into(),
            "31".into(),
            "62".into(),
        ],
        vec![
            "Total invocations".into(),
            "12.5 B".into(),
            "2 M".into(),
            "2.5 B".into(),
            "85 B".into(),
            "1.9 B".into(),
        ],
        vec![
            "Open-source platform".into(),
            "no".into(),
            "no".into(),
            "no".into(),
            "no".into(),
            "yes (Knative)".into(),
        ],
    ];
    let headers: Vec<&str> = std::iter::once("field")
        .chain(all_presets().iter().map(|p| p.name))
        .collect::<Vec<_>>();
    print_table("Table 1 — dataset comparison", &headers, &rows);

    // The synthetic stand-in's own totals at this scale.
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps(),
        span_days: 2,
        seed: 0x7AB01,
        max_invocations_per_app: 20_000,
        rate_scale: 0.3,
    });
    print_table(
        "Synthetic IBM stand-in at this scale",
        &["metric", "value"],
        &[
            vec!["workloads".into(), trace.apps.len().to_string()],
            vec![
                "materialized invocations".into(),
                trace.total_invocations().to_string(),
            ],
            vec!["span (days)".into(), trace.span_days().to_string()],
        ],
    );
}

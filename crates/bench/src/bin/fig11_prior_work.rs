//! Fig. 11 — FeMux vs prior work, each on its own metrics.
//!
//! Left: FaasCache (greedy-dual cache, swept cache sizes) vs FeMux
//! variants on cold starts vs wasted memory — every FeMux variant should
//! be Pareto-better (paper: FeMux-CS cuts cold starts >64 % vs the
//! 300 GB cache; FeMux cuts RUM 30 % vs the 270 GB cache).
//!
//! Middle: IceBreaker's metrics — service time and keep-alive cost
//! normalized to a 10-minute keep-alive (paper: FeMux-Mem 40 % vs
//! IceBreaker 48 % of the KA cost; service times +170 % vs +266 %;
//! RUM −42 %).
//!
//! Right: Aquatope's metrics — aggregate cold-start percentage and
//! memory allocation normalized to the 10-minute keep-alive (paper:
//! Aquatope allocates 114 % more memory than the 10-min KA with 0.47 %
//! cold starts; all FeMux variants do better on both; RUM −78 %).
//!
//! All systems replay the same held-out Azure-like applications through
//! request-level simulation with a fixed 808 ms cold start.

use std::sync::Arc;

use femux::config::FemuxConfig;
use femux::manager::FemuxPolicy;
use femux_baselines::aquatope::AquatopePolicy;
use femux_baselines::faascache::{self, FaasCacheConfig};
use femux_baselines::icebreaker::IceBreakerPolicy;
use femux_bench::table::{delta_pct, f1, pct, print_table};
use femux_bench::{azure_setup, Scale};
use femux_rum::{CostRecord, RumSpec};
use femux_sim::{run_fleet_auto, KeepAlivePolicy, SimConfig};
use femux_trace::repr::counts_per_minute;
use femux_trace::Trace;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    // Materialize the held-out test apps as a millisecond trace
    // (concurrency 1 / single-function apps, as in the paper's
    // FaasCache comparison).
    let full = setup.fleet.to_trace();
    let mut test_trace = Trace::new(full.span_ms);
    for &i in &setup.split.test {
        test_trace.apps.push(full.apps[i].clone());
    }
    let sim_cfg = SimConfig {
        respect_min_scale: false,
        ..SimConfig::default()
    };
    let rum = RumSpec::default_paper();

    // --- FeMux variants (trained once each on the train split). ---
    let variants: Vec<(&str, FemuxConfig)> = vec![
        ("femux", with_scale(&setup, FemuxConfig::default())),
        ("femux-cs", with_scale(&setup, FemuxConfig::cs_variant())),
        ("femux-mem", with_scale(&setup, FemuxConfig::mem_variant())),
    ];
    let mut femux_results: Vec<(String, Vec<CostRecord>)> = Vec::new();
    for (name, cfg) in &variants {
        eprintln!("training {name}...");
        let model = setup.train_femux(cfg);
        let out = run_fleet_auto(&test_trace, &sim_cfg, |_, app| {
            Box::new(FemuxPolicy::new(
                Arc::clone(&model),
                app.invocations
                    .first()
                    .map(|i| i.duration_ms as f64 / 1_000.0)
                    .unwrap_or(1.0),
            ))
        });
        femux_results.push((name.to_string(), out.per_app));
    }

    // --- Panel 1: FaasCache cache-size sweep. ---
    let fleet_mem_gb: f64 = test_trace
        .apps
        .iter()
        .map(|a| a.mem_used_mb as f64 / 1_024.0)
        .sum();
    let mut rows = Vec::new();
    for frac in [0.6, 0.75, 0.9] {
        let capacity_gb = fleet_mem_gb * frac;
        let res = faascache::simulate(
            &test_trace,
            &FaasCacheConfig {
                capacity_gb,
                cold_start_ms: 808,
            },
        );
        rows.push(vec![
            format!("faascache-{capacity_gb:.1}GB"),
            res.total.cold_starts.to_string(),
            f1(res.total.wasted_gb_seconds),
            f1(rum.evaluate_fleet(&res.per_app)),
        ]);
    }
    for (name, per_app) in &femux_results {
        let total = femux_rum::aggregate(per_app.iter());
        rows.push(vec![
            name.clone(),
            total.cold_starts.to_string(),
            f1(total.wasted_gb_seconds),
            f1(rum.evaluate_fleet(per_app.iter())),
        ]);
    }
    print_table(
        "Fig. 11-Left — FeMux vs FaasCache (paper: FeMux Pareto-better; \
         RUM -30% vs mid cache)",
        &["system", "cold starts", "wasted GB-s", "RUM"],
        &rows,
    );

    // --- Panel 2: IceBreaker, normalized to the 10-minute keep-alive. --
    let ka10 = run_fleet_auto(&test_trace, &sim_cfg, |_, _| {
        Box::new(KeepAlivePolicy::ten_minutes())
    });
    let ice = run_fleet_auto(&test_trace, &sim_cfg, |_, _| {
        Box::new(IceBreakerPolicy::new())
    });
    let femux_mem = femux_results
        .iter()
        .find(|(n, _)| n == "femux-mem")
        .expect("variant ran");
    let femux_mem_total = femux_rum::aggregate(femux_mem.1.iter());
    let norm_rows = vec![
        panel2_row("keepalive-10min", &ka10.total, &ka10.total),
        panel2_row("icebreaker", &ice.total, &ka10.total),
        panel2_row("femux-mem", &femux_mem_total, &ka10.total),
    ];
    print_table(
        "Fig. 11-Middle — IceBreaker metrics (paper: keep-alive cost \
         48% (IceBreaker) vs 40% (FeMux-Mem) of 10-min KA; service time \
         +266% vs +170%)",
        &[
            "system",
            "service s",
            "vs KA10 service",
            "alloc GB-s (KA cost)",
            "vs KA10 alloc",
        ],
        &norm_rows,
    );
    println!(
        "RUM: icebreaker {:.1}, femux-mem {:.1} ({} vs icebreaker)",
        rum.evaluate_fleet(&ice.per_app),
        rum.evaluate_fleet(femux_mem.1.iter()),
        delta_pct(
            rum.evaluate_fleet(femux_mem.1.iter()),
            rum.evaluate_fleet(&ice.per_app)
        )
    );

    // --- Panel 3: Aquatope (per-app LSTM, trained on the first 7/12 of
    // the trace). ---
    eprintln!("training {} per-app LSTMs...", test_trace.apps.len());
    let train_ms = test_trace.span_ms * 7 / 12;
    let aqua = run_fleet_auto(&test_trace, &sim_cfg, |i, app| {
        let counts = counts_per_minute(&app.invocations, train_ms);
        let (policy, _) = AquatopePolicy::train(&counts, 0xAC0A + i as u64);
        Box::new(policy)
    });
    let mut rows3 = vec![
        panel3_row("keepalive-10min", &ka10.total, &ka10.total),
        panel3_row("aquatope", &aqua.total, &ka10.total),
    ];
    for (name, per_app) in &femux_results {
        let total = femux_rum::aggregate(per_app.iter());
        rows3.push(panel3_row(name, &total, &ka10.total));
    }
    print_table(
        "Fig. 11-Right — Aquatope metrics (paper: Aquatope allocates \
         114% more than 10-min KA at 0.47% cold starts; every FeMux \
         variant allocates less with fewer cold starts; RUM -78%)",
        &["system", "cold-start %", "alloc vs KA10", "RUM"],
        &rows3,
    );
    println!(
        "RUM: aquatope {:.1}, femux {:.1} ({} vs aquatope)",
        rum.evaluate_fleet(&aqua.per_app),
        rum.evaluate_fleet(femux_results[0].1.iter()),
        delta_pct(
            rum.evaluate_fleet(femux_results[0].1.iter()),
            rum.evaluate_fleet(&aqua.per_app)
        )
    );
}

fn with_scale(
    setup: &femux_bench::EvalSetup,
    cfg: FemuxConfig,
) -> FemuxConfig {
    // Inherit the scale-appropriate block/history settings while keeping
    // the variant's RUM and feature set.
    let base = setup.femux_config();
    FemuxConfig {
        block_len: base.block_len,
        history: base.history,
        label_stride: base.label_stride,
        ..cfg
    }
}

fn panel2_row(
    name: &str,
    total: &CostRecord,
    baseline: &CostRecord,
) -> Vec<String> {
    vec![
        name.into(),
        f1(total.service_seconds),
        delta_pct(total.service_seconds, baseline.service_seconds),
        f1(total.allocated_gb_seconds),
        delta_pct(
            total.allocated_gb_seconds,
            baseline.allocated_gb_seconds,
        ),
    ]
}

fn panel3_row(
    name: &str,
    total: &CostRecord,
    baseline: &CostRecord,
) -> Vec<String> {
    let rum = RumSpec::default_paper();
    vec![
        name.into(),
        pct(total.cold_start_fraction()),
        delta_pct(
            total.allocated_gb_seconds,
            baseline.allocated_gb_seconds,
        ),
        f1(rum.evaluate(total)),
    ]
}

//! Fig. 16 (App. B.2) — The benefit of long traces.
//!
//! Two example workloads over the full 62-day span: workload A shows
//! daily/weekly periodicity with a rising January trend; workload B
//! shows a multi-week seasonal surge (75k-100k req/h peaks) before
//! settling back to its standard 25k-50k peaks. A two-week window would
//! miss both behaviours.

use femux_bench::table::print_series;
use femux_trace::synth::patterns::{
    expected_daily_counts, ArrivalPattern,
};
use femux_trace::types::MS_PER_DAY;

fn main() {
    let _obs = femux_bench::obs::session();
    let span_ms = 62 * MS_PER_DAY;

    // Workload A: diurnal + weekly structure with a slow ramp.
    let a = ArrivalPattern::Diurnal {
        base_rate: 8.0,
        daily_amp: 0.5,
        weekend_factor: 0.55,
        ramp: 0.6,
        peak_hour: 14.0,
    };
    let daily_a = expected_daily_counts(&a, span_ms);
    print_series(
        "workload A — daily invocations (ramping diurnal/weekly)",
        &daily_a
            .iter()
            .enumerate()
            .map(|(d, &c)| (d as f64, c))
            .collect::<Vec<_>>(),
    );

    // Workload B: standard traffic with a two-week seasonal surge
    // starting on New Year's Day (day 10 of the trace window).
    let base = ArrivalPattern::Diurnal {
        base_rate: 10.0,
        daily_amp: 0.4,
        weekend_factor: 0.8,
        ramp: 0.0,
        peak_hour: 11.0,
    };
    let mut daily_b = expected_daily_counts(&base, span_ms);
    for (d, v) in daily_b.iter_mut().enumerate() {
        if (10..24).contains(&d) {
            *v *= 2.8; // seasonal surge
        }
    }
    print_series(
        "workload B — daily invocations (early-January surge)",
        &daily_b
            .iter()
            .enumerate()
            .map(|(d, &c)| (d as f64, c))
            .collect::<Vec<_>>(),
    );

    // Quantify what a 14-day window would have concluded.
    let first_two_weeks: f64 = daily_b[..14].iter().sum::<f64>() / 14.0;
    let rest: f64 = daily_b[14..].iter().sum::<f64>()
        / (daily_b.len() - 14) as f64;
    println!(
        "\nworkload B: mean daily volume in days 0-13 = {first_two_weeks:.0}, \
         days 14+ = {rest:.0} — a 14-day trace overestimates steady load by \
         {:.0}%",
        100.0 * (first_two_weeks - rest) / rest
    );
}

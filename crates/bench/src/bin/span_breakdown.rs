//! Latency attribution per policy: where does platform delay come
//! from?
//!
//! Runs the dense IBM fleet and the bursty Azure fleet under three
//! policies with every invocation's lifecycle span sampled (rate 1),
//! then aggregates the causal segments: queue wait (joining a pod that
//! was already warming), cold wait (a fresh spawn paid in full), and
//! the warm-admission share broken down by pod provenance. The span
//! layer's exact-accounting contract (segment sum ≡ engine delay,
//! enforced bitwise by `tests/span_determinism.rs`) means the shares
//! printed here decompose the *same* delay numbers every other
//! experiment reports — not a parallel estimate.
//!
//! The EXPERIMENTS.md "latency breakdown" table is this binary's
//! output.

use femux_bench::table::{f1, pct, print_table};
use femux_obs::span::{SpanConfig, WaitCause};
use femux_sim::{
    simulate_app, FixedPolicy, KeepAlivePolicy, KnativeDefaultPolicy,
    ScalingPolicy, SimConfig, SimResult,
};
use femux_trace::synth::azure::{self, AzureFleetConfig};
use femux_trace::synth::ibm::{self, IbmFleetConfig};
use femux_trace::types::Trace;

/// Causal segment totals over one (fleet, policy) run.
#[derive(Default)]
struct Tally {
    invocations: u64,
    queue_ms: u64,
    cold_ms: u64,
    exec_ms: u64,
    warm: u64,
    warm_min_scale_pods: u64,
    warm_reactive_pods: u64,
    warm_proactive_pods: u64,
    joined: u64,
    fresh: u64,
    evicted: u64,
    saturated: u64,
}

impl Tally {
    fn add(&mut self, res: &SimResult) {
        for span in &res.spans {
            self.invocations += 1;
            self.queue_ms += span.queue_wait_ms;
            self.cold_ms += span.cold_wait_ms;
            self.exec_ms += span.exec_ms;
            match span.cause {
                WaitCause::Warm {
                    min_scale,
                    reactive,
                    proactive,
                    ..
                } => {
                    self.warm += 1;
                    self.warm_min_scale_pods += min_scale;
                    self.warm_reactive_pods += reactive;
                    self.warm_proactive_pods += proactive;
                }
                WaitCause::JoinedWarmingPod { .. } => self.joined += 1,
                WaitCause::FreshSpawn { .. } => self.fresh += 1,
                WaitCause::Evicted { .. } => self.evicted += 1,
                WaitCause::Saturated => self.saturated += 1,
            }
        }
    }

    fn row(&self, fleet: &str, policy: &str) -> Vec<String> {
        let n = self.invocations.max(1) as f64;
        let wait_ms = (self.queue_ms + self.cold_ms) as f64;
        vec![
            fleet.to_string(),
            policy.to_string(),
            self.invocations.to_string(),
            f1(wait_ms / n),
            f1(self.queue_ms as f64 / n),
            f1(self.cold_ms as f64 / n),
            pct(self.warm as f64 / n),
            pct(self.joined as f64 / n),
            pct(self.fresh as f64 / n),
        ]
    }
}

fn policies() -> Vec<(&'static str, fn() -> Box<dyn ScalingPolicy>)> {
    vec![
        ("keepalive-10min", || {
            Box::new(KeepAlivePolicy::ten_minutes())
        }),
        ("knative-default", || Box::new(KnativeDefaultPolicy)),
        ("fixed-1", || Box::new(FixedPolicy(1))),
    ]
}

fn fleets(quick: bool) -> Vec<(&'static str, Trace)> {
    let dense = ibm::generate(&IbmFleetConfig {
        n_apps: if quick { 30 } else { 120 },
        span_days: 3,
        seed: 77,
        max_invocations_per_app: 20_000,
        rate_scale: 0.05,
    });
    let bursty = azure::generate(&AzureFleetConfig {
        n_apps: if quick { 15 } else { 60 },
        days: 4,
        seed: 0xA2E,
        rate_scale: 0.5,
    })
    .to_trace();
    vec![("ibm-dense-3d", dense), ("azure-bursty-4d", bursty)]
}

fn main() {
    let _obs = femux_bench::obs::session();
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = SimConfig {
        spans: Some(SpanConfig::all(0x5EED)),
        ..SimConfig::default()
    };
    let mut rows = Vec::new();
    for (fleet_name, trace) in fleets(quick) {
        for (policy_name, make) in policies() {
            let mut tally = Tally::default();
            for app in &trace.apps {
                let mut policy = make();
                tally.add(&simulate_app(
                    app,
                    policy.as_mut(),
                    trace.span_ms,
                    &cfg,
                ));
            }
            rows.push(tally.row(fleet_name, policy_name));
        }
    }
    print_table(
        "Latency attribution from rate-1 lifecycle spans \
         (wait = queue + cold; causes are invocation shares)",
        &[
            "fleet",
            "policy",
            "invocations",
            "mean wait ms",
            "queue ms",
            "cold ms",
            "warm",
            "joined warming",
            "fresh spawn",
        ],
        &rows,
    );
}

//! Robustness sweep — scaling policies under deterministic fault
//! injection.
//!
//! Replays both synthetic fleets (held-out Azure-like apps and an IBM
//! Cloud Functions fleet) through the simulator with a seeded
//! [`femux_fault::FaultConfig`] at uniform rates {0, 1, 5, 10} %,
//! comparing FeMux (with forecaster faults injected at the manager
//! boundary) against KPA, a 10-minute keep-alive, the Knative default,
//! and IceBreaker. Three properties are checked on every run:
//!
//! 1. **No numerical leakage**: every per-app and fleet-aggregate RUM
//!    value stays finite at every fault rate — injected `NaN` reports
//!    and forecaster garbage must be absorbed by the degradation paths,
//!    never surfacing in experiment output.
//! 2. **Plan accounting**: the grand total of `FleetOutcome::fault_totals`
//!    across all runs matches the `fault.*` telemetry counters exactly —
//!    every injection is observed, none double-counted.
//! 3. **Thread invariance** (via CI): `--metrics-out` writes the merged
//!    metrics JSON, which must be byte-identical at any `FEMUX_THREADS`.
//!
//! Fairness caveat: KPA runs at its native 2 s tick while the other
//! policies decide per minute, so at equal per-tick rates KPA's plan
//! draws ~30x more often per pod. The comparison is therefore about
//! graceful degradation of each system at its own cadence, not a
//! per-fault-count-matched benchmark.
//!
//! After the policy sweep, a **cluster fault-domain sweep** replays the
//! IBM fleet on finite clusters of {4, 16, 64} nodes at node-crash
//! rates {0, 1, 5} % per tick: memory pressure forces evictions on the
//! small clusters while whole-node crashes displace and restart pods on
//! the large ones. The same three properties hold, with the plan
//! accounting extended to the cluster ledger: node-crash draws that
//! fired must equal both the `fault.node_crashes` telemetry counter and
//! the sum of per-app cluster ledgers, and every eviction, overcommit,
//! denial, and restart in telemetry must match the ledgers exactly.
//!
//! Flags: `--fault-rate <f>` replaces the default rate sweep with a
//! single rate; `--metrics-out <path>` writes the final metrics JSON;
//! `--quick` shrinks the cluster grid to its corners ({4, 64} nodes ×
//! {0, 5} %) for CI.

use std::sync::Arc;

use femux::config::FemuxConfig;
use femux::manager::FemuxPolicy;
use femux::model::{train, ClassifierKind, FemuxModel, TrainApp};
use femux_baselines::icebreaker::IceBreakerPolicy;
use femux_bench::table::{f1, print_table};
use femux_bench::{azure_setup, Scale};
use femux_fault::{FaultConfig, FaultStats};
use femux_knative::{KpaConfig, KpaPolicy};
use femux_rum::RumSpec;
use femux_sim::{
    run_fleet_auto, run_fleet_detailed, ClusterConfig, ClusterOutcome,
    FleetOutcome, KeepAlivePolicy, KnativeDefaultPolicy, NodeConfig,
    SimConfig,
};
use femux_trace::repr::concurrency_per_minute;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use femux_trace::Trace;

/// Root seed of every fault plan, so the rate is the only variable
/// across sweep points.
const FAULT_SEED: u64 = 0xFA_017;

/// Seed of the IBM fleet (distinct from other experiments' fleets).
const IBM_SEED: u64 = 0x1B3A;

const POLICIES: [&str; 5] =
    ["femux", "kpa", "keepalive-10min", "knative-default", "icebreaker"];

fn main() {
    let mut rates = vec![0.0, 0.01, 0.05, 0.10];
    let mut metrics_out: Option<String> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fault-rate" => {
                let v = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .expect("--fault-rate takes a probability");
                rates = vec![v];
            }
            "--metrics-out" => {
                metrics_out =
                    Some(args.next().expect("--metrics-out takes a path"));
            }
            "--quick" => quick = true,
            other => panic!("unknown flag {other:?}"),
        }
    }
    // Counters are collected once at the end (property 2 and
    // `--metrics-out`); `ObsSession` would drain them on drop, so this
    // bin manages the switch itself.
    femux_obs::set_enabled(true);
    drop(femux_obs::collect());

    let rum = RumSpec::default_paper();
    let mut grand = FaultStats::default();
    let mut rows = Vec::new();

    eprintln!("building fleets + training FeMux...");
    let setup = azure_setup(Scale::from_env());
    let azure_model = setup.train_femux(&setup.femux_config());
    let full = setup.fleet.to_trace();
    let mut azure_trace = Trace::new(full.span_ms);
    for &i in &setup.split.test {
        azure_trace.apps.push(full.apps[i].clone());
    }
    let ibm_trace = generate(&IbmFleetConfig::small(IBM_SEED));
    let ibm_model = train_ibm(&ibm_trace);

    let fleets: [(&str, &Trace, &Arc<FemuxModel>); 2] = [
        ("azure", &azure_trace, &azure_model),
        ("ibm", &ibm_trace, &ibm_model),
    ];
    for (fleet_name, trace, model) in fleets {
        for &rate in &rates {
            let plan = FaultConfig::uniform(FAULT_SEED, rate);
            plan.validate().expect("uniform plan is sane");
            for policy in POLICIES {
                let out = run_policy(policy, trace, model, &plan);
                check_finite(&rum, &out, fleet_name, policy, rate);
                grand.merge(&out.fault_totals);
                rows.push(vec![
                    fleet_name.to_string(),
                    format!("{:.0}%", rate * 100.0),
                    policy.to_string(),
                    f1(rum.evaluate_fleet(&out.per_app)),
                    out.total.cold_starts.to_string(),
                    out.fault_totals.total().to_string(),
                ]);
            }
            eprintln!("{fleet_name} @ {:.0}% done", rate * 100.0);
        }
    }
    print_table(
        "Robustness sweep — RUM under injected faults (KPA draws at its \
         native 2 s tick; see module docs)",
        &["fleet", "rate", "system", "RUM", "cold starts", "faults"],
        &rows,
    );

    // Cluster fault-domain sweep: finite nodes, memory-pressure
    // eviction, and whole-node crash/recovery on the IBM fleet.
    let (node_counts, node_rates): (&[usize], &[f64]) = if quick {
        (&[4, 64], &[0.0, 0.05])
    } else {
        (&[4, 16, 64], &[0.0, 0.01, 0.05])
    };
    let mut ledger = ClusterOutcome::default();
    let mut cluster_rows = Vec::new();
    for &nodes in node_counts {
        for &rate in node_rates {
            // Only the node layer varies: pod-level rates stay zero so
            // every injection in this phase is attributable to it.
            let plan = FaultConfig {
                node_crash_rate: rate,
                node_recovery_ticks: 2,
                ..FaultConfig::off(FAULT_SEED)
            };
            plan.validate().expect("node plan is sane");
            for policy in ["keepalive-10min", "knative-default"] {
                let cfg = SimConfig {
                    respect_min_scale: false,
                    faults: Some(plan.clone()),
                    // ~4 median pods per node: the 4-node points run
                    // under real memory pressure, the 64-node points
                    // are crash-dominated.
                    cluster: Some(ClusterConfig::uniform(
                        nodes,
                        NodeConfig {
                            cpu_milli: u64::MAX,
                            mem_mb: 600,
                        },
                    )),
                    ..SimConfig::default()
                };
                let results =
                    run_fleet_detailed(&ibm_trace, &cfg, |_, _| {
                        match policy {
                            "keepalive-10min" => Box::new(
                                KeepAlivePolicy::ten_minutes(),
                            ),
                            _ => Box::new(KnativeDefaultPolicy),
                        }
                    });
                let per_app: Vec<_> =
                    results.iter().map(|r| r.costs.clone()).collect();
                check_finite_records(
                    &rum,
                    &per_app,
                    "ibm-cluster",
                    policy,
                    rate,
                );
                let mut scenario = ClusterOutcome::default();
                for r in &results {
                    grand.merge(&r.faults);
                    let c = r
                        .cluster
                        .as_ref()
                        .expect("cluster configured, ledger present");
                    assert!(
                        c.conserved(),
                        "{policy} @ {nodes}n/{rate}: ledger leak: {c:?}"
                    );
                    // Plan vs ledger: the draws the fault layer says
                    // fired are the crashes the cluster recorded.
                    assert_eq!(
                        r.faults.node_crashes, c.node_crashes,
                        "{policy} @ {nodes}n/{rate}: plan and ledger \
                         disagree on node crashes"
                    );
                    scenario.absorb(c);
                }
                ledger.absorb(&scenario);
                cluster_rows.push(vec![
                    nodes.to_string(),
                    format!("{:.0}%", rate * 100.0),
                    policy.to_string(),
                    f1(rum.evaluate_fleet(&per_app)),
                    scenario.evictions.to_string(),
                    scenario.saturated_overcommits.to_string(),
                    scenario.node_crashes.to_string(),
                    scenario.node_restarts.to_string(),
                ]);
            }
            eprintln!("ibm-cluster {nodes}n @ {:.0}% done", rate * 100.0);
        }
    }
    print_table(
        "Cluster fault domains — IBM fleet on finite nodes (600 MB \
         each) under per-tick node-crash rates",
        &[
            "nodes",
            "crash rate",
            "system",
            "RUM",
            "evictions",
            "saturated",
            "node crashes",
            "restarts",
        ],
        &cluster_rows,
    );
    assert!(
        ledger.evictions > 0,
        "the 4-node scenarios must exercise memory-pressure eviction"
    );
    assert!(
        ledger.node_crashes > 0 && ledger.node_restarts > 0,
        "the nonzero-rate scenarios must crash and restart"
    );

    // Property 2: telemetry must account for every injection in the
    // merged fault totals, class by class — including the cluster
    // ledger's eviction and restart counts.
    let report = femux_obs::collect();
    let classes = [
        ("fault.pod_crashes", grand.pod_crashes),
        ("fault.cold_stragglers", grand.cold_stragglers),
        ("fault.actuation_delays", grand.actuation_delays),
        ("fault.actuation_drops", grand.actuation_drops),
        ("fault.report_losses", grand.report_losses),
        ("fault.forecast_faults", grand.forecast_faults),
        ("fault.node_crashes", grand.node_crashes),
        ("fault.node_restarts", ledger.node_restarts),
        ("evict.evictions", ledger.evictions),
        ("evict.saturated_overcommits", ledger.saturated_overcommits),
        ("evict.placement_denials", ledger.placement_denials),
    ];
    let mut ok = true;
    for (name, want) in classes {
        let got = report.counters.get(name).copied().unwrap_or(0);
        if got != want {
            eprintln!("counter mismatch: {name} = {got}, plan says {want}");
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!(
        "fault accounting: {} injections, telemetry matches the plan",
        grand.total()
    );
    if let Some(path) = metrics_out {
        std::fs::write(&path, report.metrics_json())
            .expect("metrics file is writable");
        eprintln!("wrote {path}");
    }
}

/// Runs one policy over the fleet with the fault plan installed.
fn run_policy(
    policy: &str,
    trace: &Trace,
    model: &Arc<FemuxModel>,
    plan: &FaultConfig,
) -> FleetOutcome {
    let cfg = SimConfig {
        // KPA decides at its native 2 s tick; everything else per
        // minute.
        interval_ms: if policy == "kpa" { 2_000 } else { 60_000 },
        respect_min_scale: false,
        faults: Some(plan.clone()),
        ..SimConfig::default()
    };
    run_fleet_auto(trace, &cfg, |_, app| match policy {
        "femux" => Box::new(FemuxPolicy::with_faults(
            Arc::clone(model),
            app.invocations
                .first()
                .map(|i| i.duration_ms as f64 / 1_000.0)
                .unwrap_or(1.0),
            plan.forecast_faults(app.id),
        )),
        "kpa" => Box::new(KpaPolicy::new(KpaConfig::default())),
        "keepalive-10min" => Box::new(KeepAlivePolicy::ten_minutes()),
        "knative-default" => Box::new(KnativeDefaultPolicy),
        "icebreaker" => Box::new(IceBreakerPolicy::new()),
        other => panic!("unknown policy {other:?}"),
    })
}

/// Property 1: no injected fault may leak a non-finite value into any
/// cost record or RUM score.
fn check_finite(
    rum: &RumSpec,
    out: &FleetOutcome,
    fleet: &str,
    policy: &str,
    rate: f64,
) {
    check_finite_records(rum, &out.per_app, fleet, policy, rate);
    assert!(
        out.total.allocated_gb_seconds.is_finite()
            && out.total.wasted_gb_seconds.is_finite()
            && out.total.service_seconds.is_finite(),
        "{fleet}/{policy} @ {rate}: non-finite fleet totals"
    );
}

/// The per-record half of [`check_finite`], shared with the cluster
/// sweep (which aggregates its own records from detailed results).
fn check_finite_records(
    rum: &RumSpec,
    per_app: &[femux_rum::CostRecord],
    fleet: &str,
    policy: &str,
    rate: f64,
) {
    for (i, rec) in per_app.iter().enumerate() {
        let score = rum.evaluate(rec);
        assert!(
            score.is_finite(),
            "{fleet}/{policy} @ {rate}: app {i} RUM is {score}"
        );
        assert!(
            rec.allocated_gb_seconds.is_finite()
                && rec.wasted_gb_seconds.is_finite()
                && rec.service_seconds.is_finite(),
            "{fleet}/{policy} @ {rate}: non-finite costs for app {i}"
        );
    }
    let fleet_rum = rum.evaluate_fleet(per_app);
    assert!(
        fleet_rum.is_finite(),
        "{fleet}/{policy} @ {rate}: fleet RUM is {fleet_rum}"
    );
}

/// Trains a FeMux model on the IBM fleet (every third app, so training
/// stays cheap while covering the fleet's workload mix).
fn train_ibm(trace: &Trace) -> Arc<FemuxModel> {
    let apps: Vec<TrainApp> = trace
        .apps
        .iter()
        .step_by(3)
        .map(|a| TrainApp {
            concurrency: concurrency_per_minute(
                &a.invocations,
                trace.span_ms,
            ),
            exec_secs: a
                .invocations
                .first()
                .map(|i| i.duration_ms as f64 / 1_000.0)
                .unwrap_or(1.0),
            mem_gb: a.mem_used_mb as f64 / 1_024.0,
            pod_concurrency: 1,
        })
        .collect();
    let cfg = FemuxConfig {
        block_len: 360,
        history: 120,
        label_stride: 15,
        ..FemuxConfig::default()
    };
    Arc::new(
        train(&apps, &cfg, ClassifierKind::KMeans)
            .expect("IBM fleet yields training blocks"),
    )
}

//! Fig. 8 — Forecaster quality varies by application class.
//!
//! Applications are classed by invocation volume (the paper's 1 M /
//! 100 M thresholds, scaled to this fleet). Left: per-class RUM for AR
//! vs FFT — FFT wins below the top class, AR above. Right: aggregate RUM
//! for AR-only, FFT-only, and the per-class best — picking the right
//! forecaster per class lowers total RUM, FeMux's founding observation.

use femux_bench::capacity::eval_single_forecaster;
use femux_bench::table::{delta_pct, f1, print_table};
use femux_bench::{azure_setup, Scale};
use femux_forecast::ForecasterKind;
use femux_rum::RumSpec;
use femux_trace::split::{group_by_class, VolumeThresholds};

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let apps = setup.test_apps();
    let history = 120;
    let stride = 5;
    let rum = RumSpec::default_paper();

    // Volume thresholds scaled by the fleet's volume relative to the
    // paper's (12.5 B over 19 k apps).
    let volumes: Vec<u64> = apps
        .iter()
        .map(|a| {
            a.concurrency
                .iter()
                .map(|c| c * 60.0 / a.exec_secs.max(1e-3))
                .sum::<f64>() as u64
        })
        .collect();
    let total_volume: u64 = volumes.iter().sum();
    let scale_factor =
        total_volume as f64 / (12.5e9 / 19_000.0 * apps.len() as f64);
    let thresholds = VolumeThresholds::scaled(scale_factor);
    let groups = group_by_class(&volumes, thresholds);
    let class_names = ["<1M-equiv", "1M-100M-equiv", ">100M-equiv"];

    let mut per_class_rows = Vec::new();
    let mut totals = [0.0f64; 3]; // ar-only, fft-only, per-class best
    for (g, idx) in groups.iter().enumerate() {
        if idx.is_empty() {
            continue;
        }
        let mut ar_total = 0.0;
        let mut fft_total = 0.0;
        for &i in idx {
            ar_total += rum.evaluate(&eval_single_forecaster(
                &apps[i],
                ForecasterKind::Ar,
                history,
                stride,
                0.808,
            ));
            fft_total += rum.evaluate(&eval_single_forecaster(
                &apps[i],
                ForecasterKind::Fft,
                history,
                stride,
                0.808,
            ));
        }
        totals[0] += ar_total;
        totals[1] += fft_total;
        totals[2] += ar_total.min(fft_total);
        per_class_rows.push(vec![
            class_names[g].to_string(),
            idx.len().to_string(),
            f1(ar_total),
            f1(fft_total),
            if ar_total < fft_total { "AR" } else { "FFT" }.to_string(),
        ]);
    }
    print_table(
        "Fig. 8-Left — per-class RUM (paper: FFT wins below 1M \
         invocations, AR above)",
        &["class", "apps", "AR RUM", "FFT RUM", "winner"],
        &per_class_rows,
    );
    print_table(
        "Fig. 8-Right — aggregate RUM (paper: per-class selection \
         reduces RUM vs any single forecaster)",
        &["deployment", "total RUM", "vs best single"],
        &[
            vec![
                "AR only".into(),
                f1(totals[0]),
                delta_pct(totals[0], totals[0].min(totals[1])),
            ],
            vec![
                "FFT only".into(),
                f1(totals[1]),
                delta_pct(totals[1], totals[0].min(totals[1])),
            ],
            vec![
                "best per class".into(),
                f1(totals[2]),
                delta_pct(totals[2], totals[0].min(totals[1])),
            ],
        ],
    );
}

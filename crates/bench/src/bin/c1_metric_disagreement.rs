//! §4.2.1 / Claim C1 — MAE and RUM rank forecasters differently.
//!
//! The paper compares AR and FFT per application under (a) MAE of their
//! rolling forecasts and (b) the RUM of the resulting scaling decisions:
//! AR wins on MAE for ~65 % of applications, yet FFT wins on RUM for
//! ~69 % — generic error metrics do not align with the system objective.

use femux::label::{capacity_costs, strided_forecast, AppParams};
use femux_bench::table::{pct, print_table};
use femux_bench::{azure_setup, Scale};
use femux_forecast::ForecasterKind;
use femux_rum::error::mae;
use femux_rum::RumSpec;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let apps = setup.test_apps();
    let history = 120;
    let stride = 5;
    let rum = RumSpec::default_paper();

    let mut ar_wins_mae = 0usize;
    let mut fft_wins_mae = 0usize;
    let mut ar_wins_rum = 0usize;
    let mut fft_wins_rum = 0usize;
    let mut counted = 0usize;
    for app in &apps {
        if app.concurrency.len() <= history {
            continue;
        }
        let actual = &app.concurrency[history..];
        if actual.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        counted += 1;
        let params = AppParams {
            mem_gb: app.mem_gb,
            pod_concurrency: app.pod_concurrency.max(1) as f64,
            exec_secs: app.exec_secs,
            step_secs: 60.0,
            cold_start_secs: 0.808,
        };
        let ar = strided_forecast(
            ForecasterKind::Ar,
            &app.concurrency,
            history,
            stride,
        );
        let fft = strided_forecast(
            ForecasterKind::Fft,
            &app.concurrency,
            history,
            stride,
        );
        let (ar_mae, fft_mae) =
            (mae(&ar, actual), mae(&fft, actual));
        if ar_mae < fft_mae {
            ar_wins_mae += 1;
        } else if fft_mae < ar_mae {
            fft_wins_mae += 1;
        }
        let ar_rum =
            rum.evaluate(&capacity_costs(&ar, actual, &params));
        let fft_rum =
            rum.evaluate(&capacity_costs(&fft, actual, &params));
        if ar_rum < fft_rum {
            ar_wins_rum += 1;
        } else if fft_rum < ar_rum {
            fft_wins_rum += 1;
        }
    }
    let n = counted.max(1) as f64;
    print_table(
        "C1 — metric disagreement (paper: AR wins MAE for 65.2% of apps; \
         FFT wins RUM for 68.9%)",
        &["metric", "AR wins", "FFT wins"],
        &[
            vec![
                "MAE".into(),
                pct(ar_wins_mae as f64 / n),
                pct(fft_wins_mae as f64 / n),
            ],
            vec![
                "RUM".into(),
                pct(ar_wins_rum as f64 / n),
                pct(fft_wins_rum as f64 / n),
            ],
        ],
    );
    println!("apps compared: {counted}");
}

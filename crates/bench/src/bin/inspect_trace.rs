//! CLI: summarize a trace file (the `femux-trace` CSV format).
//!
//! ```sh
//! cargo run --release -p femux-bench --bin inspect_trace -- <trace.csv>
//! ```

use std::fs::File;
use std::io::BufReader;

use femux_bench::table::{f1, pct, print_table};
use femux_stats::desc::{
    coefficient_of_variation, fraction_where, mean, median, Summary,
};
use femux_trace::io::read_trace;

fn main() {
    let _obs = femux_bench::obs::session();
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: inspect_trace <trace.csv>");
        std::process::exit(2);
    };
    let file = File::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let trace = read_trace(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = trace.validate() {
        eprintln!("warning: trace failed validation: {e}");
    }

    let mut iat_medians = Vec::new();
    let mut exec_means = Vec::new();
    let mut high_cv = 0usize;
    let mut counted = 0usize;
    for app in &trace.apps {
        let iats = app.iats_secs();
        if iats.len() >= 5 {
            counted += 1;
            iat_medians.push(median(&iats).expect("non-empty"));
            if coefficient_of_variation(&iats) > 1.0 {
                high_cv += 1;
            }
        }
        if !app.invocations.is_empty() {
            exec_means.push(mean(&app.durations_secs()));
        }
    }
    print_table(
        &format!("trace summary: {path}"),
        &["metric", "value"],
        &[
            vec!["applications".into(), trace.apps.len().to_string()],
            vec![
                "invocations".into(),
                trace.total_invocations().to_string(),
            ],
            vec!["span (days)".into(), trace.span_days().to_string()],
            vec![
                "apps with sub-minute median IAT".into(),
                pct(fraction_where(&iat_medians, |x| x < 60.0)),
            ],
            vec![
                "apps with IAT CV > 1".into(),
                pct(high_cv as f64 / counted.max(1) as f64),
            ],
            vec![
                "apps with sub-second mean exec".into(),
                pct(fraction_where(&exec_means, |x| x < 1.0)),
            ],
        ],
    );
    if let Some(s) = Summary::of(&exec_means) {
        print_table(
            "per-app mean execution time (s)",
            &["stat", "value"],
            &[
                vec!["p50".into(), f1(s.p50 * 1_000.0) + " ms"],
                vec!["p90".into(), f1(s.p90 * 1_000.0) + " ms"],
                vec!["p99".into(), f1(s.p99 * 1_000.0) + " ms"],
                vec!["max".into(), f1(s.max) + " s"],
            ],
        );
    }
    let daily = trace.daily_invocations();
    println!("\ndaily invocations: {daily:?}");
}

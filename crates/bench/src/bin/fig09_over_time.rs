//! Fig. 9 — Forecaster suitability changes over time.
//!
//! A workload that is erratic in its first hour and strictly periodic in
//! its second: a fixed 5-minute keep-alive wins early (the Markov chain
//! has not learned anything and the traffic has no structure), while the
//! Markov chain predicts the periodic phase essentially perfectly and
//! wins late — the paper's motivation for switching per epoch.

use femux::label::{capacity_costs, AppParams};
use femux_bench::table::{f3, print_series, print_table};
use femux_forecast::markov::MarkovForecaster;
use femux_forecast::Forecaster;
use femux_rum::RumSpec;
use femux_stats::rng::Rng;

fn main() {
    let _obs = femux_bench::obs::session();
    let mut rng = Rng::seed_from_u64(0xF1609);
    // Hour 1: temporally-correlated random bursts (a busy minute tends
    // to be followed by more busy minutes) — the regime where holding
    // capacity for a few minutes after activity pays off. Hour 2+: a
    // strict alternating on/off cycle the Markov chain predicts
    // perfectly.
    let minutes = 180usize;
    let mut active = false;
    let series: Vec<f64> = (0..minutes)
        .map(|t| {
            if t < 60 {
                active = if active {
                    rng.chance(0.6)
                } else {
                    rng.chance(0.12)
                };
                if active {
                    rng.range_f64(5.0, 12.0)
                } else {
                    0.0
                }
            } else if t % 2 == 0 {
                4.0
            } else {
                0.0
            }
        })
        .collect();
    let params = AppParams {
        mem_gb: 0.5,
        pod_concurrency: 1.0,
        exec_secs: 1.0,
        step_secs: 60.0,
        cold_start_secs: 0.808,
    };
    let rum = RumSpec::default_paper();
    let history = 30usize;

    // Rolling one-step forecasts for both policies.
    let mut markov = MarkovForecaster::paper();
    let mut mc_pred = Vec::new();
    let mut ka_pred = Vec::new();
    for t in history..minutes {
        let window = &series[t.saturating_sub(history)..t];
        mc_pred.push(markov.forecast(window, 1)[0]);
        // 5-minute keep-alive: provision the peak of the last 5 minutes.
        let lo = t.saturating_sub(5);
        ka_pred.push(
            series[lo..t].iter().fold(0.0f64, |a, &b| a.max(b)),
        );
    }
    let actual = &series[history..];

    // RUM per 15-minute epoch.
    let mut mc_series = Vec::new();
    let mut ka_series = Vec::new();
    let mut rows = Vec::new();
    for (e, chunk_start) in (0..actual.len()).step_by(15).enumerate() {
        let hi = (chunk_start + 15).min(actual.len());
        let mc_cost = rum.evaluate(&capacity_costs(
            &mc_pred[chunk_start..hi],
            &actual[chunk_start..hi],
            &params,
        ));
        let ka_cost = rum.evaluate(&capacity_costs(
            &ka_pred[chunk_start..hi],
            &actual[chunk_start..hi],
            &params,
        ));
        mc_series.push((e as f64, mc_cost));
        ka_series.push((e as f64, ka_cost));
        rows.push(vec![
            format!("{}-{} min", chunk_start + history, hi + history),
            f3(ka_cost),
            f3(mc_cost),
            if ka_cost < mc_cost { "keep-alive" } else { "markov" }
                .to_string(),
        ]);
    }
    print_series("RUM per epoch — 5-min keep-alive", &ka_series);
    print_series("RUM per epoch — markov chain", &mc_series);
    print_table(
        "Fig. 9 — epoch winners (paper: keep-alive wins the variable \
         first hour, Markov wins the periodic second hour)",
        &["epoch", "keep-alive RUM", "markov RUM", "winner"],
        &rows,
    );
}

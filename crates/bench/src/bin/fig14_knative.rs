//! Fig. 14 — The Knative prototype evaluation (§5.2).
//!
//! Left: the 100-app evaluation subtrace's volume distribution follows
//! the full fleet's. Mid-left: per-app cold-start percentage, FeMux vs
//! Knative's default KPA (paper: >50 % reduction for over 25 % of apps).
//! Mid-right: aggregate RUM (paper: −36 %). Right: FeMux-pod
//! scalability — forecast latency vs apps per pod (paper: 1,200 apps per
//! 1-vCPU pod at 7 ms mean / 25 ms p99).

use std::sync::Arc;
use std::time::Duration;

use femux_bench::table::{delta_pct, f1, pct, print_series, print_table};
use femux_bench::{azure_setup, Scale};
use femux_knative::{
    run_scalability, FemuxKnativePolicy, KpaConfig, KpaPolicy,
    ScalabilityConfig,
};
use femux_rum::RumSpec;
use femux_sim::{run_fleet_auto, SimConfig};
use femux_trace::split::representative_sample;
use femux_trace::Trace;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let setup = azure_setup(scale);
    let full = setup.fleet.to_trace();

    // --- Left: representative 100-app subtrace. ---
    let volumes: Vec<u64> = setup
        .fleet
        .apps
        .iter()
        .map(|a| a.total_invocations())
        .collect();
    let k = 100.min(volumes.len());
    let chosen = representative_sample(&volumes, k, 0xF1614);
    let mut sub = Trace::new(full.span_ms);
    for &i in &chosen {
        sub.apps.push(full.apps[i].clone());
    }
    let mut full_sorted: Vec<f64> =
        volumes.iter().map(|&v| v as f64).collect();
    full_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut sub_sorted: Vec<f64> = chosen
        .iter()
        .map(|&i| volumes[i] as f64)
        .collect();
    sub_sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let deciles: Vec<(f64, f64)> = (1..10)
        .map(|d| {
            let q = d as f64 / 10.0;
            (
                femux_stats::desc::quantile_sorted(&full_sorted, q),
                femux_stats::desc::quantile_sorted(&sub_sorted, q),
            )
        })
        .collect();
    print_series(
        "Fig. 14-Left — volume deciles (x = full fleet, y = subtrace)",
        &deciles,
    );

    // --- Mid panels: FeMux vs KPA on the subtrace at 2 s ticks. ---
    eprintln!("training FeMux...");
    let model = setup.train_femux(&setup.femux_config());
    let sim_cfg = SimConfig {
        interval_ms: 2_000,
        respect_min_scale: false,
        ..SimConfig::default()
    };
    eprintln!("replaying subtrace under KPA...");
    let kpa_out = run_fleet_auto(&sub, &sim_cfg, |_, _| {
        Box::new(KpaPolicy::new(KpaConfig::default()))
    });
    eprintln!("replaying subtrace under FeMux...");
    let femux_out = run_fleet_auto(&sub, &sim_cfg, |_, app| {
        Box::new(FemuxKnativePolicy::new(
            Arc::clone(&model),
            app.invocations
                .first()
                .map(|i| i.duration_ms as f64 / 1_000.0)
                .unwrap_or(1.0),
        ))
    });
    // Per-app cold-start fraction comparison.
    let mut halved = 0usize;
    let mut improved = 0usize;
    let mut active = 0usize;
    let mut cdf_points = Vec::new();
    for (f, k) in femux_out.per_app.iter().zip(&kpa_out.per_app) {
        if k.invocations == 0 {
            continue;
        }
        active += 1;
        let (ff, kf) =
            (f.cold_start_fraction(), k.cold_start_fraction());
        if ff <= kf {
            improved += 1;
        }
        if kf > 0.0 && ff <= 0.5 * kf {
            halved += 1;
        }
        cdf_points.push(if kf > 0.0 { ff / kf } else { 1.0 });
    }
    let ecdf = femux_stats::desc::Ecdf::new(&cdf_points);
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 / 10.0).collect();
    print_series(
        "Fig. 14-MidLeft — CDF of (FeMux CS% / Knative CS%) per app",
        &ecdf.curve(&xs),
    );

    let rum = RumSpec::default_paper();
    let femux_rum = rum.evaluate_fleet(&femux_out.per_app);
    let kpa_rum = rum.evaluate_fleet(&kpa_out.per_app);
    print_table(
        "Fig. 14-Mid — summary (paper: CS% halved for >25% of apps; \
         aggregate RUM -36%)",
        &["metric", "value"],
        &[
            vec![
                "apps with CS% halved".into(),
                pct(halved as f64 / active.max(1) as f64),
            ],
            vec![
                "apps with CS% maintained or improved".into(),
                pct(improved as f64 / active.max(1) as f64),
            ],
            vec!["femux RUM".into(), f1(femux_rum)],
            vec!["knative default RUM".into(), f1(kpa_rum)],
            vec![
                "RUM change".into(),
                delta_pct(femux_rum, kpa_rum),
            ],
            vec![
                "femux cold starts".into(),
                femux_out.total.cold_starts.to_string(),
            ],
            vec![
                "knative cold starts".into(),
                kpa_out.total.cold_starts.to_string(),
            ],
        ],
    );

    // --- Right: FeMux-pod scalability (wall clock). ---
    let duration = match scale {
        Scale::Small => Duration::from_secs(3),
        _ => Duration::from_secs(10),
    };
    let mut rows = Vec::new();
    for (pods, apps) in
        [(1, 600), (1, 1_200), (1, 2_400), (2, 2_400), (4, 4_800)]
    {
        let res = run_scalability(&ScalabilityConfig {
            pods,
            apps,
            duration,
            ..ScalabilityConfig::default()
        });
        rows.push(vec![
            pods.to_string(),
            apps.to_string(),
            f1(res.offered_rps),
            f1(res.achieved_rps),
            f1(res.latency_ms.mean),
            f1(res.latency_ms.p99),
        ]);
    }
    print_table(
        "Fig. 14-Right — FeMux pod scalability (paper: 1,200 apps/pod \
         at 7 ms mean / 25 ms p99; graceful horizontal scale-out)",
        &["pods", "apps", "offered rps", "achieved rps", "mean ms", "p99 ms"],
        &rows,
    );
}

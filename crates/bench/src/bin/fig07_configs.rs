//! Fig. 7 — Workload configuration distributions.
//!
//! CPU, memory, minimum pod scale, and container concurrency, against
//! the paper's published marginals: 44.8 % below 1 vCPU / 50.8 % default
//! / 4.4 % above; 53.6 % below 4 GB / 41.9 % default / 4.5 % above;
//! 41.2 % min-scale 0 / 53.8 % one / 4.9 % two-plus; 93.3 % concurrency
//! 100 / 3.2 % above.

use femux_bench::table::{pct, print_table};
use femux_bench::Scale;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps(),
        span_days: 1,
        seed: 0xF1607,
        max_invocations_per_app: 100,
        rate_scale: 0.01,
    });
    let n = trace.apps.len() as f64;
    let frac = |pred: &dyn Fn(&femux_trace::AppConfig) -> bool| {
        trace.apps.iter().filter(|a| pred(&a.config)).count() as f64 / n
    };

    print_table(
        "Fig. 7 — CPU allocation (paper: 44.8% / 50.8% / 4.4%)",
        &["bucket", "fraction"],
        &[
            vec!["< 1 vCPU".into(), pct(frac(&|c| c.cpu_milli < 1_000))],
            vec!["= 1 vCPU".into(), pct(frac(&|c| c.cpu_milli == 1_000))],
            vec!["> 1 vCPU".into(), pct(frac(&|c| c.cpu_milli > 1_000))],
        ],
    );
    print_table(
        "Fig. 7 — Memory allocation (paper: 53.6% / 41.9% / 4.5%)",
        &["bucket", "fraction"],
        &[
            vec!["< 4 GB".into(), pct(frac(&|c| c.mem_mb < 4_096))],
            vec!["= 4 GB".into(), pct(frac(&|c| c.mem_mb == 4_096))],
            vec!["> 4 GB".into(), pct(frac(&|c| c.mem_mb > 4_096))],
        ],
    );
    print_table(
        "Fig. 7 — Minimum pod scale (paper: 41.2% / 53.8% / 4.9%)",
        &["bucket", "fraction"],
        &[
            vec!["0".into(), pct(frac(&|c| c.min_scale == 0))],
            vec!["1".into(), pct(frac(&|c| c.min_scale == 1))],
            vec![">= 2".into(), pct(frac(&|c| c.min_scale >= 2))],
        ],
    );
    print_table(
        "Fig. 7 — Container concurrency (paper: 93.3% at default 100, \
         3.2% above; functions pinned to 1)",
        &["bucket", "fraction"],
        &[
            vec!["< 100".into(), pct(frac(&|c| c.concurrency < 100))],
            vec!["= 100".into(), pct(frac(&|c| c.concurrency == 100))],
            vec!["> 100".into(), pct(frac(&|c| c.concurrency > 100))],
        ],
    );
}

//! Table 2 — Metric survey across lifetime-management systems.
//!
//! A static survey of which performance/efficiency metrics each prior
//! system optimizes (the lack of consensus that motivates RUM), plus a
//! live demonstration: the same simulation outcome ranks two policies
//! differently under two of the surveyed metrics.

use femux_bench::table::{f1, print_table};
use femux_bench::{azure_setup, Scale};
use femux_bench::capacity::{eval_forecaster_fleet, eval_keepalive};
use femux_forecast::ForecasterKind;

fn main() {
    let _obs = femux_bench::obs::session();
    let mark = |b: bool| if b { "x" } else { "" }.to_string();
    let rows = [
        // (metric, shahrad20, faascache, icebreaker, aquatope)
        ("Cold start % per app", true, false, false, false),
        ("Overall cold start %", false, true, false, true),
        ("Service time", false, true, true, false),
        ("Number of cold starts", false, true, false, false),
        ("Wasted memory time", true, false, false, false),
        ("Allocated memory time", false, false, false, true),
        ("Total keep-alive cost ($)", false, false, true, false),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(m, a, b, c, d)| {
            vec![
                m.to_string(),
                mark(*a),
                mark(*b),
                mark(*c),
                mark(*d),
            ]
        })
        .collect();
    print_table(
        "Table 2 — no consensus on lifetime-management metrics",
        &[
            "metric",
            "Shahrad'20",
            "FaasCache",
            "IceBreaker",
            "Aquatope",
        ],
        &table,
    );

    // Demonstration: two policies, two surveyed metrics, two different
    // winners — the motivation for a unified tunable metric.
    let setup = azure_setup(Scale::from_env());
    let apps = setup.test_apps();
    let lean = eval_forecaster_fleet(
        &apps,
        ForecasterKind::Naive,
        120,
        10,
        0.808,
    );
    let ka: Vec<_> = apps
        .iter()
        .map(|a| eval_keepalive(a, 10, 120, 0.808))
        .collect();
    let lean_total = femux_rum::aggregate(&lean);
    let ka_total = femux_rum::aggregate(&ka);
    print_table(
        "Same runs, different metrics, different winners",
        &["metric", "naive (last value)", "10-min keep-alive", "winner"],
        &[
            vec![
                "number of cold starts".into(),
                lean_total.cold_starts.to_string(),
                ka_total.cold_starts.to_string(),
                if lean_total.cold_starts < ka_total.cold_starts {
                    "naive"
                } else {
                    "keep-alive"
                }
                .into(),
            ],
            vec![
                "allocated memory time (GB-s)".into(),
                f1(lean_total.allocated_gb_seconds),
                f1(ka_total.allocated_gb_seconds),
                if lean_total.allocated_gb_seconds
                    < ka_total.allocated_gb_seconds
                {
                    "naive"
                } else {
                    "keep-alive"
                }
                .into(),
            ],
        ],
    );
}

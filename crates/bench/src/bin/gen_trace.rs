//! CLI: generate a synthetic trace file in the `femux-trace` CSV format.
//!
//! ```sh
//! cargo run --release -p femux-bench --bin gen_trace -- \
//!     [ibm|azure] <n_apps> <days> <seed> <out.csv>
//! ```

use std::fs::File;
use std::io::BufWriter;

use femux_trace::io::write_trace;
use femux_trace::synth::azure::{generate as gen_azure, AzureFleetConfig};
use femux_trace::synth::ibm::{generate as gen_ibm, IbmFleetConfig};

fn usage() -> ! {
    eprintln!(
        "usage: gen_trace [ibm|azure] <n_apps> <days> <seed> <out.csv>"
    );
    std::process::exit(2);
}

fn main() {
    let _obs = femux_bench::obs::session();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 5 {
        usage();
    }
    let (Ok(n_apps), Ok(days), Ok(seed)) = (
        args[1].parse::<usize>(),
        args[2].parse::<u64>(),
        args[3].parse::<u64>(),
    ) else {
        usage()
    };
    let trace = match args[0].as_str() {
        "ibm" => gen_ibm(&IbmFleetConfig {
            n_apps,
            span_days: days,
            seed,
            max_invocations_per_app: 100_000,
            rate_scale: 0.3,
        }),
        "azure" => gen_azure(&AzureFleetConfig {
            n_apps,
            days: days as usize,
            seed,
            rate_scale: 0.5,
        })
        .to_trace(),
        _ => usage(),
    };
    trace.validate().expect("generated trace is valid");
    let file = File::create(&args[4]).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", args[4]);
        std::process::exit(1);
    });
    let mut out = BufWriter::new(file);
    write_trace(&trace, &mut out).expect("write succeeds");
    println!(
        "wrote {}: {} apps, {} invocations, {} days",
        args[4],
        trace.apps.len(),
        trace.total_invocations(),
        trace.span_days()
    );
}

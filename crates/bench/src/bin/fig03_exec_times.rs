//! Fig. 3 — Execution-time distributions across datasets.
//!
//! Left: CDFs of per-workload mean execution time for each dataset
//! sketch (ours and Huawei '24 skew shorter than Azure '19; the paper
//! reports 82 % of our workloads sub-second vs 70 % for Azure '19).
//! Right: CDF over per-invocation execution times for our trace
//! (96 % sub-second).

use femux_bench::table::{pct, print_series, print_table};
use femux_bench::Scale;
use femux_stats::desc::{fraction_where, log_space, mean, Ecdf};
use femux_stats::rng::Rng;
use femux_trace::synth::compare::all_presets;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};
use femux_trace::WorkloadKind;

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let xs = log_space(1e-3, 1e3, 40);
    let mut rng = Rng::seed_from_u64(0xF1603);
    let mut rows = Vec::new();
    for preset in all_presets() {
        let execs = preset.sample_app_exec_means(&mut rng);
        print_series(
            &format!("CDF of per-app mean exec (s) — {}", preset.name),
            &Ecdf::new(&execs).curve(&xs),
        );
        rows.push(vec![
            preset.name.to_string(),
            pct(fraction_where(&execs, |x| x < 1.0)),
        ]);
    }
    print_table(
        "Fig. 3-Left summary: per-app mean exec < 1 s \
         (paper: IBM 82%, Azure '19 70%)",
        &["dataset", "sub-second apps"],
        &rows,
    );

    // Right: per-invocation execution times from the materialized fleet.
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps(),
        span_days: 2,
        seed: 0xF1603,
        max_invocations_per_app: 20_000,
        rate_scale: 0.3,
    });
    let mut all = Vec::new();
    let mut app_means = Vec::new();
    for app in &trace.apps {
        if app.kind == WorkloadKind::BatchJob || app.invocations.is_empty()
        {
            continue;
        }
        let durs = app.durations_secs();
        app_means.push(mean(&durs));
        all.extend(durs);
    }
    print_series(
        "CDF of per-invocation exec (s) — IBM synth",
        &Ecdf::new(&all).curve(&xs),
    );
    print_table(
        "Fig. 3-Right summary (paper: 96% of invocations sub-second)",
        &["metric", "value"],
        &[
            vec![
                "invocations with exec < 1 s".into(),
                pct(fraction_where(&all, |x| x < 1.0)),
            ],
            vec![
                "workloads with mean exec < 1 s".into(),
                pct(fraction_where(&app_means, |x| x < 1.0)),
            ],
        ],
    );
}

//! Fig. 5 — Sub-minute predictive scaling (§3.2).
//!
//! Follows the paper's methodology: an event-based *capacity* simulation
//! over per-app average concurrency (the representation Knative uses),
//! comparing
//!
//! - FFT forecasting with a 10-second timestep,
//! - FFT with a 60-second timestep,
//! - Knative's 1-minute moving average (evaluated at 10-second steps,
//!   approximating its 2-second reactive loop), and
//! - a 5-minute keep-alive (AWS-style).
//!
//! The paper: FFT-10s achieves the lowest cold-start fraction across
//! workloads, cutting total cold-start duration ~60 % vs the moving
//! average, ~38 % vs the 5-minute keep-alive, and ~11 % vs FFT-60s, with
//! <1 % extra allocation thanks to user-configured min-scale pods.
//!
//! Reproduction note: the *predictive-beats-reactive* result holds here
//! (FFT-60s clearly beats the 1-minute moving average), but the
//! 10-second-beats-60-second crossover does not reproduce at our
//! scaled-down volumes — 10-second concurrency is only a smooth,
//! forecastable signal at true production density (94.5 % sub-second
//! IATs over 1.9 B invocations), and a noisy 10-second signal pays a
//! pod cold start at every capacity-boundary crossing. See
//! EXPERIMENTS.md.

use femux::label::{capacity_costs, AppParams};
use femux_bench::table::{delta_pct, f1, pct, print_series, print_table};
use femux_bench::Scale;
use femux_forecast::ForecasterKind;
use femux_rum::CostRecord;
use femux_stats::desc::Ecdf;
use femux_trace::repr::average_concurrency;
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

/// Strided rolling forecast (refit every `stride` steps, predict
/// `stride` ahead) — same as the offline labeller's regime.
fn forecast_series(
    kind: ForecasterKind,
    series: &[f64],
    history: usize,
    stride: usize,
) -> Vec<f64> {
    let mut f = kind.build();
    let mut out = Vec::with_capacity(series.len().saturating_sub(history));
    let mut t = history;
    while t < series.len() {
        let h = stride.min(series.len() - t);
        let start = t.saturating_sub(history);
        out.extend(f.forecast(&series[start..t], h));
        t += h;
    }
    out
}

/// Sliding statistic over the trailing `window` steps.
fn sliding<F: Fn(&[f64]) -> f64>(
    series: &[f64],
    history: usize,
    window: usize,
    f: F,
) -> Vec<f64> {
    (history..series.len())
        .map(|t| f(&series[t.saturating_sub(window)..t]))
        .collect()
}

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps().min(300),
        span_days: 1,
        seed: 0xF1605,
        max_invocations_per_app: 100_000,
        rate_scale: 1.0,
    });

    // Accumulators: per policy, fleet totals + per-app cold fractions.
    let names = ["fft-10s", "fft-60s", "moving-avg-1min", "keepalive-5min"];
    let mut totals = vec![CostRecord::default(); names.len()];
    let mut fractions: Vec<Vec<f64>> = vec![Vec::new(); names.len()];

    for app in &trace.apps {
        if app.invocations.len() < 50 {
            continue;
        }
        let conc10 =
            average_concurrency(&app.invocations, 10_000, trace.span_ms);
        let conc60 =
            average_concurrency(&app.invocations, 60_000, trace.span_ms);
        // Two hours of history at each resolution.
        let (h10, h60) = (720usize, 120usize);
        if conc10.len() <= h10 + 360 {
            continue;
        }
        let min_floor = app.config.min_scale as f64
            * app.config.concurrency as f64;
        let floor = |mut v: Vec<f64>| {
            for x in &mut v {
                *x = x.max(min_floor);
            }
            v
        };
        // FFT-10s forecasts on the stable-window-smoothed series
        // sampled at 10 s (Knative's metric pipeline smooths over its
        // window; the 10-second loop gains *phase*, not raw noise).
        let smooth10: Vec<f64> = (0..conc10.len())
            .map(|t| {
                let lo = t.saturating_sub(5);
                conc10[lo..=t].iter().sum::<f64>()
                    / (t - lo + 1) as f64
            })
            .collect();
        // Policies (all forecasting the next minute of traffic).
        let preds10: Vec<(usize, Vec<f64>)> = vec![
            (0, floor(forecast_series(ForecasterKind::Fft, &smooth10, h10, 1))),
            (
                2,
                floor(sliding(&conc10, h10, 6, |w| {
                    w.iter().sum::<f64>() / w.len().max(1) as f64
                })),
            ),
            (
                3,
                floor(sliding(&conc10, h10, 30, |w| {
                    w.iter().fold(0.0f64, |a, &b| a.max(b))
                })),
            ),
        ];
        let pred60 =
            floor(forecast_series(ForecasterKind::Fft, &conc60, h60, 1));

        let p10 = AppParams {
            mem_gb: app.mem_used_mb as f64 / 1_024.0,
            pod_concurrency: app.config.concurrency.max(1) as f64,
            exec_secs: 0.2,
            step_secs: 10.0,
            cold_start_secs: 0.808,
        };
        let p60 = AppParams {
            step_secs: 60.0,
            ..p10
        };
        for (slot, pred) in preds10 {
            let costs = capacity_costs(&pred, &conc10[h10..], &p10);
            fractions[slot].push(costs.cold_start_fraction());
            totals[slot].merge(&costs);
        }
        let costs60 = capacity_costs(&pred60, &conc60[h60..], &p60);
        fractions[1].push(costs60.cold_start_fraction());
        totals[1].merge(&costs60);
    }

    // Left: CDF of per-workload cold-start fraction.
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    for (name, fr) in names.iter().zip(&fractions) {
        print_series(
            &format!("CDF of per-workload cold-start fraction — {name}"),
            &Ecdf::new(fr).curve(&xs),
        );
    }

    // Right: totals.
    let fft10 = totals[0].cold_start_seconds;
    let rows: Vec<Vec<String>> = names
        .iter()
        .zip(&totals)
        .map(|(name, t)| {
            vec![
                name.to_string(),
                f1(t.cold_start_seconds),
                pct(t.cold_start_fraction()),
                f1(t.allocated_gb_seconds),
                delta_pct(fft10, t.cold_start_seconds),
            ]
        })
        .collect();
    print_table(
        "Fig. 5-Right (paper: fft-10s cuts total cold-start duration \
         ~60% vs 1-min moving average, ~38% vs 5-min KA, ~11% vs fft-60s; \
         <1% extra allocation thanks to min-scale pods)",
        &[
            "policy",
            "cold-start s",
            "cold-start %",
            "alloc GB-s",
            "fft-10s vs this",
        ],
        &rows,
    );
}

//! Fig. 6 — Platform-delay distributions.
//!
//! Platform delay = service time − execution time (cold starts, queuing,
//! inter-component latency). The paper: most executions see < 1 ms; 73 %
//! of workloads have p99 below 10 ms; ~20 % have p99 above one second;
//! extremes exceed 100 s from custom-image cold starts.

use femux_bench::table::{pct, print_series, print_table};
use femux_bench::Scale;
use femux_stats::desc::{fraction_where, log_space, quantile, Ecdf};
use femux_trace::synth::ibm::{generate, IbmFleetConfig};

fn main() {
    let _obs = femux_bench::obs::session();
    let scale = Scale::from_env();
    let trace = generate(&IbmFleetConfig {
        n_apps: scale.ibm_apps(),
        span_days: 2,
        seed: 0xF1606,
        max_invocations_per_app: 20_000,
        rate_scale: 0.3,
    });
    let mut all_delays = Vec::new();
    let mut app_p50 = Vec::new();
    let mut app_p99 = Vec::new();
    for app in &trace.apps {
        let delays = app.delays_secs();
        if delays.len() < 10 {
            continue;
        }
        app_p50.push(quantile(&delays, 0.5).expect("non-empty"));
        app_p99.push(quantile(&delays, 0.99).expect("non-empty"));
        all_delays.extend(delays);
    }
    let xs = log_space(1e-5, 1e3, 50);
    print_series(
        "CDF of per-workload p50 delay (s)",
        &Ecdf::new(&app_p50).curve(&xs),
    );
    print_series(
        "CDF of per-workload p99 delay (s)",
        &Ecdf::new(&app_p99).curve(&xs),
    );
    print_series(
        "CDF over all invocation delays (s)",
        &Ecdf::new(&all_delays).curve(&xs),
    );
    let max_delay =
        all_delays.iter().cloned().fold(0.0f64, f64::max);
    print_table(
        "Fig. 6 summary (paper: most <1 ms; 73% of workloads p99 <10 ms; \
         ~20% p99 >1 s; extremes >100 s)",
        &["metric", "value"],
        &[
            vec![
                "invocations with delay < 1 ms".into(),
                pct(fraction_where(&all_delays, |x| x < 0.001)),
            ],
            vec![
                "workloads with p99 delay < 10 ms".into(),
                pct(fraction_where(&app_p99, |x| x < 0.01)),
            ],
            vec![
                "workloads with p99 delay > 1 s".into(),
                pct(fraction_where(&app_p99, |x| x > 1.0)),
            ],
            vec![
                "max observed delay (s)".into(),
                format!("{max_delay:.1}"),
            ],
        ],
    );
}

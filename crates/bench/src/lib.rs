//! Shared experiment harness for the paper-reproduction binaries.
//!
//! Every figure and table of the paper has a binary under `src/bin/`
//! (see `EXPERIMENTS.md` for the index). This library holds what they
//! share: scale presets, the Azure-like evaluation setup of §5.1
//! (fleet, split, FeMux training), and plain-text table/series printers
//! that emit the same rows the paper plots.

use std::sync::Arc;

use femux::config::FemuxConfig;
use femux::model::{train, ClassifierKind, FemuxModel, TrainApp};
use femux_trace::split::{train_test_split, Split};
use femux_trace::synth::azure::{generate, AzureFleet, AzureFleetConfig};

pub mod capacity;
pub mod json;
pub mod obs;
pub mod table;

/// Experiment scale, selected with the `FEMUX_SCALE` environment
/// variable (`small`, `medium`, `large`; default `small`).
///
/// `small` finishes in seconds per binary; `medium` is the scale used
/// for the numbers recorded in `EXPERIMENTS.md`; `large` approaches the
/// paper's app counts and takes tens of minutes per binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-binary smoke scale.
    Small,
    /// The EXPERIMENTS.md scale.
    Medium,
    /// Closest to the paper's scale.
    Large,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("FEMUX_SCALE").as_deref() {
            Ok("medium") => Scale::Medium,
            Ok("large") => Scale::Large,
            _ => Scale::Small,
        }
    }

    /// Number of Azure-like applications for §5.1-style experiments.
    pub fn azure_apps(self) -> usize {
        match self {
            Scale::Small => 60,
            Scale::Medium => 150,
            Scale::Large => 2_000,
        }
    }

    /// Trace span in days.
    pub fn azure_days(self) -> usize {
        match self {
            Scale::Small => 4,
            Scale::Medium => 8,
            Scale::Large => 12,
        }
    }

    /// Number of IBM-like workloads for §3 characterization figures.
    pub fn ibm_apps(self) -> usize {
        match self {
            Scale::Small => 200,
            Scale::Medium => 1_283,
            Scale::Large => 1_283,
        }
    }
}

/// The §5.1 evaluation setup: an Azure-like fleet with a 70-30 split.
pub struct EvalSetup {
    /// The synthetic fleet.
    pub fleet: AzureFleet,
    /// Train/validation/test split over `fleet.apps` indices.
    pub split: Split,
    /// The scale it was built at.
    pub scale: Scale,
}

/// Builds the evaluation fleet for a scale (deterministic).
pub fn azure_setup(scale: Scale) -> EvalSetup {
    let fleet = generate(&AzureFleetConfig {
        n_apps: scale.azure_apps(),
        days: scale.azure_days(),
        seed: 0xA2E_5EED,
        rate_scale: 0.5,
    });
    let split = train_test_split(fleet.apps.len(), 0x5917);
    EvalSetup { fleet, split, scale }
}

impl EvalSetup {
    /// Training apps in FeMux's input representation.
    pub fn train_apps(&self) -> Vec<TrainApp> {
        self.apps_for(&self.split.train)
    }

    /// Test apps in FeMux's input representation.
    pub fn test_apps(&self) -> Vec<TrainApp> {
        self.apps_for(&self.split.test)
    }

    /// Converts fleet apps by index.
    pub fn apps_for(&self, idx: &[usize]) -> Vec<TrainApp> {
        idx.iter()
            .map(|&i| {
                let a = &self.fleet.apps[i];
                TrainApp {
                    concurrency: a.concurrency_series(),
                    exec_secs: a.daily_avg_exec_ms[0] / 1_000.0,
                    mem_gb: a.mem_mb as f64 / 1_024.0,
                    pod_concurrency: 1,
                }
            })
            .collect()
    }

    /// A FemuxConfig appropriate for this setup's scale: the paper's
    /// parameters at medium/large, shrunk blocks at small scale so the
    /// short trace still yields several blocks.
    pub fn femux_config(&self) -> FemuxConfig {
        match self.scale {
            Scale::Small => FemuxConfig {
                block_len: 360,
                history: 120,
                label_stride: 15,
                ..FemuxConfig::default()
            },
            _ => FemuxConfig {
                label_stride: 10,
                ..FemuxConfig::default()
            },
        }
    }

    /// Trains FeMux on the training split under a given config.
    pub fn train_femux(&self, cfg: &FemuxConfig) -> Arc<FemuxModel> {
        Arc::new(
            train(&self.train_apps(), cfg, ClassifierKind::KMeans)
                .expect("training fleet yields blocks"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_small() {
        // The test runner does not set FEMUX_SCALE.
        assert_eq!(Scale::from_env(), Scale::Small);
    }

    #[test]
    fn setup_is_deterministic_and_split_consistent() {
        let a = azure_setup(Scale::Small);
        let b = azure_setup(Scale::Small);
        assert_eq!(a.split, b.split);
        assert_eq!(a.fleet.apps.len(), Scale::Small.azure_apps());
        let total = a.split.train.len()
            + a.split.validation.len()
            + a.split.test.len();
        assert_eq!(total, a.fleet.apps.len());
    }

    #[test]
    fn train_apps_have_sane_shapes() {
        let setup = azure_setup(Scale::Small);
        let apps = setup.train_apps();
        assert_eq!(apps.len(), setup.split.train.len());
        let minutes = setup.fleet.days * 1_440;
        assert!(apps.iter().all(|a| a.concurrency.len() == minutes));
        assert!(apps.iter().all(|a| a.exec_secs > 0.0 && a.mem_gb > 0.0));
    }
}

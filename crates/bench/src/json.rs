//! JSON export of experiment results.
//!
//! Each experiment binary prints human-readable tables; this module lets
//! them additionally persist machine-readable results (for plotting or
//! regression tracking) when `FEMUX_JSON_DIR` is set.

use std::io::Write;
use std::path::PathBuf;

use serde::Serialize;

/// A named `(x, y)` series.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Series name (as printed by the table module).
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// A complete experiment result document.
#[derive(Debug, Clone, Serialize, Default)]
pub struct ExperimentDoc {
    /// Experiment id (e.g. "fig11").
    pub id: String,
    /// Scalar metrics by name.
    pub metrics: Vec<(String, f64)>,
    /// Plot series.
    pub series: Vec<Series>,
}

impl ExperimentDoc {
    /// Creates an empty document for an experiment id.
    pub fn new(id: &str) -> Self {
        ExperimentDoc {
            id: id.to_string(),
            ..Default::default()
        }
    }

    /// Records a scalar metric.
    pub fn metric(&mut self, name: &str, value: f64) -> &mut Self {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Records a series.
    pub fn series(
        &mut self,
        name: &str,
        points: Vec<(f64, f64)>,
    ) -> &mut Self {
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
        self
    }

    /// Writes the document to `$FEMUX_JSON_DIR/<id>.json` when the
    /// environment variable is set; silently does nothing otherwise.
    /// Returns the path written, if any.
    pub fn write_if_configured(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("FEMUX_JSON_DIR")?;
        let mut path = PathBuf::from(dir);
        if std::fs::create_dir_all(&path).is_err() {
            return None;
        }
        path.push(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).ok()?;
        let mut file = std::fs::File::create(&path).ok()?;
        file.write_all(json.as_bytes()).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_serializes() {
        let mut doc = ExperimentDoc::new("demo");
        doc.metric("rum", 12.5)
            .series("cdf", vec![(0.0, 0.0), (1.0, 1.0)]);
        let json = serde_json::to_string(&doc).expect("serializes");
        assert!(json.contains("\"demo\""));
        assert!(json.contains("12.5"));
        assert!(json.contains("cdf"));
    }

    #[test]
    fn no_env_no_write() {
        // FEMUX_JSON_DIR is not set in the test environment.
        let doc = ExperimentDoc::new("demo");
        assert!(doc.write_if_configured().is_none());
    }

    #[test]
    fn writes_when_configured() {
        let dir = std::env::temp_dir().join("femux-json-test");
        // Use a private env guard: set, write, unset.
        std::env::set_var("FEMUX_JSON_DIR", &dir);
        let mut doc = ExperimentDoc::new("unit");
        doc.metric("x", 1.0);
        let path = doc.write_if_configured().expect("written");
        std::env::remove_var("FEMUX_JSON_DIR");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"unit\""));
        let _ = std::fs::remove_file(path);
    }
}

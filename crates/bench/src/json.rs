//! JSON export of experiment results.
//!
//! Each experiment binary prints human-readable tables; this module lets
//! them additionally persist machine-readable results (for plotting or
//! regression tracking) when `FEMUX_JSON_DIR` is set. The document shape
//! is fixed and shallow, so the JSON is emitted directly rather than
//! through a serialization framework (the build environment is offline
//! and cannot fetch serde).

use std::fmt::Write as _;
use std::io::Write;
use std::path::PathBuf;

/// A named `(x, y)` series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Series name (as printed by the table module).
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// A complete experiment result document.
#[derive(Debug, Clone, Default)]
pub struct ExperimentDoc {
    /// Experiment id (e.g. "fig11").
    pub id: String,
    /// Scalar metrics by name.
    pub metrics: Vec<(String, f64)>,
    /// Plot series.
    pub series: Vec<Series>,
}

/// Escapes a string for inclusion in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (JSON has no NaN/Infinity; those
/// become null so downstream tooling fails loudly instead of parsing
/// garbage).
fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl ExperimentDoc {
    /// Creates an empty document for an experiment id.
    pub fn new(id: &str) -> Self {
        ExperimentDoc {
            id: id.to_string(),
            ..Default::default()
        }
    }

    /// Records a scalar metric.
    pub fn metric(&mut self, name: &str, value: f64) -> &mut Self {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Records a series.
    pub fn series(
        &mut self,
        name: &str,
        points: Vec<(f64, f64)>,
    ) -> &mut Self {
        self.series.push(Series {
            name: name.to_string(),
            points,
        });
        self
    }

    /// Renders the document as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"id\": \"{}\",", escape(&self.id));
        out.push_str("  \"metrics\": [");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    [\"{}\", {}]",
                escape(name),
                number(*value)
            );
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"series\": [");
        for (i, series) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"points\": [",
                escape(&series.name)
            );
            for (j, (x, y)) in series.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}]", number(*x), number(*y));
            }
            out.push_str("]}");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the document to `$FEMUX_JSON_DIR/<id>.json` when the
    /// environment variable is set; silently does nothing otherwise.
    /// Returns the path written, if any.
    pub fn write_if_configured(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("FEMUX_JSON_DIR")?;
        let mut path = PathBuf::from(dir);
        if std::fs::create_dir_all(&path).is_err() {
            return None;
        }
        path.push(format!("{}.json", self.id));
        let json = self.to_json();
        let mut file = std::fs::File::create(&path).ok()?;
        file.write_all(json.as_bytes()).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_serializes() {
        let mut doc = ExperimentDoc::new("demo");
        doc.metric("rum", 12.5)
            .series("cdf", vec![(0.0, 0.0), (1.0, 1.0)]);
        let json = doc.to_json();
        assert!(json.contains("\"demo\""));
        assert!(json.contains("12.5"));
        assert!(json.contains("cdf"));
    }

    #[test]
    fn escapes_and_non_finite_values() {
        let mut doc = ExperimentDoc::new("quo\"te");
        doc.metric("nan", f64::NAN).metric("plain", 2.0);
        let json = doc.to_json();
        assert!(json.contains("quo\\\"te"));
        assert!(json.contains("[\"nan\", null]"));
        assert!(json.contains("[\"plain\", 2]"));
    }

    #[test]
    fn no_env_no_write() {
        // FEMUX_JSON_DIR is not set in the test environment.
        let doc = ExperimentDoc::new("demo");
        assert!(doc.write_if_configured().is_none());
    }

    #[test]
    fn writes_when_configured() {
        let dir = std::env::temp_dir().join("femux-json-test");
        // Use a private env guard: set, write, unset.
        std::env::set_var("FEMUX_JSON_DIR", &dir);
        let mut doc = ExperimentDoc::new("unit");
        doc.metric("x", 1.0);
        let path = doc.write_if_configured().expect("written");
        std::env::remove_var("FEMUX_JSON_DIR");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"unit\""));
        let _ = std::fs::remove_file(path);
    }
}
